"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.cocomac.model import MacaqueModel, build_macaque_model


@pytest.fixture(scope="session")
def quicknet():
    """The 4-core quickstart ring (read-only across tests)."""
    return build_quickstart_network(n_cores=4, seed=42)


@pytest.fixture(scope="session")
def macaque_small() -> MacaqueModel:
    """A compiled 128-core macaque model (expensive; shared, read-only)."""
    return build_macaque_model(total_cores=128, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
