"""Unit tests for the deterministic LCG PRNG."""

import numpy as np

from repro.util.rng import LCG_A, LCG_C, Lcg32, LcgArray, derive_seed


class TestLcg32:
    def test_sequence_matches_recurrence(self):
        rng = Lcg32(12345)
        x = 12345
        for _ in range(100):
            x = (LCG_A * x + LCG_C) & 0xFFFFFFFF
            assert rng.next_u32() == x

    def test_same_seed_same_sequence(self):
        a, b = Lcg32(7), Lcg32(7)
        assert [a.next_u32() for _ in range(50)] == [b.next_u32() for _ in range(50)]

    def test_different_seeds_diverge(self):
        a, b = Lcg32(7), Lcg32(8)
        assert [a.next_u32() for _ in range(10)] != [b.next_u32() for _ in range(10)]

    def test_next_u8_is_top_byte(self):
        a, b = Lcg32(99), Lcg32(99)
        for _ in range(20):
            assert a.next_u8() == b.next_u32() >> 24

    def test_next_float_in_unit_interval(self):
        rng = Lcg32(3)
        for _ in range(1000):
            f = rng.next_float()
            assert 0.0 <= f < 1.0

    def test_bernoulli_zero_threshold_never_hits(self):
        rng = Lcg32(5)
        assert not any(rng.bernoulli(0) for _ in range(256))

    def test_bernoulli_full_threshold_always_hits(self):
        rng = Lcg32(5)
        assert all(rng.bernoulli(256) for _ in range(256))

    def test_bernoulli_rate_roughly_matches(self):
        rng = Lcg32(11)
        hits = sum(rng.bernoulli(64) for _ in range(20000))
        assert 0.2 < hits / 20000 < 0.3  # expect 0.25

    def test_clone_is_independent(self):
        a = Lcg32(42)
        a.next_u32()
        b = a.clone()
        assert a.next_u32() == b.next_u32()
        a.next_u32()
        assert a.state != b.state

    def test_seed_masked_to_32_bits(self):
        assert Lcg32(2**40 + 5).state == 5


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_index_order_matters(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_different_bases_differ(self):
        assert derive_seed(1, 5) != derive_seed(2, 5)

    def test_output_is_32_bit(self):
        for i in range(100):
            s = derive_seed(123, i)
            assert 0 <= s < 2**32

    def test_no_collisions_in_small_range(self):
        seeds = {derive_seed(9, i) for i in range(10000)}
        assert len(seeds) == 10000


class TestLcgArray:
    def test_matches_scalar_streams(self):
        seeds = [derive_seed(3, i) for i in range(16)]
        arr = LcgArray(np.array(seeds, dtype=np.uint64))
        scalars = [Lcg32(s) for s in seeds]
        for _ in range(20):
            vec = arr.advance()
            ref = [s.next_u32() for s in scalars]
            assert list(vec) == ref

    def test_conditional_advance_freezes_masked_out(self):
        arr = LcgArray.from_base_seed(7, (8,))
        before = arr.state.copy()
        mask = np.zeros(8, dtype=bool)
        mask[::2] = True
        arr.advance(mask)
        assert np.array_equal(arr.state[1::2], before[1::2])
        assert not np.array_equal(arr.state[::2], before[::2])

    def test_conditional_advance_matches_scalar_consumption(self):
        seeds = [derive_seed(1, i) for i in range(4)]
        arr = LcgArray(np.array(seeds, dtype=np.uint64))
        scalars = [Lcg32(s) for s in seeds]
        # Lane 0 advances twice, lane 3 once, others never.
        arr.advance(np.array([True, False, False, False]))
        arr.advance(np.array([True, False, False, True]))
        scalars[0].next_u32()
        scalars[0].next_u32()
        scalars[3].next_u32()
        assert list(arr.state) == [s.state for s in scalars]

    def test_bernoulli_masked_lanes_report_false(self):
        arr = LcgArray.from_base_seed(2, (6,))
        mask = np.array([True, False, True, False, True, False])
        hits = arr.bernoulli(np.full(6, 256, dtype=np.uint32), mask)
        assert not hits[~mask].any()
        assert hits[mask].all()

    def test_from_base_seed_shape(self):
        arr = LcgArray.from_base_seed(0, (3, 5))
        assert arr.shape == (3, 5)

    def test_clone_and_state_equal(self):
        a = LcgArray.from_base_seed(1, (4,))
        b = a.clone()
        assert a.state_equal(b)
        a.advance()
        assert not a.state_equal(b)
