"""Unit tests for the CoreNetwork model container."""

import numpy as np
import pytest

from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork, NeuronTarget
from repro.arch.params import MAX_DELAY, NeuronParameters
from repro.errors import WiringError


class TestConstruction:
    def test_basic_shapes(self):
        net = CoreNetwork(4)
        assert net.n_cores == 4
        assert net.n_neurons == 4 * 256
        assert net.crossbars.shape == (4, 256, 32)
        assert (net.target_gid == -1).all()

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CoreNetwork(0)

    def test_core_seeds_derived_from_network_seed(self):
        a = CoreNetwork(3, seed=1)
        b = CoreNetwork(3, seed=1)
        c = CoreNetwork(3, seed=2)
        assert np.array_equal(a.core_seeds, b.core_seeds)
        assert not np.array_equal(a.core_seeds, c.core_seeds)


class TestConfiguration:
    def test_set_get_crossbar(self):
        net = CoreNetwork(2)
        cb = Crossbar.identity()
        net.set_crossbar(1, cb)
        assert net.get_crossbar(1) == cb

    def test_set_crossbar_from_dense(self):
        net = CoreNetwork(1)
        dense = np.eye(256, dtype=bool)
        net.set_crossbar(0, dense)
        assert net.get_crossbar(0).get(5, 5)

    def test_rejects_wrong_geometry_crossbar(self):
        net = CoreNetwork(1)
        with pytest.raises(WiringError):
            net.set_crossbar(0, np.eye(16, dtype=bool))

    def test_axon_types_validation(self):
        net = CoreNetwork(1)
        with pytest.raises(WiringError):
            net.set_axon_types(0, np.full(256, 7, dtype=np.uint8))
        with pytest.raises(WiringError):
            net.set_axon_types(0, np.zeros(100, dtype=np.uint8))

    def test_set_neuron(self):
        net = CoreNetwork(1)
        p = NeuronParameters(threshold=9)
        net.set_neuron(0, 42, p)
        assert net.neuron_params.get_neuron(0, 42) == p


class TestConnectivity:
    def test_connect_and_get_target(self):
        net = CoreNetwork(3)
        net.connect(0, 5, NeuronTarget(2, 100, delay=4))
        t = net.get_target(0, 5)
        assert t == NeuronTarget(2, 100, 4)

    def test_unconnected_returns_none(self):
        net = CoreNetwork(1)
        assert net.get_target(0, 0) is None

    def test_connect_rejects_bad_gid(self):
        net = CoreNetwork(2)
        with pytest.raises(WiringError):
            net.connect(0, 0, NeuronTarget(5, 0))

    def test_connect_rejects_bad_axon(self):
        net = CoreNetwork(2)
        with pytest.raises(WiringError):
            net.connect(0, 0, NeuronTarget(1, 256))

    def test_connect_rejects_bad_delay(self):
        net = CoreNetwork(2)
        with pytest.raises(WiringError):
            net.connect(0, 0, NeuronTarget(1, 0, delay=0))
        with pytest.raises(WiringError):
            net.connect(0, 0, NeuronTarget(1, 0, delay=MAX_DELAY + 1))

    def test_connect_many(self):
        net = CoreNetwork(4)
        src = np.array([0, 0, 1])
        neu = np.array([0, 1, 2])
        tgt = np.array([1, 2, 3])
        ax = np.array([10, 20, 30])
        net.connect_many(src, neu, tgt, ax, delay=2)
        assert net.get_target(0, 1) == NeuronTarget(2, 20, 2)
        assert net.connected_neuron_count == 3

    def test_connect_many_validates(self):
        net = CoreNetwork(2)
        with pytest.raises(WiringError):
            net.connect_many(
                np.array([0]), np.array([0]), np.array([9]), np.array([0])
            )

    def test_validate_detects_corruption(self):
        net = CoreNetwork(2)
        net.connect(0, 0, NeuronTarget(1, 0))
        net.target_axon[0, 0] = 999  # simulated corruption
        with pytest.raises(WiringError):
            net.validate()


class TestAccounting:
    def test_synapse_count(self):
        net = CoreNetwork(2)
        net.set_crossbar(0, Crossbar.identity())
        assert net.synapse_count == 256

    def test_model_nbytes_scales_with_cores(self):
        small = CoreNetwork(2).model_nbytes()
        large = CoreNetwork(8).model_nbytes()
        assert large == 4 * small
