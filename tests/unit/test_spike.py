"""Unit tests for the spike wire format."""

import numpy as np
import pytest

from repro.arch.spike import SPIKE_WIRE_BYTES, SpikeBatch


def make_batch(n: int = 5, tick: int = 3) -> SpikeBatch:
    return SpikeBatch(
        np.arange(n, dtype=np.int64) * 1000,
        np.arange(n, dtype=np.int32) % 256,
        (np.arange(n, dtype=np.int32) % 15) + 1,
        tick,
    )


class TestWireFormat:
    def test_paper_spike_size(self):
        assert SPIKE_WIRE_BYTES == 20

    def test_nbytes(self):
        assert make_batch(7).nbytes == 7 * 20

    def test_encode_decode_round_trip(self):
        b = make_batch(100, tick=9)
        assert SpikeBatch.decode(b.encode()) == b

    def test_empty_batch(self):
        e = SpikeBatch.empty()
        assert e.count == 0
        assert e.nbytes == 0
        assert SpikeBatch.decode(e.encode()) == e

    def test_encode_length(self):
        assert len(make_batch(13).encode()) == 13 * 20

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            SpikeBatch(
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int32),
                np.zeros(3, dtype=np.int32),
                0,
            )


class TestConcatenate:
    def test_concatenate(self):
        a, b = make_batch(3, tick=1), make_batch(4, tick=2)
        c = SpikeBatch.concatenate([a, b])
        assert c.count == 7
        assert list(c.tick[:3]) == [1, 1, 1]
        assert list(c.tick[3:]) == [2, 2, 2, 2]

    def test_concatenate_skips_empty(self):
        c = SpikeBatch.concatenate([SpikeBatch.empty(), make_batch(2)])
        assert c.count == 2

    def test_concatenate_all_empty(self):
        assert SpikeBatch.concatenate([SpikeBatch.empty()]).count == 0
