"""Unit tests for mailboxes and message matching."""

import pytest

from repro.errors import CommunicationError
from repro.runtime.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message


def msg(source=0, dest=1, tag=0, payload="x", nbytes=1) -> Message:
    return Message(source, dest, tag, payload, nbytes)


class TestDelivery:
    def test_deliver_and_pop(self):
        mb = Mailbox(1)
        mb.deliver(msg(payload="hello"))
        assert mb.pop().payload == "hello"
        assert len(mb) == 0

    def test_wrong_destination_rejected(self):
        mb = Mailbox(2)
        with pytest.raises(CommunicationError):
            mb.deliver(msg(dest=1))

    def test_fifo_per_pair(self):
        mb = Mailbox(1)
        mb.deliver(msg(payload="a"))
        mb.deliver(msg(payload="b"))
        assert mb.pop().payload == "a"
        assert mb.pop().payload == "b"


class TestMatching:
    def test_probe_by_source(self):
        mb = Mailbox(1)
        mb.deliver(msg(source=3, payload="three"))
        mb.deliver(msg(source=5, payload="five"))
        assert mb.probe(source=5).payload == "five"
        assert mb.probe(source=9) is None

    def test_probe_by_tag(self):
        mb = Mailbox(1)
        mb.deliver(msg(tag=7, payload="t7"))
        assert mb.probe(tag=7).payload == "t7"
        assert mb.probe(tag=8) is None

    def test_wildcards(self):
        mb = Mailbox(1)
        mb.deliver(msg(source=2, tag=9))
        assert mb.probe(ANY_SOURCE, ANY_TAG) is not None

    def test_pop_unmatched_raises(self):
        mb = Mailbox(1)
        with pytest.raises(CommunicationError):
            mb.pop(source=4)

    def test_pop_skips_non_matching(self):
        mb = Mailbox(1)
        mb.deliver(msg(source=2, payload="first"))
        mb.deliver(msg(source=3, payload="second"))
        assert mb.pop(source=3).payload == "second"
        assert mb.pop().payload == "first"

    def test_clear(self):
        mb = Mailbox(1)
        mb.deliver(msg())
        mb.clear()
        assert len(mb) == 0
