"""Unit tests for the CoreObject compact description format."""

import pytest

from repro.arch.params import NeuronParameters, ResetMode
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.errors import ConfigurationError


def tiny_object() -> CoreObject:
    return CoreObject(
        name="tiny",
        regions=[
            RegionSpec(name="A", n_cores=2, region_class="cortical"),
            RegionSpec(name="B", n_cores=3, region_class="thalamic"),
        ],
        connections=[
            ConnectionSpec("A", "B", count=100, delay=2),
            ConnectionSpec("A", "A", count=50),
            ConnectionSpec("B", "A", count=200, delay=3),
        ],
        seed=9,
    )


class TestValidation:
    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            CoreObject(
                "x",
                regions=[RegionSpec("A", 1), RegionSpec("A", 1)],
                connections=[],
            )

    def test_unknown_region_in_connection_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown region"):
            CoreObject(
                "x",
                regions=[RegionSpec("A", 1)],
                connections=[ConnectionSpec("A", "Z", 1)],
            )

    def test_region_fraction_sum_enforced(self):
        with pytest.raises(ConfigurationError):
            RegionSpec("A", 1, axon_type_fractions=(0.5, 0.1, 0.0, 0.0))

    def test_bad_region_class(self):
        with pytest.raises(ConfigurationError):
            RegionSpec("A", 1, region_class="spinal")

    def test_connection_delay_bounds(self):
        with pytest.raises(ConfigurationError):
            ConnectionSpec("A", "B", 1, delay=0)
        with pytest.raises(ConfigurationError):
            ConnectionSpec("A", "B", 1, delay=99)

    def test_capacity_check_out_degree(self):
        obj = CoreObject(
            "x",
            regions=[RegionSpec("A", 1), RegionSpec("B", 1)],
            connections=[ConnectionSpec("A", "B", 257)],
        )
        with pytest.raises(ConfigurationError, match="outgoing"):
            obj.validate_capacity(neurons_per_core=256)

    def test_capacity_check_in_degree(self):
        obj = CoreObject(
            "x",
            regions=[RegionSpec("A", 2), RegionSpec("B", 1)],
            connections=[ConnectionSpec("A", "B", 300)],
        )
        with pytest.raises(ConfigurationError, match="incoming"):
            obj.validate_capacity(axons_per_core=256)


class TestDerived:
    def test_n_cores(self):
        assert tiny_object().n_cores == 5

    def test_region_lookup(self):
        obj = tiny_object()
        assert obj.region("B").n_cores == 3
        with pytest.raises(KeyError):
            obj.region("Z")

    def test_connection_matrix(self):
        m = tiny_object().connection_matrix()
        assert m[0, 1] == 100
        assert m[0, 0] == 50
        assert m[1, 0] == 200
        assert m[1, 1] == 0


class TestSerialisation:
    def test_json_round_trip(self):
        obj = tiny_object()
        restored = CoreObject.from_json(obj.to_json())
        assert restored.to_dict() == obj.to_dict()

    def test_file_round_trip(self, tmp_path):
        obj = tiny_object()
        path = tmp_path / "model.json"
        obj.to_json(path)
        restored = CoreObject.from_json(path)
        assert restored.name == "tiny"
        assert restored.n_cores == 5

    def test_neuron_parameters_preserved(self):
        p = NeuronParameters(
            weights=(7, -3, 1, 0),
            stochastic_weights=(True, False, False, True),
            leak=-9,
            stochastic_leak=True,
            threshold=44,
            reset_mode=ResetMode.LINEAR,
            floor=-77,
        )
        obj = CoreObject(
            "x", regions=[RegionSpec("A", 1, neuron=p)], connections=[]
        )
        restored = CoreObject.from_json(obj.to_json())
        assert restored.region("A").neuron == p

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            CoreObject.from_dict({"format": "bogus/9"})

    def test_description_is_compact(self):
        # The whole point of §IV: kilobytes of description for an
        # arbitrarily large explicit model.
        assert tiny_object().description_nbytes() < 4096
