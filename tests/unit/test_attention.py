"""Unit tests for the saliency attention mechanism."""

import numpy as np
import pytest

from repro.apps.attention import (
    GRID,
    RETINA,
    SaliencyAttention,
    patch_of_pixel,
    scene_with_object,
)


class TestGeometry:
    def test_patch_of_pixel(self):
        assert patch_of_pixel(0) == 0
        assert patch_of_pixel(RETINA - 1) == GRID - 1  # top-right pixel
        assert patch_of_pixel(RETINA * RETINA - 1) == GRID * GRID - 1

    def test_patch_bounds(self):
        assert SaliencyAttention.patch_bounds(0, 0) == (0, 0, 4, 4)
        assert SaliencyAttention.patch_bounds(3, 3) == (12, 12, 16, 16)

    def test_scene_has_object(self):
        img = scene_with_object(1, 2, noise=0.0)
        assert img[4:8, 8:12].all()
        assert img.sum() == 16


class TestAttention:
    @pytest.fixture(scope="class")
    def attention(self):
        return SaliencyAttention()

    def test_finds_clean_object(self, attention):
        for pos in [(0, 0), (1, 2), (3, 3)]:
            img = scene_with_object(*pos, noise=0.0)
            assert attention.attend(img) == pos

    def test_finds_object_in_noise(self, attention):
        hits = 0
        for seed in range(6):
            img = scene_with_object(2, 1, noise=0.08, seed=seed)
            hits += attention.attend(img) == (2, 1)
        assert hits >= 5

    def test_blank_scene_flat_map(self, attention):
        sal = attention.saliency_map(np.zeros((RETINA, RETINA), dtype=bool))
        assert sal.sum() == 0

    def test_saliency_peaks_at_object(self, attention):
        img = scene_with_object(0, 3, noise=0.0)
        sal = attention.saliency_map(img)
        assert sal[0, 3] == sal.max()
        assert sal[0, 3] > 0

    def test_rejects_wrong_shape(self, attention):
        with pytest.raises(ValueError):
            attention.attend(np.zeros((8, 8), dtype=bool))

    def test_surround_suppresses_diffuse_light(self):
        """With inhibition, full-field illumination is less salient than a
        single object relative to the no-inhibition core."""
        with_surround = SaliencyAttention(surround_inhibition=True)
        without = SaliencyAttention(surround_inhibition=False)
        full = np.ones((RETINA, RETINA), dtype=bool)
        sal_w = with_surround.saliency_map(full).sum()
        sal_wo = without.saliency_map(full).sum()
        assert sal_w < sal_wo

    def test_no_surround_variant_still_attends(self):
        plain = SaliencyAttention(surround_inhibition=False)
        img = scene_with_object(2, 2, noise=0.0)
        assert plain.attend(img) == (2, 2)
