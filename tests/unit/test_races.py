"""Unit tests for the happens-before race detector.

Covers the vector-clock algebra, the two race classes (wildcard-recv and
shared-buffer) with their vector-clock witnesses, the orderings that must
*not* be flagged (causal chains, collective fences, fork/join), and the
end-to-end contract: a sanitized Compass run reports zero races and
bit-identical spikes.
"""

import numpy as np

from repro.check.races import HappensBeforeDetector, VectorClock
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.runtime.mpi import VirtualMpiCluster
from repro.runtime.threads import sanitize_thread_writes


class TestVectorClock:
    def test_tick_and_get(self):
        c = VectorClock()
        assert c.get("a") == 0
        c.tick("a")
        c.tick("a")
        assert c.get("a") == 2

    def test_merge_is_componentwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 5, "z": 2})
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 5, "z": 2}

    def test_happens_before_after_message(self):
        sender = VectorClock()
        sender.tick("s")  # the send event
        receiver = VectorClock()
        receiver.merge(sender)
        receiver.tick("r")  # the receive event
        assert sender.happens_before(receiver)
        assert not receiver.happens_before(sender)
        assert not sender.concurrent(receiver)

    def test_concurrent_when_neither_dominates(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"b": 1})
        assert a.concurrent(b)
        assert b.concurrent(a)

    def test_equal_clocks_not_happens_before(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"a": 1})
        assert not a.happens_before(b)
        assert a.dominates(b) and b.dominates(a)

    def test_copy_is_independent(self):
        a = VectorClock({"a": 1})
        b = a.copy()
        b.tick("a")
        assert a.get("a") == 1 and b.get("a") == 2


def cluster_with_detector(n_ranks):
    det = HappensBeforeDetector(n_ranks)
    return VirtualMpiCluster(n_ranks, sanitizer=det), det


class TestWildcardRecvRace:
    def inject(self, probe=True):
        """Two concurrent senders, then a wildcard match at rank 0."""
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "a", nbytes=8, tag=0)
        cluster.endpoints[2].isend(0, "b", nbytes=8, tag=0)
        ep = cluster.endpoints[0]
        if probe:
            ep.iprobe()
        else:
            ep.recv()
        return det.report()

    def test_injected_iprobe_race_detected(self):
        report = self.inject(probe=True)
        assert not report.passed
        (race,) = report.races
        assert race.kind == "wildcard-recv"
        assert set(race.actors) == {"rank1", "rank2"}

    def test_witness_clocks_are_concurrent(self):
        """The report must carry a vector-clock witness: the two send
        snapshots, mutually unordered."""
        (race,) = self.inject(probe=True).races
        assert len(race.witness) == 2
        a, b = (VectorClock(c) for c in race.witness.values())
        assert a.concurrent(b)
        assert "ANY_SOURCE" in race.detail
        assert "RACE[wildcard-recv]" in race.format()

    def test_recv_path_detects_too(self):
        report = self.inject(probe=False)
        assert [r.kind for r in report.races] == ["wildcard-recv"]

    def test_race_deduplicated_across_probe_and_recv(self):
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "a", nbytes=8)
        cluster.endpoints[2].isend(0, "b", nbytes=8)
        ep = cluster.endpoints[0]
        ep.iprobe()
        ep.recv()
        ep.iprobe()
        ep.recv()
        assert len(det.report().races) == 1

    def test_commutative_context_suppresses(self):
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "a", nbytes=8)
        cluster.endpoints[2].isend(0, "b", nbytes=8)
        ep = cluster.endpoints[0]
        with det.commutative_delivery():
            while ep.iprobe():
                ep.recv(commutative=True)
        assert det.report().passed

    def test_specific_source_recv_is_not_wildcard(self):
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "a", nbytes=8)
        cluster.endpoints[2].isend(0, "b", nbytes=8)
        cluster.endpoints[0].recv(source=1)
        cluster.endpoints[0].recv(source=2)
        assert det.report().passed

    def test_same_source_messages_never_race(self):
        cluster, det = cluster_with_detector(2)
        cluster.endpoints[1].isend(0, "a", nbytes=8)
        cluster.endpoints[1].isend(0, "b", nbytes=8)
        cluster.endpoints[0].iprobe()
        assert det.report().passed

    def test_causally_ordered_sends_never_race(self):
        """rank1 → rank0, then a token rank1 → rank2, then rank2 → rank0:
        the two pending messages at rank 0 are ordered through the token,
        so the wildcard receive is safe."""
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "first", nbytes=8)
        cluster.endpoints[1].isend(2, "token", nbytes=8)
        cluster.endpoints[2].recv(source=1)
        cluster.endpoints[2].isend(0, "second", nbytes=8)
        cluster.endpoints[0].iprobe()
        cluster.endpoints[0].recv()
        cluster.endpoints[0].recv()
        assert det.report().passed, det.report().format()

    def test_collective_is_a_fence(self):
        """A message sent before a Reduce-Scatter cannot race one sent
        after it — the collective orders every rank past every send."""
        cluster, det = cluster_with_detector(3)
        cluster.endpoints[1].isend(0, "pre", nbytes=8)
        counts = np.zeros(3, dtype=np.int64)
        for ep in cluster.endpoints:
            ep.reduce_scatter(counts)
        for ep in cluster.endpoints:
            ep.reduce_scatter_fetch()
        cluster.reduce_scatter_finish()
        cluster.endpoints[2].isend(0, "post", nbytes=8)
        cluster.endpoints[0].iprobe()
        assert det.report().passed


class TestSharedBufferRace:
    def test_overlapping_concurrent_writes_detected(self):
        det = HappensBeforeDetector(1, threads_per_rank=2)
        t0, t1 = det.fork_threads(0, 2)
        det.on_shared_write(t0, ("pending", 0), 0, 10)
        det.on_shared_write(t1, ("pending", 0), 5, 15)
        report = det.report()
        (race,) = report.races
        assert race.kind == "shared-buffer"
        assert set(race.actors) == {t0, t1}
        a, b = (VectorClock(c) for c in race.witness.values())
        assert a.concurrent(b)

    def test_write_read_conflict_detected(self):
        det = HappensBeforeDetector(1, threads_per_rank=2)
        t0, t1 = det.fork_threads(0, 2)
        det.on_shared_write(t0, "buf", 0, 10)
        det.on_shared_read(t1, "buf", 0, 10)
        assert [r.kind for r in det.report().races] == ["shared-buffer"]

    def test_disjoint_spans_do_not_race(self):
        det = HappensBeforeDetector(1, threads_per_rank=2)
        t0, t1 = det.fork_threads(0, 2)
        det.on_shared_write(t0, "buf", 0, 10)
        det.on_shared_write(t1, "buf", 10, 20)
        assert det.report().passed

    def test_reads_never_race_reads(self):
        det = HappensBeforeDetector(1, threads_per_rank=2)
        t0, t1 = det.fork_threads(0, 2)
        det.on_shared_read(t0, "buf", 0, 10)
        det.on_shared_read(t1, "buf", 0, 10)
        assert det.report().passed

    def test_join_orders_successive_teams(self):
        """A write in tick N's team happens-before any write in tick N+1's
        team: the join/fork chain orders them, so no race."""
        det = HappensBeforeDetector(1, threads_per_rank=2)
        t0, _ = det.fork_threads(0, 2)
        det.on_shared_write(t0, "buf", 0, 10)
        det.join_threads(0, 2)
        _, t1 = det.fork_threads(0, 2)
        det.on_shared_write(t1, "buf", 0, 10)
        assert det.report().passed

    def test_sanitize_thread_writes_partition_is_race_free(self):
        det = HappensBeforeDetector(2, threads_per_rank=4)
        for tick in range(3):
            for rank in range(2):
                sanitize_thread_writes(det, rank, n_cores=16, n_threads=4)
        report = det.report()
        assert report.passed
        assert report.events["shared_writes"] == 3 * 2 * 4


class TestSanitizedSimulation:
    def test_sanitized_run_is_race_free_and_bit_identical(self, quicknet):
        """The paper's main loop under the sanitizer: zero races, and the
        instrumentation must not perturb the spike raster."""
        cfg = CompassConfig(n_processes=4, record_spikes=True)
        plain = Compass(quicknet, cfg)
        plain.run(40)
        sanitized = Compass(quicknet, cfg, sanitize=True)
        sanitized.run(40)
        report = sanitized.race_report()
        assert report.passed, report.format()
        assert report.events["sends"] > 0
        assert report.events["collective_contributions"] == 40 * 4
        for a, b in zip(plain.recorder.to_arrays(), sanitized.recorder.to_arrays()):
            assert np.array_equal(a, b)

    def test_unsanitized_run_has_no_detector(self, quicknet):
        sim = Compass(quicknet, CompassConfig(n_processes=2))
        assert sim.race_report() is None

    def test_pgas_backend_sanitized(self, quicknet):
        from repro.core.pgas_simulator import PgasCompass

        sim = PgasCompass(quicknet, CompassConfig(n_processes=4), sanitize=True)
        sim.run(20)
        report = sim.race_report()
        assert report.passed, report.format()
