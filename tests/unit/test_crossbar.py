"""Unit tests for the binary synaptic crossbar."""

import numpy as np
import pytest

from repro.arch.crossbar import Crossbar


class TestConstruction:
    def test_zeros(self):
        cb = Crossbar.zeros()
        assert cb.synapse_count == 0
        assert cb.num_axons == 256
        assert cb.num_neurons == 256

    def test_from_dense_round_trip(self):
        rng = np.random.default_rng(0)
        dense = rng.random((256, 256)) < 0.2
        cb = Crossbar.from_dense(dense)
        assert np.array_equal(cb.to_dense(), dense)

    def test_identity(self):
        cb = Crossbar.identity(16)
        dense = cb.to_dense()
        assert np.array_equal(dense, np.eye(16, dtype=bool))

    def test_random_density(self):
        rng = np.random.default_rng(1)
        cb = Crossbar.random(rng, density=0.25)
        assert 0.2 < cb.density < 0.3

    def test_random_rejects_bad_density(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            Crossbar.random(rng, density=1.5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Crossbar.from_dense(np.zeros(10))

    def test_packed_storage_is_32x_smaller_than_c2_struct(self):
        # §I: the synapse is a bit -> 32x less storage than C2's 4-byte
        # synapse struct (256*256 synapses * 4 B vs packed bits).
        cb = Crossbar.zeros()
        c2_bytes = 256 * 256 * 4
        assert c2_bytes / cb.nbytes == 32.0


class TestAccess:
    def test_set_get(self):
        cb = Crossbar.zeros()
        cb.set(3, 200, True)
        assert cb.get(3, 200)
        assert not cb.get(3, 201)
        cb.set(3, 200, False)
        assert not cb.get(3, 200)

    def test_row_matches_dense(self):
        rng = np.random.default_rng(2)
        dense = rng.random((256, 256)) < 0.1
        cb = Crossbar.from_dense(dense)
        for axon in (0, 7, 255):
            assert np.array_equal(cb.row(axon), dense[axon])

    def test_synapse_count(self):
        cb = Crossbar.zeros()
        cb.set(0, 0)
        cb.set(10, 20)
        cb.set(255, 255)
        assert cb.synapse_count == 3

    def test_equality(self):
        rng = np.random.default_rng(3)
        dense = rng.random((256, 256)) < 0.1
        assert Crossbar.from_dense(dense) == Crossbar.from_dense(dense)
        other = dense.copy()
        other[0, 0] = ~other[0, 0]
        assert Crossbar.from_dense(dense) != Crossbar.from_dense(other)
