"""Unit tests for the compile-time model checker.

A freshly compiled model passes every structural check; each test then
corrupts one aspect of a (function-scoped) compiled model and asserts the
checker rejects it with the right ``check_id`` and a machine-readable
context — the structured diagnostic the acceptance gate requires.
"""

import numpy as np
import pytest

from repro.arch.params import NUM_AXON_TYPES
from repro.check.model import (
    Diagnostic,
    ModelCheckReport,
    check_ipfp_balance,
    check_model,
)
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.pcc import ParallelCompassCompiler
from repro.errors import CompilationError


@pytest.fixture()
def compiled():
    """A small two-region model, recompiled per test so mutation is safe."""
    obj = CoreObject(
        "model-check-test",
        regions=[RegionSpec("A", 2), RegionSpec("B", 2)],
        connections=[ConnectionSpec("A", "B", 64), ConnectionSpec("B", "A", 32)],
        seed=3,
    )
    return ParallelCompassCompiler(model_check=False).compile(obj)


def error_ids(report):
    return {d.check_id for d in report.errors}


class TestValidModel:
    def test_fresh_compile_passes(self, compiled):
        report = check_model(compiled)
        assert report.passed
        assert not report.errors
        infos = {d.check_id for d in report.diagnostics if d.severity == "info"}
        assert infos == {
            "dangling_axon_target",
            "crossbar_index_bounds",
            "ipfp_balance",
            "placement_capacity",
        }
        assert "model check passed" in report.format()

    def test_compiler_runs_checker_by_default(self):
        obj = CoreObject(
            "auto-check",
            regions=[RegionSpec("A", 2)],
            connections=[ConnectionSpec("A", "A", 16)],
            seed=5,
        )
        compiled = ParallelCompassCompiler().compile(obj)
        assert compiled.network.n_cores == 2

    def test_compiler_raises_on_failed_check(self, monkeypatch):
        import repro.check.model as model_mod

        failing = ModelCheckReport()
        failing.add("dangling_axon_target", "error", "injected failure")
        monkeypatch.setattr(model_mod, "check_model", lambda compiled: failing)
        obj = CoreObject(
            "auto-check",
            regions=[RegionSpec("A", 2)],
            connections=[ConnectionSpec("A", "A", 16)],
            seed=5,
        )
        with pytest.raises(CompilationError, match="dangling_axon_target"):
            ParallelCompassCompiler().compile(obj)
        # model_check=False skips the checker entirely.
        compiled = ParallelCompassCompiler(model_check=False).compile(obj)
        assert compiled.network.n_cores == 2


class TestDanglingTarget:
    def test_dangling_gid_rejected_with_structured_diagnostic(self, compiled):
        src_core, src_neuron = np.nonzero(compiled.network.target_gid >= 0)
        compiled.network.target_gid[src_core[0], src_neuron[0]] = 999
        report = check_model(compiled)
        assert not report.passed
        (diag,) = [d for d in report.errors if d.check_id == "dangling_axon_target"]
        assert diag.context["count"] == 1
        (example,) = diag.context["examples"]
        assert example["target_gid"] == 999
        assert example["src_core"] == int(src_core[0])
        with pytest.raises(CompilationError, match="dangling_axon_target"):
            report.raise_if_failed()

    def test_out_of_range_axon_rejected(self, compiled):
        src_core, src_neuron = np.nonzero(compiled.network.target_gid >= 0)
        compiled.network.target_axon[src_core[0], src_neuron[0]] = (
            compiled.network.num_axons
        )
        assert "dangling_axon_target" in error_ids(check_model(compiled))

    def test_illegal_delay_rejected(self, compiled):
        src_core, src_neuron = np.nonzero(compiled.network.target_gid >= 0)
        compiled.network.target_delay[src_core[0], src_neuron[0]] = 0
        assert "dangling_axon_target" in error_ids(check_model(compiled))


class TestCrossbarBounds:
    def test_axon_type_past_weight_table_rejected(self, compiled):
        compiled.network.axon_types[1, 0] = NUM_AXON_TYPES
        report = check_model(compiled)
        (diag,) = [d for d in report.errors if d.check_id == "crossbar_index_bounds"]
        assert diag.context["max_type"] == NUM_AXON_TYPES
        assert diag.context["example_cores"] == [1]

    def test_wrong_packed_shape_rejected(self, compiled):
        compiled.network.crossbars = compiled.network.crossbars[:, :, :-1]
        report = check_model(compiled)
        (diag,) = [d for d in report.errors if d.check_id == "crossbar_index_bounds"]
        assert diag.context["expected"][0] == compiled.network.n_cores


class TestRegionLayoutAndPlacement:
    def test_tampered_range_rejected(self, compiled):
        compiled.region_ranges["A"] = (0, 3)
        assert "region_layout" in error_ids(check_model(compiled))

    def test_collapsed_region_breaks_placement(self, compiled):
        compiled.region_ranges["B"] = (2, 2)
        ids = error_ids(check_model(compiled))
        assert "region_layout" in ids
        assert "placement_capacity" in ids


class TestIpfpBalance:
    def test_capacity_overflow_is_error(self):
        matrix = np.array([[0, 70000], [0, 0]], dtype=np.int64)
        diags = check_ipfp_balance(
            matrix,
            out_caps=np.array([512, 512]),
            in_caps=np.array([512, 512]),
            names=["A", "B"],
        )
        errors = [d for d in diags if d.severity == "error"]
        assert {d.context["region"] for d in errors} == {"A", "B"}
        assert any("outgoing" in d.message for d in errors)
        assert any("incoming" in d.message for d in errors)

    def test_marginal_targets_enforced(self):
        matrix = np.array([[0, 100], [100, 0]], dtype=np.int64)
        diags = check_ipfp_balance(
            matrix,
            out_caps=np.array([512, 512]),
            in_caps=np.array([512, 512]),
            names=["A", "B"],
            tolerance=0.05,
            row_targets=np.array([200.0, 100.0]),
        )
        (err,) = [d for d in diags if d.severity == "error"]
        assert err.context["region"] == "A"
        assert err.context["relative_error"] == pytest.approx(0.5)

    def test_balanced_matrix_reports_utilisation(self):
        matrix = np.array([[0, 100], [100, 0]], dtype=np.int64)
        (info,) = check_ipfp_balance(
            matrix,
            out_caps=np.array([512, 512]),
            in_caps=np.array([512, 512]),
        )
        assert info.severity == "info"
        assert info.context["max_out_utilisation"] == pytest.approx(100 / 512)


class TestReport:
    def test_diagnostic_format(self):
        d = Diagnostic("ipfp_balance", "error", "too many connections")
        assert d.format() == "ERROR [ipfp_balance] too many connections"

    def test_report_counts_errors_only(self):
        report = ModelCheckReport()
        report.add("x", "info", "fine")
        assert report.passed
        report.add("y", "warning", "odd")
        assert report.passed
        report.add("z", "error", "broken")
        assert not report.passed
        assert "model check failed: 1 error(s)" in report.format()
