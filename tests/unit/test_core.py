"""Unit tests for the standalone NeurosynapticCore."""

import numpy as np
import pytest

from repro.arch.core import NeurosynapticCore
from repro.arch.crossbar import Crossbar
from repro.arch.params import NeuronParameters


def relay_core(seed: int = 0) -> NeurosynapticCore:
    core = NeurosynapticCore(seed=seed)
    core.set_crossbar(Crossbar.identity())
    core.set_axon_types(np.zeros(256, dtype=np.uint8))
    core.set_all_neurons(NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0))
    return core


class TestRelayBehaviour:
    def test_injected_spike_relays_after_one_tick(self):
        core = relay_core()
        core.inject(axon=7, delay=1)
        assert not core.step().any()  # injection lands at tick 1
        fired = core.step()
        assert fired[7] and fired.sum() == 1

    def test_inject_many(self):
        core = relay_core()
        core.inject_many(np.array([1, 2, 3]))
        core.step()
        fired = core.step()
        assert fired[[1, 2, 3]].all() and fired.sum() == 3

    def test_run_with_schedule(self):
        core = relay_core()
        raster = core.run(5, inputs={0: np.array([4]), 2: np.array([9])})
        assert raster[1, 4]
        assert raster[3, 9]
        assert raster.sum() == 2

    def test_silent_without_input(self):
        core = relay_core()
        assert core.run(20).sum() == 0

    def test_configuration_locked_after_first_tick(self):
        core = relay_core()
        core.step()
        with pytest.raises(RuntimeError):
            core.set_all_neurons(NeuronParameters())

    def test_potentials_visible(self):
        core = NeurosynapticCore()
        core.set_crossbar(Crossbar.identity())
        core.set_all_neurons(NeuronParameters(weights=(1, 0, 0, 0), threshold=5, floor=0))
        core.inject(axon=0)
        core.step()
        core.step()
        assert core.potentials[0] == 1


class TestAxonTypes:
    def test_inhibitory_axon_type(self):
        core = NeurosynapticCore()
        dense = np.zeros((256, 256), dtype=bool)
        dense[0, 0] = True  # excitatory axon -> neuron 0
        dense[1, 0] = True  # inhibitory axon -> neuron 0
        core.set_crossbar(dense)
        types = np.zeros(256, dtype=np.uint8)
        types[1] = 1
        core.set_axon_types(types)
        core.set_all_neurons(
            NeuronParameters(weights=(1, -1, 0, 0), threshold=1, floor=-4)
        )
        # Simultaneous excitation and inhibition cancel: no spike.
        core.inject(0)
        core.inject(1)
        core.step()
        assert not core.step().any()

    def test_determinism_same_seed(self):
        p = NeuronParameters(
            weights=(128, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=2,
            floor=0,
        )
        rasters = []
        for _ in range(2):
            core = NeurosynapticCore(seed=77)
            core.set_crossbar(Crossbar.identity())
            core.set_axon_types(np.zeros(256, dtype=np.uint8))
            core.set_all_neurons(p)
            rasters.append(
                core.run(50, inputs={t: np.arange(16) for t in range(40)})
            )
        assert np.array_equal(rasters[0], rasters[1])
