"""Unit tests for the metric registry (repro.obs.registry)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_per_rank_and_total(self):
        c = Counter("spikes")
        c.inc(0, 3)
        c.inc(1, 5)
        c.inc(0)
        assert c.value(0) == 4
        assert c.value(1) == 5
        assert c.value(7) == 0
        assert c.total() == 9
        assert c.ranks() == [0, 1]

    def test_negative_increment_rejected(self):
        c = Counter("spikes")
        with pytest.raises(ValueError, match="negative increment"):
            c.inc(0, -1)

    def test_snapshot_roundtrip(self):
        c = Counter("spikes")
        c.inc(0, 3)
        snap = c.snapshot()
        c.inc(0, 4)
        c.restore(snap)
        assert c.value(0) == 3


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(0, 5)
        g.set(0, 2)
        g.set(1, 9)
        assert g.value(0) == 2
        assert g.max() == 9
        assert g.total() == 11

    def test_empty_max(self):
        assert Gauge("depth").max() == 0.0


class TestHistogram:
    def test_binning_is_bisect_left(self):
        h = Histogram("msg", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 10.0, 11.0):
            h.observe(0, v)
        # le-edges: value == edge lands in that bucket (bisect_left).
        assert h.counts(0) == [2, 2, 1]
        assert h.count(0) == 5
        assert h.sum(0) == pytest.approx(24.5)

    def test_cumulative_ends_at_inf(self):
        h = Histogram("msg", buckets=(1.0, 10.0))
        h.observe(0, 0.5)
        h.observe(1, 99.0)
        cum = h.cumulative()
        assert cum[-1][0] == float("inf")
        assert cum == [(1.0, 1), (10.0, 1), (float("inf"), 2)]

    def test_reduced_counts_sum_ranks(self):
        h = Histogram("msg", buckets=(1.0,))
        h.observe(0, 0.0)
        h.observe(1, 5.0)
        assert h.counts() == [1, 1]
        assert h.count() == 2

    def test_needs_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("msg", buckets=())


class TestRegistry:
    def test_accessors_idempotent_and_kind_checked(self):
        reg = MetricRegistry()
        c = reg.counter("a", help="h")
        assert reg.counter("a") is c
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("a")
        with pytest.raises(KeyError, match="no instrument"):
            reg.get("missing")
        assert "a" in reg
        assert len(reg) == 1

    def test_collect_sorted(self):
        reg = MetricRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [i.name for i in reg.collect()] == ["aa", "zz"]

    def test_snapshot_prefix_scopes_rollback(self):
        """compass_* rolls back; resilience meta-counters stay monotone."""
        reg = MetricRegistry()
        reg.counter("compass_fired_total").inc(0, 10)
        reg.counter("resilience_checkpoints_total").inc(-1, 1)
        snap = reg.snapshot(prefix="compass_")
        assert list(snap) == ["compass_fired_total"]
        reg.counter("compass_fired_total").inc(0, 99)
        reg.counter("resilience_checkpoints_total").inc(-1, 1)
        reg.restore(snap)
        assert reg.counter("compass_fired_total").value(0) == 10
        assert reg.counter("resilience_checkpoints_total").value(-1) == 2

    def test_restore_ignores_unknown_names(self):
        reg = MetricRegistry()
        reg.restore({"never_registered": {"values": {0: 1}}})
        assert "never_registered" not in reg
