"""Unit tests for repro.obs.prof: host profile accounting, the sampling
profiler, tracemalloc memory attribution, and ``repro obs why``."""

import json
import time

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.obs import NULL_PROFILE, HostProfile, Observability
from repro.obs.prof import (
    HostSampler,
    MemoryTracker,
    NullProfile,
    format_host_report,
    load_side,
    subsystem_of,
    why_bench,
    why_history,
    why_paths,
    why_trace,
    work_units_from_metrics,
)


class TestNullProfile:
    def test_default_observability_carries_null_profile(self):
        obs = Observability.off()
        assert obs.prof is NULL_PROFILE
        assert not obs.profiling

    def test_null_profile_is_inert(self):
        NULL_PROFILE.phase("synapse", 0, 0.5, active_axons=3)
        assert NULL_PROFILE.rows() == []
        assert NULL_PROFILE.folded() == {}
        assert not NullProfile.enabled

    def test_with_profiling_attaches_enabled_profile(self):
        obs = Observability.with_profiling(sampler=False, memory=False)
        assert obs.profiling
        assert obs.prof.enabled
        assert isinstance(obs.prof, HostProfile)


class TestHostProfile:
    def test_phase_accumulates_ns_work_and_calls(self):
        prof = HostProfile()
        prof.phase("synapse", 0, 1e-6, active_axons=10)
        prof.phase("synapse", 0, 1e-6, active_axons=4)
        prof.phase("neuron", 1, 2e-6, fired=2, messages=1)
        rows = {(r.phase, r.rank): r for r in prof.rows()}
        syn = rows[("synapse", 0)]
        # span_cost("synapse", ...) = 1 + active_axons per call.
        assert syn.work_units == 11 + 5
        assert syn.calls == 2
        assert syn.host_ns == 2000
        neu = rows[("neuron", 1)]
        assert neu.work_units == 1 + 2 * 4 + 1
        assert prof.total_host_ns == 4000
        assert prof.total_work_units == 16 + 10

    def test_explicit_work_overrides_span_cost(self):
        prof = HostProfile()
        prof.phase("pcc.layout", -1, 1e-9, work=123)
        (row,) = prof.rows()
        assert row.work_units == 123

    def test_rows_ranked_by_ns_per_work_unit(self):
        prof = HostProfile()
        prof.phase("cheap", 0, 1e-6, work=1000)
        prof.phase("costly", 0, 1e-6, work=10)
        rows = prof.rows()
        assert [r.phase for r in rows] == ["costly", "cheap"]
        assert rows[0].ns_per_work_unit == pytest.approx(100.0)

    def test_negative_host_seconds_clamped(self):
        prof = HostProfile()
        prof.phase("sync", 0, -0.5, work=1)
        assert prof.total_host_ns == 0

    def test_host_ns_per_work_unit_zero_without_work(self):
        assert HostProfile().host_ns_per_work_unit() == 0.0

    def test_report_names_divergence_hotspot(self):
        prof = HostProfile()
        prof.phase("network", 2, 5e-6, work=10)
        prof.phase("synapse", 0, 1e-6, work=100)
        report = format_host_report(prof)
        assert "host-cost divergence" in report
        assert "divergence hotspot: network (rank 2)" in report
        assert report == format_host_report(prof)  # stable layout

    def test_context_manager_runs_sampler_and_memory(self):
        prof = HostProfile(sampler=HostSampler(hz=500.0), memory=MemoryTracker())
        with prof:
            data = [list(range(200)) for _ in range(50)]
            time.sleep(0.02)
            del data
        assert prof.sampler.running is False
        assert prof.mem_report is not None
        assert prof.mem_report.peak_nbytes > 0


class TestWorkUnitsFromMetrics:
    def test_mirrors_phase_weights(self):
        from repro.core.metrics import RunMetrics

        m = RunMetrics(n_ranks=2)
        m.ticks = 3
        m.total_active_axons = 10
        m.total_fired = 2
        m.total_messages = 1
        m.total_local_spikes = 5
        m.total_remote_spikes = 4
        assert work_units_from_metrics(m) == (
            4 * 3 * 2 + 10 + 8 + 2 * 4 + 16 + 5 + 4
        )

    def test_quiescent_run_still_counts_baseline_spans(self):
        from repro.core.metrics import RunMetrics

        m = RunMetrics(n_ranks=4)
        m.ticks = 50
        assert work_units_from_metrics(m) == 4 * 50 * 4


class TestHostSampler:
    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ConfigurationError, match="hz"):
            HostSampler(hz=0)

    def test_samples_fold_under_host_root(self):
        sampler = HostSampler(hz=997.0)
        with sampler:
            deadline = time.perf_counter() + 2.0
            while sampler.samples < 3 and time.perf_counter() < deadline:
                sum(i * i for i in range(5000))
        folded = sampler.folded()
        assert sampler.samples >= 3
        assert folded
        assert all(key.startswith("host;") or key == "host" for key in folded)
        assert sum(folded.values()) == sampler.samples

    def test_folded_output_round_trips_through_parser(self):
        from repro.obs.analysis import parse_folded
        from repro.obs.analysis.flame import folded_lines

        sampler = HostSampler(hz=997.0)
        with sampler:
            deadline = time.perf_counter() + 2.0
            while sampler.samples < 1 and time.perf_counter() < deadline:
                sum(i * i for i in range(5000))
        text = "\n".join(folded_lines(sampler.folded()))
        assert parse_folded(text) == sampler.folded()

    def test_start_stop_idempotent(self):
        sampler = HostSampler()
        sampler.start()
        sampler.start()
        assert sampler.running
        sampler.stop()
        sampler.stop()
        assert not sampler.running


class TestSubsystemOf:
    def test_repro_subpackages(self):
        assert subsystem_of("/x/src/repro/core/simulator.py") == "core"
        assert subsystem_of("/x/src/repro/obs/prof/sampler.py") == "obs"
        assert subsystem_of("src/repro/arch/coreblock.py") == "arch"

    def test_top_level_module_is_other(self):
        assert subsystem_of("/x/src/repro/cli.py") == "repro.other"

    def test_outside_package_is_external(self):
        assert subsystem_of("/usr/lib/python3/json/decoder.py") == "external"


class TestMemoryTracker:
    def test_phase_deltas_attributed(self):
        tracker = MemoryTracker()
        tracker.start()
        hold = [bytes(50_000)]
        tracker.phase_delta("grow")
        del hold[:]
        tracker.phase_delta("shrink")
        report = tracker.stop()
        deltas = dict(report.phase_deltas)
        assert deltas["grow"] > 0
        assert deltas["shrink"] < 0
        assert report.peak_nbytes >= report.current_nbytes
        assert not tracker.tracking

    def test_subsystem_table_sorted_descending(self):
        tracker = MemoryTracker().start()
        from repro.apps import build_quickstart_network

        net = build_quickstart_network(n_cores=4, seed=1)
        report = tracker.stop()
        assert net.n_cores == 4
        sizes = [nbytes for _, nbytes, _ in report.subsystems]
        assert sizes == sorted(sizes, reverse=True)
        assert {name for name, _, _ in report.subsystems} & {"arch", "apps"}

    def test_report_json_schema(self):
        tracker = MemoryTracker().start()
        tracker.phase_delta("p")
        payload = json.loads(tracker.stop().to_json())
        assert payload["schema"] == 1
        assert {"current_nbytes", "peak_nbytes", "subsystems",
                "phase_deltas", "phase_peaks"} <= set(payload)

    def test_stop_without_start_is_empty(self):
        report = MemoryTracker().stop()
        assert report.peak_nbytes == 0
        assert report.subsystems == ()

    def test_piggybacks_on_live_tracing(self):
        import tracemalloc

        already = tracemalloc.is_tracing()
        tracker = MemoryTracker().start()
        tracker.stop()
        # The tracker never tears down a session someone else owns, and
        # fully releases one it started.
        assert tracemalloc.is_tracing() == already


def _bench(name, metrics, fingerprint="fp1"):
    derived = dict(metrics)
    mean = derived.pop("time_s", 0.1)
    return {
        "schema": 4,
        "name": name,
        "fingerprint": fingerprint,
        "params": {},
        "stats": {"n": 1, "mean": mean},
        "derived": derived,
    }


class TestWhyBench:
    def test_injected_regression_ranked_first(self):
        old = [
            _bench("tick", {"time_s": 0.10, "mem_peak_nbytes": 1000.0,
                            "mean_rate_hz": 5.0}),
            _bench("pcc", {"time_s": 0.50}),
        ]
        new = [
            _bench("tick", {"time_s": 0.10, "mem_peak_nbytes": 2500.0,
                            "mean_rate_hz": 9.0}),
            _bench("pcc", {"time_s": 0.50}),
        ]
        report = why_bench(old, new)
        top = report.top
        assert (top.scope, top.metric) == ("tick", "mem_peak_nbytes")
        assert top.gated and top.delta == 1500.0
        text = report.format()
        assert "root cause: tick / mem_peak_nbytes" in text
        # mean_rate_hz moved more in relative terms but is not gated, so
        # it must not displace the gated regression.
        assert text.index("mem_peak_nbytes") < text.index("mean_rate_hz")

    def test_identical_runs_report_no_regression(self):
        old = [_bench("tick", {"time_s": 0.1})]
        report = why_bench(old, [_bench("tick", {"time_s": 0.1})])
        assert "no regression: runs are metric-identical" in report.format()

    def test_improvement_is_largest_shift_not_root_cause(self):
        old = [_bench("tick", {"time_s": 0.2})]
        report = why_bench(old, [_bench("tick", {"time_s": 0.1})])
        text = report.format()
        assert "root cause" not in text
        assert "largest shift: tick / time_s" in text

    def test_disjoint_sets_raise(self):
        with pytest.raises(AnalysisError, match="no .*pairs"):
            why_bench([_bench("a", {"time_s": 1.0})],
                      [_bench("b", {"time_s": 1.0})])


class TestWhyHistory:
    def test_diffs_last_two_entries_per_key(self):
        records = [
            {"name": "tick", "fingerprint": "f", "metrics": {"time_s": 0.10}},
            {"name": "tick", "fingerprint": "f", "metrics": {"time_s": 0.11}},
            {"name": "tick", "fingerprint": "f", "metrics": {"time_s": 0.30}},
        ]
        report = why_history(records)
        assert report.kind == "history"
        assert report.top.old == 0.11
        assert report.top.new == 0.30
        assert report.top.direction == "regressed"

    def test_single_entry_history_raises(self):
        with pytest.raises(AnalysisError, match=">= 2"):
            why_history([{"name": "t", "fingerprint": "f",
                          "metrics": {"time_s": 0.1}}])


class TestWhyTrace:
    @staticmethod
    def _events(axons):
        from repro.obs import SpanTracer
        from repro.obs.analysis import load_events

        tr = SpanTracer()
        tr.begin_tick(0)
        tr.span("synapse", rank=0, phase="synapse", tick=0,
                active_axons=axons)
        tr.span("neuron", rank=0, phase="neuron", tick=0, fired=1,
                messages=0)
        return load_events(tr)

    def test_delta_share_ranks_changed_phase_first(self):
        report = why_trace(self._events(10), self._events(90))
        assert report.kind == "trace"
        assert report.top.metric.endswith("synapse")
        assert report.top.delta == 80
        assert report.shares()[0] > 0.9

    def test_empty_traces_raise(self):
        with pytest.raises(AnalysisError, match="phase spans"):
            why_trace([], [])


class TestLoadSideAndPaths:
    def test_classifies_bench_file_dir_and_trace(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(_bench("x", {"time_s": 1.0})))
        kind, payloads = load_side(bench)
        assert kind == "bench" and payloads[0]["name"] == "x"

        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_y.json").write_text(
            json.dumps(_bench("y", {"time_s": 2.0}))
        )
        kind, payloads = load_side(results)
        assert kind == "bench" and payloads[0]["name"] == "y"

        trace = tmp_path / "events.jsonl"
        trace.write_text('{"name": "tick", "ph": "X", "rank": -1}\n')
        kind, events = load_side(trace)
        assert kind == "trace" and events[0]["name"] == "tick"

    def test_unrecognizable_operand_raises(self, tmp_path):
        bad = tmp_path / "who.json"
        bad.write_text('{"neither": true}')
        with pytest.raises(AnalysisError, match="not a bench payload"):
            load_side(bad)

    def test_mixed_kinds_rejected(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(_bench("x", {"time_s": 1.0})))
        trace = tmp_path / "events.jsonl"
        trace.write_text('{"name": "tick", "ph": "X", "rank": -1}\n')
        with pytest.raises(AnalysisError, match="both sides"):
            why_paths(bench, trace)
