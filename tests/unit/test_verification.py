"""Unit tests for compiled-model verification."""

import numpy as np
import pytest

from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.pcc import ParallelCompassCompiler
from repro.compiler.verification import verify_compiled
from repro.errors import CompilationError


@pytest.fixture()
def compiled():
    obj = CoreObject(
        "verify-me",
        regions=[
            RegionSpec("A", 2, crossbar_density=0.25),
            RegionSpec("B", 2, crossbar_density=0.125, region_class="thalamic"),
        ],
        connections=[
            ConnectionSpec("A", "B", 100, delay=2),
            ConnectionSpec("B", "B", 40, delay=1),
        ],
        seed=4,
    )
    return ParallelCompassCompiler().compile(obj)


class TestVerification:
    def test_clean_compile_passes(self, compiled):
        report = verify_compiled(compiled)
        assert report.passed, report.failures()

    def test_detects_count_tampering(self, compiled):
        compiled.network.target_gid[0, 0] = -1  # drop one connection
        report = verify_compiled(compiled)
        assert not report.checks["connection_counts"]

    def test_detects_exclusivity_violation(self, compiled):
        net = compiled.network
        src = np.argwhere(net.target_gid >= 0)
        (g0, n0), (g1, n1) = src[0], src[1]
        net.target_gid[g1, n1] = net.target_gid[g0, n0]
        net.target_axon[g1, n1] = net.target_axon[g0, n0]
        report = verify_compiled(compiled)
        assert not report.checks["axon_exclusivity"]

    def test_detects_delay_corruption(self, compiled):
        net = compiled.network
        g, n = np.argwhere(net.target_gid >= 0)[0]
        net.target_delay[g, n] = 9
        report = verify_compiled(compiled)
        assert not report.checks["delays_match_spec"]

    def test_detects_density_drift(self, compiled):
        compiled.network.crossbars[0:2] = 0xFF  # region A fully dense
        report = verify_compiled(compiled)
        assert not report.checks["crossbar_density"]

    def test_strict_raises(self, compiled):
        compiled.network.target_gid[0, 0] = -1
        with pytest.raises(CompilationError, match="verification"):
            verify_compiled(compiled, strict=True)

    def test_report_details(self, compiled):
        compiled.network.target_gid[0, 0] = -1
        report = verify_compiled(compiled)
        assert "connection_counts" in report.failures()
        assert report.details.get("connection_counts")

    def test_macaque_model_verifies(self, macaque_small):
        report = verify_compiled(macaque_small.compiled)
        assert report.passed, report.failures()
