"""Unit tests for the consistent-hash shard ring."""

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.shard.ring import HashRing, RingConfig, RouteDecision, stable_hash64


class TestStableHash:
    def test_matches_sha256_prefix(self):
        expected = int.from_bytes(
            hashlib.sha256(b"tenant-42").digest()[:8], "big"
        )
        assert stable_hash64("tenant-42") == expected

    def test_process_independent_known_value(self):
        # A pinned value: if this ever changes, every ring layout — and
        # every blessed fleet report — changes with it.
        assert stable_hash64("t0") == 0x512F26ADA3C3D634


class TestRingConfig:
    def test_defaults_valid(self):
        RingConfig()

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            RingConfig(n_shards=0)

    def test_rejects_spill_beyond_neighbors(self):
        with pytest.raises(ConfigurationError):
            RingConfig(n_shards=2, spill=2)

    def test_single_shard_requires_zero_spill(self):
        RingConfig(n_shards=1, spill=0)
        with pytest.raises(ConfigurationError):
            RingConfig(n_shards=1, spill=1)


class TestLookup:
    def test_deterministic_across_instances(self):
        a = HashRing(RingConfig(n_shards=8))
        b = HashRing(RingConfig(n_shards=8))
        tenants = [f"t{i}" for i in range(500)]
        assert [a.lookup(t) for t in tenants] == [b.lookup(t) for t in tenants]

    def test_all_shards_reachable(self):
        ring = HashRing(RingConfig(n_shards=8))
        homes = {ring.lookup(f"t{i}") for i in range(2000)}
        assert homes == set(range(8))

    def test_vnodes_smooth_the_key_share(self):
        ring = HashRing(RingConfig(n_shards=4, vnodes=64))
        counts = [0] * 4
        for i in range(8000):
            counts[ring.lookup(f"t{i}")] += 1
        # With 64 vnodes/shard no shard should own a wildly outsized share.
        assert max(counts) < 2.2 * min(counts)

    def test_minimal_disruption_when_growing(self):
        # The consistent-hashing property: adding a shard moves only the
        # keys the new shard takes; nobody else's tenants reshuffle.
        small = HashRing(RingConfig(n_shards=4))
        grown = HashRing(RingConfig(n_shards=5))
        tenants = [f"t{i}" for i in range(2000)]
        moved = [
            t for t in tenants
            if small.lookup(t) != grown.lookup(t) and grown.lookup(t) != 4
        ]
        assert moved == []


class TestPreference:
    def test_home_is_first_and_entries_distinct(self):
        ring = HashRing(RingConfig(n_shards=6))
        for i in range(50):
            tenant = f"t{i}"
            prefs = ring.preference(tenant, 4)
            assert prefs[0] == ring.lookup(tenant)
            assert len(prefs) == len(set(prefs)) == 4

    def test_k_clamped_to_shard_count(self):
        ring = HashRing(RingConfig(n_shards=3))
        assert sorted(ring.preference("t1", 10)) == [0, 1, 2]

    def test_rejects_nonpositive_k(self):
        ring = HashRing(RingConfig(n_shards=3))
        with pytest.raises(ConfigurationError):
            ring.preference("t1", 0)


class TestRoute:
    def _ring(self):
        return HashRing(RingConfig(n_shards=4, spill=2, hot_depth=10))

    def test_cold_home_keeps_the_job(self):
        ring = self._ring()
        decision = ring.route("t7", [9, 9, 9, 9])
        assert decision.target == decision.home
        assert not decision.spilled

    def test_hot_home_spills_to_least_loaded_neighbor(self):
        ring = self._ring()
        home = ring.lookup("t7")
        prefs = ring.preference("t7", 3)
        depths = [0, 0, 0, 0]
        depths[home] = 50
        depths[prefs[1]] = 5
        depths[prefs[2]] = 2
        decision = ring.route("t7", depths)
        assert decision.spilled
        assert decision.target == prefs[2]

    def test_full_tie_stays_home(self):
        # Least-loaded ties break by preference order; home is index 0.
        ring = self._ring()
        decision = ring.route("t7", [50, 50, 50, 50])
        assert decision.target == decision.home

    def test_spill_zero_never_moves(self):
        ring = HashRing(RingConfig(n_shards=4, spill=0, hot_depth=1))
        for i in range(50):
            assert not ring.route(f"t{i}", [99, 99, 99, 99]).spilled

    def test_rejects_mismatched_depths(self):
        with pytest.raises(ConfigurationError, match="entries"):
            self._ring().route("t1", [0, 0])

    def test_decision_is_a_value_object(self):
        d = RouteDecision(tenant="t1", home=2, target=3)
        assert d.spilled
        assert RouteDecision(tenant="t1", home=2, target=2).spilled is False
