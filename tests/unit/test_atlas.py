"""Unit tests for the synthetic Paxinos-like atlas."""

import numpy as np
import pytest

from repro.cocomac.atlas import cores_per_region, synthetic_atlas
from repro.cocomac.database import synthetic_cocomac
from repro.cocomac.reduction import reduce_database


def connected_regions():
    return sorted(
        reduce_database(synthetic_cocomac()).connected_regions(),
        key=lambda r: r.index,
    )


class TestVolumes:
    def test_every_region_has_volume(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        assert set(atlas.volumes) == {r.name for r in regions}
        assert all(v > 0 for v in atlas.volumes.values())

    def test_imputed_counts_match_paper(self):
        # §V-A: 5 cortical and 8 thalamic regions imputed at class median.
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        by_class = {}
        names = {r.name: r.region_class for r in regions}
        for name in atlas.imputed:
            by_class[names[name]] = by_class.get(names[name], 0) + 1
        assert by_class == {"cortical": 5, "thalamic": 8}

    def test_imputed_values_are_class_median(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        cortical = [r for r in regions if r.region_class == "cortical"]
        known = [
            atlas.volumes[r.name] for r in cortical if r.name not in atlas.imputed
        ]
        for r in cortical:
            if r.name in atlas.imputed:
                assert atlas.volumes[r.name] == pytest.approx(np.median(known))

    def test_deterministic(self):
        regions = connected_regions()
        a = synthetic_atlas(regions, seed=4)
        b = synthetic_atlas(regions, seed=4)
        assert a.volumes == b.volumes

    def test_volume_array_order(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        names = [r.name for r in regions[:5]]
        arr = atlas.volume_array(names)
        assert list(arr) == [atlas.volumes[n] for n in names]


class TestCoresPerRegion:
    def test_total_preserved(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        names = [r.name for r in regions]
        cores = cores_per_region(atlas, names, 4096)
        assert cores.sum() == 4096

    def test_floor_of_one(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        names = [r.name for r in regions]
        cores = cores_per_region(atlas, names, len(names))
        assert (cores == 1).all()

    def test_proportional_to_volume(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        names = [r.name for r in regions]
        cores = cores_per_region(atlas, names, 100_000)
        vols = atlas.volume_array(names)
        ratio = cores / vols
        # With a large budget, allocations track volume within a few %.
        assert ratio.std() / ratio.mean() < 0.05

    def test_too_few_cores_rejected(self):
        regions = connected_regions()
        atlas = synthetic_atlas(regions)
        names = [r.name for r in regions]
        with pytest.raises(ValueError):
            cores_per_region(atlas, names, len(names) - 1)
