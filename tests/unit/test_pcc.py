"""Unit tests for the Parallel Compass Compiler."""

import numpy as np
import pytest

from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.pcc import ParallelCompassCompiler, _apportion
from repro.errors import WiringError


def two_region_object(a_cores=2, b_cores=3, ab=64, aa=32, ba=48) -> CoreObject:
    return CoreObject(
        name="two",
        regions=[
            RegionSpec("A", a_cores, crossbar_density=0.25),
            RegionSpec(
                "B",
                b_cores,
                crossbar_density=0.0625,
                region_class="thalamic",
                axon_type_fractions=(0.5, 0.25, 0.25, 0.0),
            ),
        ],
        connections=[
            ConnectionSpec("A", "B", ab, delay=2),
            ConnectionSpec("A", "A", aa),
            ConnectionSpec("B", "A", ba, delay=4),
        ],
        seed=3,
    )


class TestCompile:
    def test_layout_contiguous_in_region_order(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        assert cm.region_ranges == {"A": (0, 2), "B": (2, 5)}
        assert cm.network.n_cores == 5

    def test_region_of_gid(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        assert cm.region_of_gid(0) == "A"
        assert cm.region_of_gid(4) == "B"
        with pytest.raises(KeyError):
            cm.region_of_gid(5)

    def test_connection_counts_realised(self):
        obj = two_region_object()
        cm = ParallelCompassCompiler().compile(obj)
        assert cm.network.connected_neuron_count == 64 + 32 + 48
        assert cm.metrics.white_matter_connections == 64 + 48
        assert cm.metrics.gray_matter_connections == 32

    def test_white_matter_lands_in_target_region(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        net = cm.network
        # A -> B spikes: source neurons in gids [0,2), targets in [2,5).
        src_gids, src_neurons = np.nonzero(net.target_gid >= 0)
        for g, n in zip(src_gids, src_neurons):
            tgt = net.target_gid[g, n]
            if g < 2:  # region A source
                assert tgt < 5
            else:  # region B sources all go to A
                assert 0 <= tgt < 2

    def test_delays_respected(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        net = cm.network
        b_sources = net.target_gid[2:5] >= 0
        assert (net.target_delay[2:5][b_sources] == 4).all()

    def test_axon_exclusivity(self):
        """No two neurons may drive the same target axon."""
        cm = ParallelCompassCompiler().compile(two_region_object())
        net = cm.network
        connected = net.target_gid >= 0
        pairs = list(
            zip(net.target_gid[connected].ravel(), net.target_axon[connected].ravel())
        )
        assert len(pairs) == len(set(pairs))

    def test_crossbar_density_applied(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        a_density = cm.network.get_crossbar(0).density
        b_density = cm.network.get_crossbar(3).density
        assert abs(a_density - 0.25) < 0.02
        assert abs(b_density - 0.0625) < 0.02

    def test_axon_type_mix(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        types_b = cm.network.axon_types[3]
        counts = np.bincount(types_b, minlength=4)
        assert list(counts) == [128, 64, 64, 0]

    def test_exchange_message_accounting(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        # Two inter-region connection specs -> two aggregated exchanges.
        assert cm.metrics.exchange_messages == 2
        assert cm.metrics.exchange_bytes == (64 + 48) * 12

    def test_deterministic_model(self):
        a = ParallelCompassCompiler().compile(two_region_object())
        b = ParallelCompassCompiler().compile(two_region_object())
        assert np.array_equal(a.network.crossbars, b.network.crossbars)
        assert np.array_equal(a.network.target_gid, b.network.target_gid)

    def test_overcommitted_object_rejected(self):
        obj = CoreObject(
            "over",
            regions=[RegionSpec("A", 1), RegionSpec("B", 1)],
            connections=[ConnectionSpec("A", "B", 300)],
        )
        with pytest.raises(Exception):
            ParallelCompassCompiler().compile(obj)

    def test_unvalidated_compile_hits_allocator_guard(self):
        obj = CoreObject(
            "over",
            regions=[RegionSpec("A", 1), RegionSpec("B", 1)],
            connections=[ConnectionSpec("A", "B", 300)],
        )
        with pytest.raises(WiringError):
            ParallelCompassCompiler(validate=False).compile(obj)


class TestPartitionFor:
    def test_region_aligned(self):
        obj = two_region_object(a_cores=4, b_cores=12)
        cm = ParallelCompassCompiler().compile(obj)
        part = cm.partition_for(4)
        assert part.n_ranks == 4
        # No rank straddles the region boundary at gid 4.
        boundaries = [part.range_of_rank(r) for r in range(4)]
        assert any(lo == 4 for lo, hi in boundaries)

    def test_fallback_uniform_when_fewer_procs_than_regions(self):
        cm = ParallelCompassCompiler().compile(two_region_object())
        part = cm.partition_for(1)
        assert part.n_ranks == 1

    def test_process_counts_proportional(self):
        obj = two_region_object(a_cores=4, b_cores=12)
        cm = ParallelCompassCompiler().compile(obj)
        part = cm.partition_for(8)
        ranks_in_a = sum(
            1 for r in range(8) if part.range_of_rank(r)[1] <= 4
        )
        assert ranks_in_a == 2  # 4/16 of 8


class TestApportion:
    def test_sums_to_total(self):
        out = _apportion((0.3, 0.3, 0.4), 255)
        assert out.sum() == 255

    def test_exact_fractions(self):
        out = _apportion((0.5, 0.25, 0.25, 0.0), 256)
        assert list(out) == [128, 64, 64, 0]
