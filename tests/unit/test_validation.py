"""Unit tests for validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_positive,
    check_power_of_two,
    check_range,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="bad thing"):
            require(False, "bad thing")


class TestCheckRange:
    def test_within(self):
        assert check_range("x", 5, 0, 10) == 5

    def test_boundaries_inclusive(self):
        check_range("x", 0, 0, 10)
        check_range("x", 10, 0, 10)

    def test_below(self):
        with pytest.raises(ConfigurationError, match="below minimum"):
            check_range("x", -1, 0, 10)

    def test_above(self):
        with pytest.raises(ConfigurationError, match="above maximum"):
            check_range("x", 11, 0, 10)

    def test_open_bounds(self):
        check_range("x", 1e9, 0, None)
        check_range("x", -1e9, None, 0)


class TestCheckPositive:
    def test_positive(self):
        assert check_positive("n", 3) == 3

    def test_zero_and_negative(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ConfigurationError):
                check_positive("n", bad)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for v in (1, 2, 4, 1024, 2**20):
            assert check_power_of_two("n", v) == v

    def test_rejects_non_powers(self):
        for v in (0, 3, 6, -4, 1023):
            with pytest.raises(ConfigurationError):
                check_power_of_two("n", v)
