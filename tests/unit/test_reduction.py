"""Unit tests for hierarchy reduction (383 → 102 regions)."""

from repro.cocomac.database import (
    REDUCED_CONNECTED,
    REDUCED_REGIONS,
    ConnectivityDatabase,
    Region,
    synthetic_cocomac,
)
from repro.cocomac.reduction import reduce_database


class TestPaperCounts:
    def test_reduces_to_102_regions(self):
        reduced = reduce_database(synthetic_cocomac())
        assert reduced.n_regions == REDUCED_REGIONS == 102

    def test_77_regions_report_connections(self):
        reduced = reduce_database(synthetic_cocomac())
        assert len(reduced.connected_regions()) == REDUCED_CONNECTED == 77

    def test_connected_regions_all_report(self):
        reduced = reduce_database(synthetic_cocomac())
        assert all(r.reports for r in reduced.connected_regions())


class TestMergeSemantics:
    def _db(self, regions, edges):
        return ConnectivityDatabase(regions=regions, edges=set(edges))

    def test_child_edges_ored_into_parent(self):
        db = self._db(
            [
                Region(0, "P", "cortical", -1, True),
                Region(1, "C", "cortical", 0, True),
                Region(2, "X", "cortical", -1, True),
            ],
            [(1, 2)],  # child C -> X
        )
        red = reduce_database(db)
        names = {r.name for r in red.regions}
        assert names == {"P", "X"}
        idx = {r.name: r.index for r in red.regions}
        assert (idx["P"], idx["X"]) in red.edges

    def test_non_reporting_parent_keeps_child(self):
        db = self._db(
            [
                Region(0, "P", "cortical", -1, False),
                Region(1, "C", "cortical", 0, True),
                Region(2, "X", "cortical", -1, True),
            ],
            [(1, 2)],
        )
        red = reduce_database(db)
        assert {r.name for r in red.regions} == {"P", "C", "X"}

    def test_deep_hierarchy_collapses_to_fixpoint(self):
        db = self._db(
            [
                Region(0, "P", "cortical", -1, True),
                Region(1, "C", "cortical", 0, True),
                Region(2, "G", "cortical", 1, True),
                Region(3, "X", "cortical", -1, True),
            ],
            [(2, 3)],  # grandchild -> X
        )
        red = reduce_database(db)
        assert {r.name for r in red.regions} == {"P", "X"}
        idx = {r.name: r.index for r in red.regions}
        assert (idx["P"], idx["X"]) in red.edges

    def test_self_loops_dropped_on_merge(self):
        db = self._db(
            [
                Region(0, "P", "cortical", -1, True),
                Region(1, "C1", "cortical", 0, True),
                Region(2, "C2", "cortical", 0, True),
            ],
            [(1, 2)],  # sibling edge collapses into P -> P
        )
        red = reduce_database(db)
        assert red.n_regions == 1
        assert red.n_edges == 0

    def test_duplicate_edges_collapse(self):
        db = self._db(
            [
                Region(0, "P", "cortical", -1, True),
                Region(1, "C1", "cortical", 0, True),
                Region(2, "X", "cortical", -1, True),
            ],
            [(0, 2), (1, 2)],  # both become P -> X
        )
        red = reduce_database(db)
        assert red.n_edges == 1

    def test_indices_renumbered_densely(self):
        red = reduce_database(synthetic_cocomac())
        assert sorted(r.index for r in red.regions) == list(range(red.n_regions))

    def test_classes_preserved(self):
        red = reduce_database(synthetic_cocomac())
        classes = {r.region_class for r in red.regions}
        assert classes == {"cortical", "thalamic", "basal_ganglia"}
