"""Scalar-vs-vectorised neuron equivalence — the core correctness contract.

The vectorised kernel must be bit-identical to the scalar reference for
any parameter combination, including stochastic synapses/leaks, because
both stand in for the same hardware.
"""

import numpy as np
import pytest

from repro.arch.neuron import NeuronArrayState, ReferenceNeuron, integrate_leak_fire
from repro.arch.params import NeuronArrayParameters, NeuronParameters, ResetMode
from repro.util.rng import derive_seed


def run_both(params: NeuronParameters, schedule: list[tuple[int, int, int, int]], core_seed: int = 5):
    """Run the scalar spec and the vectorised kernel on one neuron."""
    ref = ReferenceNeuron(params, derive_seed(core_seed, 0))
    ref_raster = [ref.tick(c) for c in schedule]

    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 1)
    block = NeuronArrayParameters.empty(1, 1)
    block.set_neuron(0, 0, params)
    vec_raster = []
    for counts in schedule:
        tc = np.array(counts, dtype=np.int32).reshape(1, 1, 4)
        fired = integrate_leak_fire(state, block, tc)
        vec_raster.append(bool(fired[0, 0]))
    return ref_raster, vec_raster, ref.potential, int(state.potential[0, 0])


CASES = [
    NeuronParameters(weights=(1, -1, 2, -2), threshold=3, leak=0),
    NeuronParameters(weights=(2, 0, 0, 0), threshold=5, leak=-1, floor=-4),
    NeuronParameters(weights=(3, 1, 0, 0), threshold=4, reset_mode=ResetMode.LINEAR),
    NeuronParameters(
        weights=(128, -64, 32, 0),
        stochastic_weights=(True, True, True, False),
        threshold=5,
        floor=-20,
    ),
    NeuronParameters(weights=(1, 0, 0, 0), leak=100, stochastic_leak=True, threshold=2),
    NeuronParameters(
        weights=(200, -200, 0, 0),
        stochastic_weights=(True, True, False, False),
        leak=-50,
        stochastic_leak=True,
        threshold=3,
        reset_mode=ResetMode.LINEAR,
        floor=-10,
    ),
]


@pytest.mark.parametrize("params", CASES)
def test_equivalence_on_fixed_schedule(params):
    rng = np.random.default_rng(42)
    schedule = [tuple(rng.integers(0, 4, size=4)) for _ in range(200)]
    ref, vec, ref_v, vec_v = run_both(params, schedule)
    assert ref == vec
    assert ref_v == vec_v


def test_equivalence_many_neurons_per_core():
    """All neurons of a core share nothing: streams must not couple."""
    params = [
        NeuronParameters(
            weights=(100 + i, -50, 0, 0),
            stochastic_weights=(True, True, False, False),
            threshold=2 + i % 3,
        )
        for i in range(8)
    ]
    core_seed = 11
    rng = np.random.default_rng(0)
    schedule = [tuple(rng.integers(0, 3, size=4)) for _ in range(100)]

    refs = [
        ReferenceNeuron(p, derive_seed(core_seed, j)) for j, p in enumerate(params)
    ]
    ref_rasters = [[n.tick(c) for c in schedule] for n in refs]

    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 8)
    block = NeuronArrayParameters.empty(1, 8)
    for j, p in enumerate(params):
        block.set_neuron(0, j, p)
    vec_rasters = [[] for _ in range(8)]
    for counts in schedule:
        tc = np.tile(np.array(counts, dtype=np.int32), (1, 8, 1))
        fired = integrate_leak_fire(state, block, tc)
        for j in range(8):
            vec_rasters[j].append(bool(fired[0, j]))
    assert ref_rasters == vec_rasters


def test_mixed_counts_per_neuron():
    """Different event counts per neuron exercise the round-loop path."""
    p = NeuronParameters(
        weights=(128, 0, 0, 0),
        stochastic_weights=(True, False, False, False),
        threshold=4,
    )
    core_seed = 3
    counts_per_neuron = [0, 1, 2, 5]
    refs = [
        ReferenceNeuron(p, derive_seed(core_seed, j)) for j in range(4)
    ]
    ref_out = [
        [n.tick((c, 0, 0, 0)) for _ in range(50)]
        for n, c in zip(refs, counts_per_neuron)
    ]

    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 4)
    block = NeuronArrayParameters.homogeneous(p, 1, 4)
    vec_out = [[] for _ in range(4)]
    tc = np.zeros((1, 4, 4), dtype=np.int32)
    tc[0, :, 0] = counts_per_neuron
    for _ in range(50):
        fired = integrate_leak_fire(state, block, tc)
        for j in range(4):
            vec_out[j].append(bool(fired[0, j]))
    assert ref_out == vec_out


def test_shape_mismatch_rejected():
    state = NeuronArrayState.create(np.array([1], dtype=np.uint64), 4)
    block = NeuronArrayParameters.empty(1, 4)
    with pytest.raises(ValueError):
        integrate_leak_fire(state, block, np.zeros((1, 5, 4), dtype=np.int32))


def test_potential_stays_int32_safe():
    p = NeuronParameters(weights=(255, 0, 0, 0), threshold=10**9 // 2, floor=-(2**17))
    state = NeuronArrayState.create(np.array([1], dtype=np.uint64), 1)
    block = NeuronArrayParameters.empty(1, 1)
    block.set_neuron(0, 0, p)
    tc = np.full((1, 1, 4), 100, dtype=np.int32)
    for _ in range(10):
        integrate_leak_fire(state, block, tc)
    assert state.potential.dtype == np.int32
