"""Unit tests for the torus interconnect topology."""

import numpy as np
import pytest

from repro.runtime.torus import TorusTopology, dims_for_nodes


class TestDims:
    def test_product_preserved(self):
        for n in (1024, 4096, 16384, 1000, 77):
            dims = dims_for_nodes(n, 5)
            assert int(np.prod(dims)) == n
            assert len(dims) == 5

    def test_near_cubic(self):
        dims = dims_for_nodes(1024, 5)
        assert max(dims) / max(min(dims), 1) <= 4

    def test_handles_primes(self):
        dims = dims_for_nodes(17, 3)
        assert int(np.prod(dims)) == 17


class TestTopology:
    def test_coords_round_trip(self):
        t = TorusTopology((4, 4, 4))
        for node in range(64):
            assert t.node_id(t.coords(node)) == node

    def test_hops_symmetric(self):
        t = TorusTopology((4, 3, 2))
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(0, t.n_nodes, size=2)
            assert t.hops(a, b) == t.hops(b, a)

    def test_hops_self_zero(self):
        t = TorusTopology((5, 5))
        for node in range(25):
            assert t.hops(node, node) == 0

    def test_wraparound_shortcut(self):
        t = TorusTopology((8,))
        # node 0 to node 7 is 1 hop around the ring, not 7.
        assert t.hops(0, 7) == 1

    def test_diameter(self):
        t = TorusTopology((8, 8))
        assert t.diameter() == 8  # 4 + 4

    def test_hops_never_exceed_diameter(self):
        t = TorusTopology((4, 4, 2))
        rng = np.random.default_rng(1)
        a = rng.integers(0, t.n_nodes, size=100)
        b = rng.integers(0, t.n_nodes, size=100)
        assert (t.hops(a, b) <= t.diameter()).all()

    def test_mean_hops_positive_and_below_diameter(self):
        t = TorusTopology.for_nodes(1024, 5)
        assert 0 < t.mean_hops() <= t.diameter()

    def test_bisection_links(self):
        t = TorusTopology((8, 4))
        assert t.bisection_links() == 8  # 2 x (32/8)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TorusTopology((0, 4))


class TestFaultGeometry:
    """Helpers used by the resilience link-degradation model."""

    def test_route_dims(self):
        t = TorusTopology((4, 4))
        assert list(t.route_dims(0, 1)) == [1]   # same row, differ in dim 1
        assert list(t.route_dims(0, 4)) == [0]   # same column, differ in dim 0
        assert list(t.route_dims(0, 5)) == [0, 1]
        assert list(t.route_dims(3, 3)) == []

    def test_fraction_crossing(self):
        t = TorusTopology((4, 2))
        assert t.fraction_crossing(0) == pytest.approx(1.0 - 1.0 / 4)
        assert t.fraction_crossing(1) == pytest.approx(0.5)

    def test_fraction_crossing_rejects_bad_dim(self):
        t = TorusTopology((4, 2))
        with pytest.raises(ValueError):
            t.fraction_crossing(2)
