"""Unit tests for crossbar bit packing."""

import numpy as np
import pytest

from repro.util.bitops import get_bit, pack_bits, popcount_rows, set_bit, unpack_bits


class TestPackUnpack:
    def test_round_trip_1d(self, rng):
        dense = rng.random(256) < 0.3
        assert np.array_equal(unpack_bits(pack_bits(dense), 256), dense)

    def test_round_trip_2d(self, rng):
        dense = rng.random((64, 256)) < 0.5
        assert np.array_equal(unpack_bits(pack_bits(dense), 256), dense)

    def test_round_trip_non_multiple_of_8(self, rng):
        dense = rng.random(13) < 0.5
        assert np.array_equal(unpack_bits(pack_bits(dense), 13), dense)

    def test_packed_width(self):
        assert pack_bits(np.zeros(256, dtype=bool)).shape == (32,)
        assert pack_bits(np.zeros((4, 256), dtype=bool)).shape == (4, 32)

    def test_storage_reduction_is_8x(self):
        dense = np.ones((256, 256), dtype=np.uint8)
        assert dense.nbytes / pack_bits(dense).nbytes == 8.0

    def test_bit_order_msb_first(self):
        dense = np.zeros(8, dtype=bool)
        dense[0] = True
        assert pack_bits(dense)[0] == 0b10000000


class TestBitAccess:
    def test_get_bit_matches_dense(self, rng):
        dense = rng.random(64) < 0.5
        packed = pack_bits(dense)
        for i in range(64):
            assert get_bit(packed, i) == dense[i]

    def test_set_bit_then_get(self):
        packed = pack_bits(np.zeros(32, dtype=bool))
        set_bit(packed, 17, True)
        assert get_bit(packed, 17)
        set_bit(packed, 17, False)
        assert not get_bit(packed, 17)

    def test_set_bit_leaves_others(self, rng):
        dense = rng.random(40) < 0.5
        packed = pack_bits(dense)
        set_bit(packed, 5, not dense[5])
        for i in range(40):
            expected = (not dense[5]) if i == 5 else dense[i]
            assert get_bit(packed, i) == expected

    def test_set_bit_vectorised_rows(self):
        packed = pack_bits(np.zeros((3, 16), dtype=bool))
        set_bit(packed, 9, np.array([True, False, True]))
        assert list(get_bit(packed, 9)) == [True, False, True]


class TestPopcount:
    def test_popcount_matches_sum(self, rng):
        dense = rng.random((10, 256)) < 0.3
        packed = pack_bits(dense)
        assert np.array_equal(popcount_rows(packed), dense.sum(axis=1))

    def test_popcount_empty_and_full(self):
        assert popcount_rows(pack_bits(np.zeros(256, dtype=bool))) == 0
        assert popcount_rows(pack_bits(np.ones(256, dtype=bool))) == 256


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
