"""Unit tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.errors import CheckpointError


class TestCheckpoint:
    def test_resume_is_bit_exact(self, tmp_path):
        net = build_quickstart_network()
        path = tmp_path / "ckpt.npz"

        ref = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        ref.run(60)

        first = Compass(net, CompassConfig(n_processes=2))
        first.run(30)
        save_checkpoint(first, path)

        resumed = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        load_checkpoint(resumed, path)
        assert resumed.tick == 30
        resumed.run(30)

        # Compare the last 30 ticks of the reference with the resumed run.
        t_ref, g_ref, n_ref = ref.recorder.to_arrays()
        sel = t_ref >= 30
        t_res, g_res, n_res = resumed.recorder.to_arrays()
        assert np.array_equal(t_ref[sel], t_res)
        assert np.array_equal(g_ref[sel], g_res)
        assert np.array_equal(n_ref[sel], n_res)

    def test_rejects_different_network(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = Compass(build_quickstart_network(seed=1), CompassConfig(n_processes=2))
        a.run(5)
        save_checkpoint(a, path)
        b = Compass(build_quickstart_network(seed=2), CompassConfig(n_processes=2))
        with pytest.raises(CheckpointError, match="different network"):
            load_checkpoint(b, path)

    def test_rejects_different_rank_count(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        net = build_quickstart_network()
        a = Compass(net, CompassConfig(n_processes=2))
        save_checkpoint(a, path)
        b = Compass(net, CompassConfig(n_processes=4))
        with pytest.raises(CheckpointError, match="ranks"):
            load_checkpoint(b, path)

    def test_missing_file(self, tmp_path):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(sim, tmp_path / "nope.npz")

    def test_rejects_pending_injections(self, tmp_path):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.inject(0, 0, tick=5)
        with pytest.raises(CheckpointError, match="injections"):
            save_checkpoint(sim, tmp_path / "x.npz")
