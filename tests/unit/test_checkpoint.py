"""Unit tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.checkpoint import (
    capture_state,
    load_checkpoint,
    restore_state,
    save_checkpoint,
    state_nbytes,
)
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass
from repro.errors import CheckpointError


class TestCheckpoint:
    def test_resume_is_bit_exact(self, tmp_path):
        net = build_quickstart_network()
        path = tmp_path / "ckpt.npz"

        ref = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        ref.run(60)

        first = Compass(net, CompassConfig(n_processes=2))
        first.run(30)
        save_checkpoint(first, path)

        resumed = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        load_checkpoint(resumed, path)
        assert resumed.tick == 30
        resumed.run(30)

        # Compare the last 30 ticks of the reference with the resumed run.
        t_ref, g_ref, n_ref = ref.recorder.to_arrays()
        sel = t_ref >= 30
        t_res, g_res, n_res = resumed.recorder.to_arrays()
        assert np.array_equal(t_ref[sel], t_res)
        assert np.array_equal(g_ref[sel], g_res)
        assert np.array_equal(n_ref[sel], n_res)

    def test_rejects_different_network(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = Compass(build_quickstart_network(seed=1), CompassConfig(n_processes=2))
        a.run(5)
        save_checkpoint(a, path)
        b = Compass(build_quickstart_network(seed=2), CompassConfig(n_processes=2))
        with pytest.raises(CheckpointError, match="different network"):
            load_checkpoint(b, path)

    def test_rejects_different_rank_count(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        net = build_quickstart_network()
        a = Compass(net, CompassConfig(n_processes=2))
        save_checkpoint(a, path)
        b = Compass(net, CompassConfig(n_processes=4))
        with pytest.raises(CheckpointError, match="ranks"):
            load_checkpoint(b, path)

    def test_missing_file(self, tmp_path):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(sim, tmp_path / "nope.npz")

    def test_rejects_pending_injections(self, tmp_path):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.inject(0, 0, tick=5)
        with pytest.raises(CheckpointError, match="injections"):
            save_checkpoint(sim, tmp_path / "x.npz")

    def test_pgas_resume_is_bit_exact(self, tmp_path):
        """The file round-trip works for the one-sided backend too."""
        net = build_quickstart_network()
        path = tmp_path / "pgas.npz"

        ref = PgasCompass(net, CompassConfig(n_processes=2, record_spikes=True))
        ref.run(60)

        first = PgasCompass(net, CompassConfig(n_processes=2))
        first.run(30)
        save_checkpoint(first, path)

        resumed = PgasCompass(net, CompassConfig(n_processes=2, record_spikes=True))
        load_checkpoint(resumed, path)
        assert resumed.tick == 30
        resumed.run(30)

        t_ref, g_ref, n_ref = ref.recorder.to_arrays()
        sel = t_ref >= 30
        t_res, g_res, n_res = resumed.recorder.to_arrays()
        assert np.array_equal(t_ref[sel], t_res)
        assert np.array_equal(g_ref[sel], g_res)
        assert np.array_equal(n_ref[sel], n_res)


class TestInMemoryState:
    """capture_state/restore_state — the recovery subsystem's snapshot."""

    @pytest.mark.parametrize("sim_cls", [Compass, PgasCompass])
    def test_round_trip_replay_is_bit_exact(self, sim_cls):
        net = build_quickstart_network()
        cfg = CompassConfig(n_processes=2, record_spikes=True)

        ref = sim_cls(net, cfg)
        ref.run(20)
        t_ref, g_ref, n_ref = ref.recorder.to_arrays()

        sim = sim_cls(net, cfg)
        sim.run(10)
        state = capture_state(sim)
        sim.run(5)  # advance past the snapshot, then roll back
        restore_state(sim, state)
        assert sim.tick == 10
        sim.recorder.truncate(10)
        sim.run(10)

        t, g, n = sim.recorder.to_arrays()
        assert np.array_equal(t, t_ref)
        assert np.array_equal(g, g_ref)
        assert np.array_equal(n, n_ref)

    def test_restore_rejects_rank_mismatch(self):
        net = build_quickstart_network()
        a = Compass(net, CompassConfig(n_processes=2))
        b = Compass(net, CompassConfig(n_processes=4))
        with pytest.raises(CheckpointError, match="ranks"):
            restore_state(b, capture_state(a))

    def test_state_nbytes_positive(self):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        assert state_nbytes(sim) > 0
