"""Unit tests for round-robin axon/neuron allocators."""

import numpy as np
import pytest

from repro.compiler.allocator import AxonAllocator, NeuronAllocator
from repro.errors import WiringError


class TestRoundRobin:
    def test_spreads_across_cores_first(self):
        # §V-C: distribute as broadly as possible across target cores.
        alloc = AxonAllocator(gid_lo=10, n_cores=4, slots_per_core=256)
        gids, slots = alloc.allocate(4)
        assert list(gids) == [10, 11, 12, 13]
        assert list(slots) == [0, 0, 0, 0]

    def test_wraps_to_next_slot(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=3, slots_per_core=256)
        gids, slots = alloc.allocate(7)
        assert list(gids) == [0, 1, 2, 0, 1, 2, 0]
        assert list(slots) == [0, 0, 0, 1, 1, 1, 2]

    def test_never_hands_out_duplicates(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=5, slots_per_core=16)
        seen = set()
        for chunk in (13, 27, 40):
            gids, slots = alloc.allocate(chunk)
            for pair in zip(gids, slots):
                assert pair not in seen
                seen.add(pair)

    def test_capacity_tracking(self):
        alloc = NeuronAllocator(gid_lo=0, n_cores=2, slots_per_core=4)
        assert alloc.capacity == 8
        alloc.allocate(5)
        assert alloc.allocated == 5
        assert alloc.remaining == 3

    def test_exhaustion_raises(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=1, slots_per_core=4)
        alloc.allocate(4)
        with pytest.raises(WiringError, match="exhausted"):
            alloc.allocate(1)

    def test_exact_fill_allowed(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=2, slots_per_core=2)
        gids, slots = alloc.allocate(4)
        assert alloc.remaining == 0
        assert len(set(zip(gids, slots))) == 4

    def test_zero_request(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=1, slots_per_core=1)
        gids, slots = alloc.allocate(0)
        assert gids.size == 0

    def test_negative_request_rejected(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=1, slots_per_core=1)
        with pytest.raises(ValueError):
            alloc.allocate(-1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            AxonAllocator(0, 0, 256)

    def test_slots_stay_in_range(self):
        alloc = AxonAllocator(gid_lo=0, n_cores=3, slots_per_core=8)
        gids, slots = alloc.allocate(24)
        assert slots.max() < 8
        assert gids.max() < 3
