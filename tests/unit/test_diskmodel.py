"""Unit tests for explicit model files (the in-situ compiler's baseline)."""

import numpy as np
import pytest

from repro.compiler.diskmodel import (
    explicit_model_nbytes,
    read_model_file,
    write_model_file,
)
from repro.compiler.pcc import ParallelCompassCompiler
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec


def small_network():
    obj = CoreObject(
        "disk-test",
        regions=[RegionSpec("A", 2), RegionSpec("B", 2)],
        connections=[ConnectionSpec("A", "B", 32), ConnectionSpec("B", "A", 16)],
        seed=5,
    )
    return ParallelCompassCompiler().compile(obj).network


class TestRoundTrip:
    def test_read_back_identical(self, tmp_path):
        net = small_network()
        path = tmp_path / "model.npz"
        write_model_file(net, path)
        restored = read_model_file(path)
        assert restored.n_cores == net.n_cores
        assert np.array_equal(restored.crossbars, net.crossbars)
        assert np.array_equal(restored.axon_types, net.axon_types)
        assert np.array_equal(restored.target_gid, net.target_gid)
        assert np.array_equal(restored.target_delay, net.target_delay)
        assert np.array_equal(
            restored.neuron_params.threshold, net.neuron_params.threshold
        )

    def test_restored_network_simulates_identically(self, tmp_path):
        from repro.core.config import CompassConfig
        from repro.core.simulator import Compass

        net = small_network()
        path = tmp_path / "model.npz"
        write_model_file(net, path)
        restored = read_model_file(path)
        a = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        b = Compass(restored, CompassConfig(n_processes=2, record_spikes=True))
        a.inject(0, 3, tick=0)
        b.inject(0, 3, tick=0)
        a.run(20)
        b.run(20)
        for x, y in zip(a.recorder.to_arrays(), b.recorder.to_arrays()):
            assert np.array_equal(x, y)

    def test_bytes_written_positive(self, tmp_path):
        net = small_network()
        n = write_model_file(net, tmp_path / "m.npz")
        assert n > 4 * 8192  # at least the crossbars

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format=np.frombuffer(b"not-a-model", dtype=np.uint8))
        with pytest.raises(Exception):
            read_model_file(path)


class TestScaleEstimate:
    def test_paper_scale_is_terabytes(self):
        # §IV: explicit model for 256M cores is "on the order of several
        # terabytes".
        nbytes = explicit_model_nbytes(256 * 10**6)
        assert 1e12 < nbytes < 20e12

    def test_linear_in_cores(self):
        assert explicit_model_nbytes(200) == 100 * explicit_model_nbytes(2)

    def test_compact_description_is_orders_smaller(self):
        from repro.cocomac.model import build_macaque_coreobject

        model = build_macaque_coreobject(total_cores=256 * 10**6 // 16384 * 16384)
        compact = model.coreobject.description_nbytes()
        explicit = explicit_model_nbytes(model.total_cores)
        assert explicit / compact > 1e6
