"""Unit tests for per-rank profiling."""

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.profiling import (
    RankProfile,
    imbalance,
    profile_ranks,
    profile_report,
)
from repro.core.simulator import Compass


def _profile(rank, fired=0, axons=0, remote=0, msgs=0):
    return RankProfile(
        rank=rank,
        cores=1,
        neurons=256,
        fired=fired,
        active_axons=axons,
        local_spikes=0,
        remote_spikes=remote,
        messages_sent=0,
        messages_received=msgs,
        bytes_sent=0,
    )


@pytest.fixture(scope="module")
def sim():
    net = build_quickstart_network(n_cores=8, seed=2)
    s = Compass(net, CompassConfig(n_processes=4))
    s.run(80)
    return s


class TestProfiles:
    def test_counters_consistent_with_metrics(self, sim):
        profiles = profile_ranks(sim)
        assert sum(p.fired for p in profiles) == sim.metrics.total_fired
        assert (
            sum(p.remote_spikes for p in profiles)
            == sim.metrics.total_remote_spikes
        )
        assert (
            sum(p.local_spikes for p in profiles)
            == sim.metrics.total_local_spikes
        )
        assert (
            sum(p.active_axons for p in profiles)
            == sim.metrics.total_active_axons
        )

    def test_per_rank_shapes(self, sim):
        profiles = profile_ranks(sim)
        assert [p.rank for p in profiles] == [0, 1, 2, 3]
        assert all(p.cores == 2 for p in profiles)
        assert all(p.neurons == 512 for p in profiles)

    def test_mpi_message_counters(self, sim):
        profiles = profile_ranks(sim)
        assert sum(p.messages_sent for p in profiles) == sim.metrics.total_messages

    def test_pgas_profiles(self):
        net = build_quickstart_network(n_cores=4, seed=1)
        s = PgasCompass(net, CompassConfig(n_processes=2))
        s.run(40)
        profiles = profile_ranks(s)
        assert sum(p.messages_sent for p in profiles) == s.metrics.total_messages


class TestImbalanceMath:
    def test_exact_max_over_mean(self):
        profiles = [
            _profile(0, fired=10, axons=4, remote=1, msgs=2),
            _profile(1, fired=30, axons=4, remote=3, msgs=6),
        ]
        imb = imbalance(profiles)
        assert imb.fired == pytest.approx(30 / 20)
        assert imb.active_axons == pytest.approx(1.0)
        assert imb.remote_spikes == pytest.approx(3 / 2)
        assert imb.messages_received == pytest.approx(6 / 4)
        assert imb.worst == pytest.approx(1.5)

    def test_single_rank_is_balanced(self):
        imb = imbalance([_profile(0, fired=100, axons=5, remote=9, msgs=3)])
        assert imb.fired == 1.0
        assert imb.worst == 1.0

    def test_zero_mean_defines_balanced(self):
        # A dimension nobody exercised (e.g. remote spikes on 1 rank)
        # must read 1.0, not raise or return nan.
        imb = imbalance([_profile(0), _profile(1)])
        assert imb.fired == 1.0
        assert imb.remote_spikes == 1.0
        assert imb.worst == 1.0


class TestImbalance:
    def test_imbalance_at_least_one(self, sim):
        imb = imbalance(profile_ranks(sim))
        assert imb.fired >= 1.0
        assert imb.worst >= 1.0

    def test_report_renders(self, sim):
        text = profile_report(sim, region_of_rank=lambda r: f"R{r}")
        assert "per-rank load profile" in text
        assert "imbalance" in text
        assert "R0" in text
