"""Unit tests for per-rank profiling."""

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.profiling import imbalance, profile_ranks, profile_report
from repro.core.simulator import Compass


@pytest.fixture(scope="module")
def sim():
    net = build_quickstart_network(n_cores=8, seed=2)
    s = Compass(net, CompassConfig(n_processes=4))
    s.run(80)
    return s


class TestProfiles:
    def test_counters_consistent_with_metrics(self, sim):
        profiles = profile_ranks(sim)
        assert sum(p.fired for p in profiles) == sim.metrics.total_fired
        assert (
            sum(p.remote_spikes for p in profiles)
            == sim.metrics.total_remote_spikes
        )
        assert (
            sum(p.local_spikes for p in profiles)
            == sim.metrics.total_local_spikes
        )
        assert (
            sum(p.active_axons for p in profiles)
            == sim.metrics.total_active_axons
        )

    def test_per_rank_shapes(self, sim):
        profiles = profile_ranks(sim)
        assert [p.rank for p in profiles] == [0, 1, 2, 3]
        assert all(p.cores == 2 for p in profiles)
        assert all(p.neurons == 512 for p in profiles)

    def test_mpi_message_counters(self, sim):
        profiles = profile_ranks(sim)
        assert sum(p.messages_sent for p in profiles) == sim.metrics.total_messages

    def test_pgas_profiles(self):
        net = build_quickstart_network(n_cores=4, seed=1)
        s = PgasCompass(net, CompassConfig(n_processes=2))
        s.run(40)
        profiles = profile_ranks(s)
        assert sum(p.messages_sent for p in profiles) == s.metrics.total_messages


class TestImbalance:
    def test_imbalance_at_least_one(self, sim):
        imb = imbalance(profile_ranks(sim))
        assert imb.fired >= 1.0
        assert imb.worst >= 1.0

    def test_report_renders(self, sim):
        text = profile_report(sim, region_of_rank=lambda r: f"R{r}")
        assert "per-rank load profile" in text
        assert "imbalance" in text
        assert "R0" in text
