"""Unit tests for machine specs and run configurations."""

import pytest

from repro.runtime.machine import BLUE_GENE_P, BLUE_GENE_Q, MachineConfig


class TestBlueGeneQ:
    def test_paper_geometry(self):
        # §VI-A: 16 app cores, 4 HW threads, 16 GB/node, 1024 nodes/rack,
        # 5D torus with 2 GB/s links.
        assert BLUE_GENE_Q.cpu_cores_per_node == 16
        assert BLUE_GENE_Q.hw_threads_per_core == 4
        assert BLUE_GENE_Q.memory_per_node == 16 * 2**30
        assert BLUE_GENE_Q.nodes_per_rack == 1024
        assert BLUE_GENE_Q.torus_dims == 5
        assert BLUE_GENE_Q.link_bandwidth == 2e9

    def test_full_system_cpu_count(self):
        # 16 racks = 262144 application CPUs.
        assert BLUE_GENE_Q.cpus_for_racks(16) == 262144

    def test_max_threads(self):
        assert BLUE_GENE_Q.max_threads_per_node == 64


class TestBlueGeneP:
    def test_paper_geometry(self):
        # §VII: 4 CPUs and 4 GB per node; 4 racks = 16384 CPUs.
        assert BLUE_GENE_P.cpu_cores_per_node == 4
        assert BLUE_GENE_P.memory_per_node == 4 * 2**30
        assert BLUE_GENE_P.cpus_for_racks(4) == 16384


class TestMachineConfig:
    def test_paper_standard_config(self):
        mc = MachineConfig(BLUE_GENE_Q, nodes=1024, procs_per_node=1, threads_per_proc=32)
        assert mc.n_processes == 1024
        assert mc.racks == 1.0
        assert "32 threads" in mc.describe()

    def test_rejects_thread_oversubscription(self):
        with pytest.raises(ValueError):
            MachineConfig(BLUE_GENE_Q, nodes=1, procs_per_node=4, threads_per_proc=32)

    def test_effective_threads_monotone(self):
        effs = [
            MachineConfig(BLUE_GENE_Q, nodes=1, threads_per_proc=t).effective_threads
            for t in (1, 2, 4, 8, 16, 32)
        ]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_effective_threads_sublinear_beyond_cores(self):
        mc32 = MachineConfig(BLUE_GENE_Q, nodes=1, threads_per_proc=32)
        mc16 = MachineConfig(BLUE_GENE_Q, nodes=1, threads_per_proc=16)
        assert mc32.effective_threads < 2 * mc16.effective_threads

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            MachineConfig(BLUE_GENE_Q, nodes=0)
