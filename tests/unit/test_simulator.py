"""Unit tests for the MPI-backend Compass simulator."""

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork, NeuronTarget
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass, SpikeRecorder


def two_core_relay() -> CoreNetwork:
    """Core 0 relays to core 1; core 1's outputs are unconnected."""
    net = CoreNetwork(2, seed=1)
    for gid in range(2):
        net.set_crossbar(gid, Crossbar.identity())
        net.set_neurons(
            gid, NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)
        )
    for j in range(256):
        net.connect(0, j, NeuronTarget(1, j, delay=2))
    return net


class TestStepSemantics:
    def test_injected_spike_propagates_through_two_cores(self):
        net = two_core_relay()
        sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        sim.inject(gid=0, axon=5, tick=1)
        for _ in range(5):
            sim.step()
        t, g, n = sim.recorder.to_arrays()
        # core 0 neuron 5 fires at tick 1; delay 2 -> core 1 axon 5 at
        # tick 3 -> core 1 neuron 5 fires at tick 3.
        assert list(zip(t, g, n)) == [(1, 0, 5), (3, 1, 5)]

    def test_remote_spike_crosses_rank_boundary(self):
        net = two_core_relay()
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.inject(0, 0, tick=1)
        for _ in range(5):
            sim.step()
        # one aggregated message carried the cross-rank spike
        assert sim.metrics.total_messages == 1
        assert sim.metrics.total_remote_spikes == 1
        assert sim.metrics.total_bytes == 20

    def test_single_rank_has_no_messages(self):
        net = two_core_relay()
        sim = Compass(net, CompassConfig(n_processes=1))
        sim.inject(0, 0, tick=1)
        for _ in range(5):
            sim.step()
        assert sim.metrics.total_messages == 0
        assert sim.metrics.total_local_spikes == 1

    def test_cannot_inject_into_past(self):
        net = two_core_relay()
        sim = Compass(net)
        sim.step()
        with pytest.raises(ValueError):
            sim.inject(0, 0, tick=0)

    def test_run_returns_result(self):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        result = sim.run(32)
        assert result.metrics.ticks == 32
        assert result.n_neurons == net.n_neurons
        assert result.total_spikes > 0

    def test_reseed_guard(self):
        net = build_quickstart_network()
        with pytest.raises(ValueError):
            Compass.from_network(net, seed=net.seed + 1)

    def test_from_network_accepts_matching_seed(self):
        net = build_quickstart_network()
        sim = Compass.from_network(net, n_processes=2, seed=net.seed)
        assert sim.config.n_processes == 2


class TestDeterminism:
    def test_identical_runs(self):
        net = build_quickstart_network()
        runs = []
        for _ in range(2):
            sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
            sim.run(50)
            runs.append(sim.recorder.to_arrays())
        for a, b in zip(runs[0], runs[1]):
            assert np.array_equal(a, b)

    def test_different_network_seed_differs(self):
        a = build_quickstart_network(seed=1)
        b = build_quickstart_network(seed=2)
        ra = Compass(a, CompassConfig(record_spikes=True))
        rb = Compass(b, CompassConfig(record_spikes=True))
        ra.run(50)
        rb.run(50)
        assert ra.recorder.to_arrays()[0].shape != rb.recorder.to_arrays()[0].shape or not np.array_equal(
            ra.recorder.to_arrays()[1], rb.recorder.to_arrays()[1]
        )


class TestSimulatedTiming:
    def test_machine_config_produces_times(self):
        net = build_quickstart_network()
        cfg = CompassConfig.for_blue_gene_q(nodes=2, threads_per_proc=16)
        sim = Compass(net, cfg)
        sim.run(10)
        assert sim.metrics.simulated.total > 0
        assert sim.metrics.simulated.neuron > 0

    def test_no_machine_config_no_times(self):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.run(10)
        assert sim.metrics.simulated.total == 0.0


class TestSpikeRecorder:
    def test_canonical_sorting(self):
        rec = SpikeRecorder()
        rec.record(5, np.array([3, 1]), np.array([2, 9]))
        rec.record(2, np.array([7]), np.array([0]))
        t, g, n = rec.to_arrays()
        assert list(t) == [2, 5, 5]
        assert list(g) == [7, 1, 3]

    def test_empty(self):
        t, g, n = SpikeRecorder().to_arrays()
        assert t.size == 0

    def test_count(self):
        rec = SpikeRecorder()
        rec.record(0, np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert rec.count == 3
