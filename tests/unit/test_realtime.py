"""Unit tests for the PGAS-vs-MPI real-time driver (Fig 7 shape)."""

import pytest

from repro.perf.realtime import (
    MPI_CONFIGS,
    RealtimePoint,
    max_realtime_cores,
    realtime_series,
)


@pytest.fixture(scope="module")
def series():
    return realtime_series()


class TestSeriesShape:
    def test_pgas_beats_mpi_everywhere(self, series):
        by_racks: dict[float, dict[str, RealtimePoint]] = {}
        for p in series:
            by_racks.setdefault(p.racks, {})[p.backend] = p
        for racks, pair in by_racks.items():
            assert pair["pgas"].seconds < pair["mpi"].seconds

    def test_strong_scaling_monotone(self, series):
        pgas = sorted(
            (p for p in series if p.backend == "pgas"), key=lambda p: p.racks
        )
        secs = [p.seconds for p in pgas]
        assert all(b < a for a, b in zip(secs, secs[1:]))

    def test_mpi_ratio_near_paper(self, series):
        """At four racks the paper reports MPI 2.1x slower than PGAS."""
        four = {p.backend: p for p in series if p.racks == 4}
        ratio = four["mpi"].seconds / four["pgas"].seconds
        assert 1.5 < ratio < 3.0

    def test_pgas_real_time_at_four_racks(self, series):
        four = {p.backend: p for p in series if p.racks == 4}
        assert four["pgas"].realtime
        assert not four["mpi"].realtime

    def test_best_config_selected(self, series):
        for p in series:
            if p.backend == "mpi":
                assert (p.procs_per_node, p.threads_per_proc) in MPI_CONFIGS
            else:
                assert (p.procs_per_node, p.threads_per_proc) == (4, 1)


class TestMaxRealtimeCores:
    def test_pgas_near_81k(self):
        """The paper's real-time frontier is 81K cores on four racks."""
        cores = max_realtime_cores("pgas", racks=4)
        assert 60_000 < cores < 120_000

    def test_mpi_frontier_smaller(self):
        assert max_realtime_cores("mpi", racks=4) < max_realtime_cores(
            "pgas", racks=4
        )

    def test_more_racks_more_cores(self):
        assert max_realtime_cores("pgas", racks=4) > max_realtime_cores(
            "pgas", racks=1
        )
