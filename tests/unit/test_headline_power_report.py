"""Unit tests for the headline summary, power model, and report tables."""

import pytest

from repro.perf.headline import PAPER, headline_summary
from repro.perf.power import (
    blue_gene_power_watts,
    efficiency_ratio,
    truenorth_power_watts,
)
from repro.perf.report import format_table, paper_vs_model


class TestHeadline:
    @pytest.fixture(scope="class")
    def summary(self):
        return headline_summary()

    def test_scale_quantities_match_paper(self, summary):
        m = summary["model"]
        assert m["cores"] == pytest.approx(PAPER["cores"], rel=0.1)
        assert m["neurons"] == pytest.approx(PAPER["neurons"], rel=0.1)
        assert m["synapses"] == pytest.approx(PAPER["synapses"], rel=0.1)

    def test_rate_matches(self, summary):
        assert summary["model"]["mean_rate_hz"] == pytest.approx(8.1, rel=0.05)

    def test_slowdown_within_band(self, summary):
        # Paper: 388x slower than real time.
        assert summary["model"]["slowdown"] == pytest.approx(388, rel=0.15)

    def test_traffic_within_band(self, summary):
        m = summary["model"]
        assert m["spikes_per_tick"] == pytest.approx(22e6, rel=0.25)
        assert m["gb_per_tick"] == pytest.approx(0.44, rel=0.25)
        # §VI-B: well below the 2 GB/s torus link bandwidth per tick-second.
        assert m["gb_per_tick"] < 2.0


class TestPower:
    def test_truenorth_far_below_simulator(self):
        # The architecture's raison d'être: orders of magnitude less power
        # than the supercomputer simulating it.
        assert efficiency_ratio(256_000_000, 8.1, racks=16) > 100

    def test_power_scales_with_rate(self):
        lo = truenorth_power_watts(1000, 1.0)
        hi = truenorth_power_watts(1000, 10.0)
        assert hi > lo

    def test_static_floor(self):
        assert truenorth_power_watts(1000, 0.0) == pytest.approx(1000 * 50e-9)

    def test_blue_gene_power(self):
        assert blue_gene_power_watts(16) == pytest.approx(16 * 85e3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            truenorth_power_watts(0, 1.0)
        with pytest.raises(ValueError):
            blue_gene_power_watts(0)


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_format_table_values(self):
        out = format_table(["x"], [[True], [1234567.0]])
        assert "yes" in out
        assert "1.23e+06" in out

    def test_paper_vs_model(self):
        out = paper_vs_model({"speed": 2.0}, {"speed": 1.0})
        assert "model/paper" in out
        assert "0.5" in out
