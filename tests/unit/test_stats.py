"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    empirical_cdf,
    geometric_mean,
    lognormal_volumes,
    mad,
    max_over_mean,
    mean_rate_hz,
    median,
    percentile,
    percentile_sorted,
    robust_outlier,
)


class TestMeanRate:
    def test_basic(self):
        # 80 spikes from 10 neurons over 1000 ticks (1 s) = 8 Hz.
        assert mean_rate_hz(80, 10, 1000) == pytest.approx(8.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mean_rate_hz(1, 0, 100)
        with pytest.raises(ValueError):
            mean_rate_hz(1, 10, 0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))


class TestLognormalVolumes:
    def test_unit_mean(self):
        v = lognormal_volumes(500, np.random.default_rng(0))
        assert v.mean() == pytest.approx(1.0)

    def test_all_positive(self):
        v = lognormal_volumes(100, np.random.default_rng(1))
        assert (v > 0).all()

    def test_spread_spans_orders_of_magnitude(self):
        v = lognormal_volumes(1000, np.random.default_rng(2))
        assert v.max() / v.min() > 50

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            lognormal_volumes(0, np.random.default_rng(0))


class TestEcdf:
    def test_monotone(self):
        x, h = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(h) == pytest.approx([1 / 3, 2 / 3, 1.0])


class TestMedian:
    """Exact values — the robust helpers avoid float summation entirely."""

    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_is_exact_midpoint(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_single(self):
        assert median([7.0]) == 7.0

    def test_unsorted_input_not_mutated(self):
        values = [5.0, 1.0, 3.0]
        median(values)
        assert values == [5.0, 1.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestMad:
    def test_known_value(self):
        # median = 3; |x - 3| = [2, 1, 0, 1, 2] -> median 1.
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_identical_values_zero(self):
        assert mad([4.0, 4.0, 4.0]) == 0.0

    def test_even_count(self):
        # median = 2.5; deviations [1.5, 0.5, 0.5, 1.5] -> median 1.0.
        assert mad([1.0, 2.0, 3.0, 4.0]) == 1.0


class TestRobustOutlier:
    BASE = [1.0, 1.01, 0.99, 1.0, 1.02]  # median 1.0, MAD 0.01

    def test_within_mad_band_passes(self):
        # threshold = max(1 + 4*1.4826*0.01, 1.15) = 1.15.
        assert not robust_outlier(1.10, self.BASE)

    def test_beyond_threshold_fails(self):
        assert robust_outlier(1.20, self.BASE)

    def test_improvement_never_flags(self):
        assert not robust_outlier(0.5, self.BASE)

    def test_wide_mad_raises_threshold(self):
        noisy = [1.0, 1.5, 0.6, 1.1, 0.9]  # median 1.0, MAD 0.1
        # threshold = max(1 + 4*1.4826*0.1, 1.15) = 1.59304.
        assert not robust_outlier(1.5, noisy)
        assert robust_outlier(1.6, noisy)

    def test_short_history_uses_relative_tolerance(self):
        assert not robust_outlier(1.14, [1.0], rel_tol=0.15)
        assert robust_outlier(1.16, [1.0], rel_tol=0.15)

    def test_zero_mad_still_tolerates_rel_tol(self):
        flat = [2.0, 2.0, 2.0, 2.0]
        assert not robust_outlier(2.2, flat, rel_tol=0.15)
        assert robust_outlier(2.4, flat, rel_tol=0.15)


class TestPercentileSmallN:
    """Nearest-rank behaviour at the degenerate sizes fleet shards hit.

    A freshly-spun-up shard may have exactly one or two completed jobs
    when a report is cut; the percentiles must stay exact observed
    values, not interpolations.
    """

    def test_n1_every_q_returns_the_value(self):
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_n2_splits_at_the_median_rank(self):
        # rank = ceil(q/100 * 2): q <= 50 -> first value, q > 50 -> second.
        assert percentile([10.0, 20.0], 50.0) == 10.0
        assert percentile([10.0, 20.0], 50.1) == 20.0
        assert percentile([10.0, 20.0], 95.0) == 20.0
        assert percentile([10.0, 20.0], 99.0) == 20.0
        assert percentile([20.0, 10.0], 50.0) == 10.0  # order-insensitive

    def test_all_equal_samples_collapse(self):
        values = [3.0] * 5
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == 3.0

    def test_sorted_variant_matches_unsorted(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert percentile_sorted(sorted(values), q) == percentile(values, q)

    def test_sorted_variant_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError, match="empty"):
            percentile_sorted([], 50.0)
        with pytest.raises(ValueError, match="outside"):
            percentile_sorted([1.0], 101.0)


class TestMaxOverMean:
    def test_balanced(self):
        assert max_over_mean([3, 3, 3]) == 1.0

    def test_known_ratio(self):
        # mean 2, max 4.
        assert max_over_mean([0, 2, 4]) == 2.0

    def test_empty_and_zero_are_neutral(self):
        assert max_over_mean([]) == 1.0
        assert max_over_mean([0, 0]) == 1.0

    def test_matches_profiling_semantics(self):
        # Same value the per-rank profiler's ImbalanceSummary reports.
        assert max_over_mean([10, 20, 30]) == pytest.approx(1.5)
