"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    empirical_cdf,
    geometric_mean,
    lognormal_volumes,
    mean_rate_hz,
)


class TestMeanRate:
    def test_basic(self):
        # 80 spikes from 10 neurons over 1000 ticks (1 s) = 8 Hz.
        assert mean_rate_hz(80, 10, 1000) == pytest.approx(8.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mean_rate_hz(1, 0, 100)
        with pytest.raises(ValueError):
            mean_rate_hz(1, 10, 0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))


class TestLognormalVolumes:
    def test_unit_mean(self):
        v = lognormal_volumes(500, np.random.default_rng(0))
        assert v.mean() == pytest.approx(1.0)

    def test_all_positive(self):
        v = lognormal_volumes(100, np.random.default_rng(1))
        assert (v > 0).all()

    def test_spread_spans_orders_of_magnitude(self):
        v = lognormal_volumes(1000, np.random.default_rng(2))
        assert v.max() / v.min() > 50

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            lognormal_volumes(0, np.random.default_rng(0))


class TestEcdf:
    def test_monotone(self):
        x, h = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(h) == pytest.approx([1 / 3, 2 / 3, 1.0])
