"""Unit tests for formatting and unit helpers."""

import pytest

from repro.util.units import (
    SPIKE_BYTES,
    fmt_bytes,
    fmt_count,
    fmt_seconds,
    slowdown_vs_realtime,
)


class TestFormatting:
    def test_fmt_count_suffixes(self):
        assert fmt_count(256e6) == "256M"
        assert fmt_count(65e9) == "65B"
        assert fmt_count(16e12) == "16T"
        assert fmt_count(1500) == "1.5K"
        assert fmt_count(12) == "12"

    def test_fmt_bytes(self):
        assert fmt_bytes(2048) == "2 KiB"
        assert fmt_bytes(3 * 2**30) == "3 GiB"
        assert fmt_bytes(10) == "10 B"

    def test_fmt_seconds(self):
        assert fmt_seconds(194.0) == "194 s"
        assert fmt_seconds(0.002) == "2 ms"
        assert fmt_seconds(5e-6) == "5 us"
        assert fmt_seconds(3e-9) == "3 ns"


class TestSlowdown:
    def test_paper_headline(self):
        # 194 s for 500 one-millisecond ticks = 388x slower than real time.
        assert slowdown_vs_realtime(194.0, 500) == pytest.approx(388.0)

    def test_realtime_is_one(self):
        assert slowdown_vs_realtime(1.0, 1000) == pytest.approx(1.0)

    def test_rejects_nonpositive_ticks(self):
        with pytest.raises(ValueError):
            slowdown_vs_realtime(1.0, 0)

    def test_spike_wire_size_matches_paper(self):
        assert SPIKE_BYTES == 20
