"""Unit tests for the interprocedural taint analysis (FLOW201–FLOW205).

Organized like the engine: call-graph resolution, CFG + fixpoint,
end-to-end taint fixtures (each FLOW rule gets a tainted case and a
sanitized case), suppression markers, the baseline workflow, and the
serializers (byte-identical JSON, SARIF 2.1.0 shape).  The installed
package must run clean against the committed baseline, since that is
what CI gates on.
"""

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.check.flow import (
    build_callgraph,
    build_cfg,
    fixpoint,
    load_baseline,
    partition_findings,
    run_flow,
    run_flow_sources,
    write_baseline,
)
from repro.check.flow.report import FLOW_RULES, TOOL_NAME
from repro.check.serialize import to_json, to_sarif
from repro.errors import CheckInputError


def flow(src: str, path: str = "src/repro/runtime/fix.py"):
    """Analyze one rank-visible module; return its findings."""
    return run_flow_sources({path: src}).findings


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestCallGraph:
    def test_same_module_bare_call_resolves(self):
        graph = build_callgraph(
            {"src/repro/util/m.py": "def helper():\n    return 1\n\ndef f():\n    return helper()\n"}
        )
        caller = graph.functions["repro.util.m.f"]
        call = caller.node.body[0].value
        target = graph.resolve(call, caller)
        assert target is not None
        assert target.qualname == "repro.util.m.helper"

    def test_self_method_resolves_to_enclosing_class(self):
        src = (
            "class C:\n"
            "    def helper(self):\n        return 1\n"
            "    def f(self):\n        return self.helper()\n"
        )
        graph = build_callgraph({"src/repro/util/m.py": src})
        caller = graph.functions["repro.util.m.C.f"]
        call = caller.node.body[0].value
        target = graph.resolve(call, caller)
        assert target.qualname == "repro.util.m.C.helper"

    def test_from_import_resolves_across_modules(self):
        sources = {
            "src/repro/util/a.py": "def helper():\n    return 1\n",
            "src/repro/util/b.py": (
                "from repro.util.a import helper\n\ndef f():\n    return helper()\n"
            ),
        }
        graph = build_callgraph(sources)
        caller = graph.functions["repro.util.b.f"]
        call = caller.node.body[0].value
        target = graph.resolve(call, caller)
        assert target.qualname == "repro.util.a.helper"

    def test_module_attribute_call_resolves_through_import(self):
        sources = {
            "src/repro/util/a.py": "def helper():\n    return 1\n",
            "src/repro/util/b.py": (
                "from repro.util import a\n\ndef f():\n    return a.helper()\n"
            ),
        }
        graph = build_callgraph(sources)
        caller = graph.functions["repro.util.b.f"]
        call = caller.node.body[0].value
        assert graph.resolve(call, caller).qualname == "repro.util.a.helper"

    def test_unresolved_call_is_recorded_not_dropped(self):
        graph = build_callgraph(
            {"src/repro/util/m.py": "def f(x):\n    return x.mystery()\n"}
        )
        caller = graph.functions["repro.util.m.f"]
        call = caller.node.body[0].value
        assert graph.resolve(call, caller) is None
        assert len(graph.unresolved) == 1
        rec = graph.unresolved[0]
        assert rec.name == "x.mystery"
        assert rec.caller == "repro.util.m.f"
        assert rec.line == 2

    def test_unresolved_calls_deduped_per_site(self):
        graph = build_callgraph(
            {"src/repro/util/m.py": "def f(x):\n    return x.g()\n"}
        )
        caller = graph.functions["repro.util.m.f"]
        call = caller.node.body[0].value
        graph.resolve(call, caller)
        graph.resolve(call, caller)
        assert len(graph.unresolved) == 1

    def test_syntax_error_module_skipped(self):
        graph = build_callgraph({"bad.py": "def f(:\n"})
        assert graph.functions == {}

    def test_module_body_registered(self):
        graph = build_callgraph({"src/repro/util/m.py": "x = 1\n"})
        assert "repro.util.m.<module>" in graph.functions


class TestCfg:
    def _cfg(self, src: str):
        tree = ast.parse(src)
        return build_cfg(tree.body[0].body)

    def test_if_creates_branch_and_join(self):
        cfg = self._cfg(
            "def f(x):\n"
            "    if x:\n        a = 1\n    else:\n        a = 2\n"
            "    return a\n"
        )
        assert len(cfg.blocks) >= 4
        # Some block has two predecessors: the join point.
        preds = cfg.preds()
        assert any(len(p) == 2 for p in preds.values())

    def test_while_has_back_edge(self):
        cfg = self._cfg("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        back = [
            (block.bid, s)
            for block in cfg.blocks.values()
            for s in block.succs
            if s <= block.bid
        ]
        assert back, "loop must produce a back edge"

    def test_fixpoint_reaches_loop_carried_state(self):
        cfg = self._cfg(
            "def f(items):\n"
            "    out = 0\n"
            "    for x in items:\n        out = out + x\n"
            "    return out\n"
        )

        # Simple gen-only analysis: collect assigned names per block.
        def transfer(block, state):
            new = set(state)
            for stmt in block.stmts:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Store
                    ):
                        new.add(node.id)
            return new

        out_states = fixpoint(cfg, set(), transfer, lambda a, b: a | b)
        final = set().union(*out_states.values())
        assert {"out", "x"} <= final


SINK_PREAMBLE = "import time\nimport random\n"


class TestTaintRules:
    def test_flow201_host_clock_to_send(self):
        src = (
            "import time\n\n"
            "def f(mb):\n"
            "    t = time.time()\n"
            "    mb.send(0, t)\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW201"]
        assert findings[0].sink_label == "mailbox send"

    def test_flow201_host_perf_counter_sanitizer(self):
        src = (
            "from repro.util.hostclock import host_perf_counter\n\n"
            "def f(mb):\n"
            "    t = host_perf_counter()\n"
            "    mb.send(0, t)\n"
        )
        assert flow(src) == []

    def test_flow202_unseeded_rng_to_collective(self):
        src = (
            "import random\n\n"
            "def f(ep):\n"
            "    x = random.random()\n"
            "    ep.reduce_scatter_contribute(x)\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW202"]

    def test_flow202_seeded_stream_clean(self):
        src = (
            "from repro.util.rng import stream\n\n"
            "def f(ep, seed):\n"
            "    x = stream(seed, 'axon').random()\n"
            "    ep.reduce_scatter_contribute(x)\n"
        )
        assert flow(src) == []

    def test_flow203_env_to_writer(self):
        src = (
            "import os\n\n"
            "def f(out):\n"
            "    v = os.getenv('SEED')\n"
            "    out.write_text(v)\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW203"]

    def test_flow203_listdir_sorted_clean(self):
        src = (
            "import os\n\n"
            "def f(out, d):\n"
            "    names = sorted(os.listdir(d))\n"
            "    out.write_text(str(names))\n"
        )
        assert flow(src) == []

    def test_flow204_dict_iteration_to_checkpoint(self):
        src = (
            "def capture(ckpt, state):\n"
            "    order = [k for k in state.keys()]\n"
            "    ckpt.capture_state(order)\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW204"]
        assert findings[0].sink_label == "checkpoint capture"

    def test_flow204_sorted_iteration_clean(self):
        src = (
            "def capture(ckpt, state):\n"
            "    order = sorted(state.keys())\n"
            "    ckpt.capture_state(order)\n"
        )
        assert flow(src) == []

    def test_flow205_id_to_metric(self):
        src = (
            "def f(m, obj):\n"
            "    key = id(obj)\n"
            "    m.observe(0, key)\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW205"]

    def test_clean_module_has_no_findings(self):
        src = (
            "def f(mb, payload):\n"
            "    mb.send(0, payload)\n"
        )
        assert flow(src) == []


class TestInterprocedural:
    HELPER_CHAIN = (
        "import time\n\n"
        "def stamp():\n"
        "    return time.perf_counter()\n\n"
        "class Core:\n"
        "    def tick(self, mailbox):\n"
        "        t = stamp()\n"
        "        mailbox.isend(1, t)\n"
    )

    def test_host_clock_through_helper_reaches_send(self):
        findings = flow(self.HELPER_CHAIN)
        assert rule_ids(findings) == ["FLOW201"]
        f = findings[0]
        assert f.sink_desc == ".isend()"
        # The witness walks source -> return -> call -> sink.
        notes = [s.note for s in f.witness]
        assert any("source[host-clock]" in n for n in notes)
        assert any("stamp" in n for n in notes)
        assert "isend" in notes[-1]

    def test_taint_through_call_argument(self):
        src = (
            "import time\n\n"
            "def emit(mb, value):\n"
            "    mb.send(0, value)\n\n"
            "def f(mb):\n"
            "    emit(mb, time.time())\n"
        )
        findings = flow(src)
        assert rule_ids(findings) == ["FLOW201"]

    def test_cross_module_flow(self):
        sources = {
            "src/repro/util/clock.py": (
                "import time\n\ndef now():\n    return time.time()\n"
            ),
            "src/repro/runtime/node.py": (
                "from repro.util.clock import now\n\n"
                "def f(mb):\n    mb.send(0, now())\n"
            ),
        }
        report = run_flow_sources(sources)
        assert rule_ids(report.findings) == ["FLOW201"]
        assert report.findings[0].source_path.endswith("clock.py")
        assert report.findings[0].path.endswith("node.py")

    def test_obs_flush_function_is_a_boundary(self):
        src = (
            "import time\n\n"
            "def dump(out):  # repro: obs-flush\n"
            "    out.write_text(str(time.time()))\n"
        )
        assert flow(src) == []

    def test_branch_joins_taint(self):
        src = (
            "import time\n\n"
            "def f(mb, cond):\n"
            "    if cond:\n        t = time.time()\n"
            "    else:\n        t = 0.0\n"
            "    mb.send(0, t)\n"
        )
        assert rule_ids(flow(src)) == ["FLOW201"]


class TestSuppressions:
    def test_lint_suppression_at_source_kills_taint(self):
        src = (
            "import time\n\n"
            "def f(mb):\n"
            "    t = time.time()  # repro: allow[DET101] wall time wanted\n"
            "    mb.send(0, t)\n"
        )
        assert flow(src) == []

    def test_flow_suppression_at_source_kills_taint(self):
        src = (
            "import time\n\n"
            "def f(mb):\n"
            "    t = time.time()  # repro: allow[FLOW201] audited\n"
            "    mb.send(0, t)\n"
        )
        assert flow(src) == []

    def test_flow_suppression_at_sink_kills_finding(self):
        src = (
            "import time\n\n"
            "def f(mb):\n"
            "    t = time.time()\n"
            "    # repro: allow[FLOW201] latency probe, not payload\n"
            "    mb.send(0, t)\n"
        )
        assert flow(src) == []

    def test_unrelated_suppression_does_not_kill(self):
        src = (
            "import time\n\n"
            "def f(mb):\n"
            "    t = time.time()  # repro: allow[DET105] wrong rule\n"
            "    mb.send(0, t)\n"
        )
        assert rule_ids(flow(src)) == ["FLOW201"]


TAINTED = (
    "import time\n\n"
    "def f(mb):\n"
    "    t = time.time()\n"
    "    mb.send(0, t)\n"
)


class TestBaseline:
    def test_bless_then_rerun_is_clean(self, tmp_path):
        report = run_flow_sources({"src/repro/runtime/fix.py": TAINTED})
        assert len(report.findings) == 1
        baseline_path = tmp_path / "flow_baseline.json"
        write_baseline(baseline_path, report.findings)
        baseline = load_baseline(baseline_path)
        gated = run_flow_sources(
            {"src/repro/runtime/fix.py": TAINTED}, baseline=baseline
        )
        assert gated.passed
        assert gated.findings and not gated.new_findings

    def test_new_finding_beyond_baseline_fails(self, tmp_path):
        report = run_flow_sources({"src/repro/runtime/fix.py": TAINTED})
        baseline_path = tmp_path / "flow_baseline.json"
        write_baseline(baseline_path, report.findings)
        grown = TAINTED + "\ndef g(ep):\n    ep.put(0, time.time())\n"
        gated = run_flow_sources(
            {"src/repro/runtime/fix.py": grown},
            baseline=load_baseline(baseline_path),
        )
        assert not gated.passed
        assert len(gated.new_findings) == 1
        assert gated.new_findings[0].sink_desc == ".put()"

    def test_fingerprint_survives_line_shifts(self):
        shifted = "# a comment\n# another\n" + TAINTED
        a = run_flow_sources({"src/repro/runtime/fix.py": TAINTED}).findings[0]
        b = run_flow_sources({"src/repro/runtime/fix.py": shifted}).findings[0]
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_missing_baseline_is_typed_error(self, tmp_path):
        with pytest.raises(CheckInputError, match="--bless"):
            load_baseline(tmp_path / "absent.json")

    def test_malformed_baseline_is_typed_error(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(CheckInputError, match="unreadable flow baseline"):
            load_baseline(p)
        p.write_text('{"fingerprints": [1, 2]}')
        with pytest.raises(CheckInputError, match="malformed"):
            load_baseline(p)

    def test_partition_counts_per_fingerprint(self):
        findings = run_flow_sources(
            {"src/repro/runtime/fix.py": TAINTED}
        ).findings
        fp = findings[0].fingerprint
        assert partition_findings(findings, {fp: 1}) == []
        assert partition_findings(findings, {fp: 0}) == findings
        assert partition_findings(findings, {}) == findings


class TestSerializers:
    def _report(self):
        return run_flow_sources({"src/repro/runtime/fix.py": TAINTED})

    def test_json_byte_identical_across_runs(self):
        a = to_json(TOOL_NAME, self._report().to_results())
        b = to_json(TOOL_NAME, self._report().to_results())
        assert a == b
        doc = json.loads(a)
        assert doc["tool"] == TOOL_NAME
        assert doc["summary"]["findings"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "FLOW201"
        assert finding["baseline"] == "new"
        assert finding["witness"]

    def test_sarif_byte_identical_and_well_formed(self):
        a = to_sarif(TOOL_NAME, FLOW_RULES, self._report().to_results())
        b = to_sarif(TOOL_NAME, FLOW_RULES, self._report().to_results())
        assert a == b
        doc = json.loads(a)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["FLOW201"]
        (result,) = run["results"]
        assert result["ruleId"] == "FLOW201"
        assert result["baselineState"] == "new"
        assert result["partialFingerprints"]["reproFlow/v1"]
        locs = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locs) >= 2
        first = locs[0]["location"]["physicalLocation"]
        assert first["artifactLocation"]["uri"].endswith("fix.py")

    def test_text_format_includes_witness(self):
        text = self._report().format()
        assert "FLOW201" in text
        assert "1." in text and "flows into" in text


class TestPackageGate:
    """The acceptance gate CI runs."""

    BASELINE = Path(repro.__file__).parent / "check" / "flow_baseline.json"

    def test_package_clean_against_committed_baseline(self):
        baseline = load_baseline(self.BASELINE)
        report = run_flow(
            [Path(repro.__file__).parent], baseline=baseline
        )
        assert report.files_checked > 50
        assert report.functions_analyzed > 500
        assert report.passed, report.format()

    def test_analysis_is_deterministic(self):
        a = run_flow([Path(repro.__file__).parent])
        b = run_flow([Path(repro.__file__).parent])
        assert to_json(TOOL_NAME, a.to_results()) == to_json(
            TOOL_NAME, b.to_results()
        )
