"""Unit tests for the population-level NetworkBuilder."""

import numpy as np
import pytest

from repro.arch.builder import NetworkBuilder
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.errors import WiringError


def relay_params() -> NeuronParameters:
    return NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)


class TestDeclaration:
    def test_duplicate_population_rejected(self):
        b = NetworkBuilder()
        b.add_population("a", 1)
        with pytest.raises(WiringError, match="duplicate"):
            b.add_population("a", 1)

    def test_unknown_population_in_connect(self):
        b = NetworkBuilder()
        b.add_population("a", 1)
        with pytest.raises(WiringError, match="unknown"):
            b.connect("a", "zz", 1)

    def test_bad_delay(self):
        b = NetworkBuilder()
        b.add_population("a", 1)
        with pytest.raises(WiringError):
            b.connect("a", "a", 1, delay=0)

    def test_builder_single_use(self):
        b = NetworkBuilder()
        b.add_population("a", 1)
        b.build()
        with pytest.raises(WiringError, match="consumed"):
            b.build()


class TestBuild:
    def test_layout_contiguous(self):
        b = NetworkBuilder()
        b.add_population("x", 2)
        b.add_population("y", 3)
        net, pops, _ = b.build()
        assert net.n_cores == 5
        assert (pops["x"].gid_lo, pops["x"].gid_hi) == (0, 2)
        assert (pops["y"].gid_lo, pops["y"].gid_hi) == (2, 5)

    def test_identity_crossbar_pattern(self):
        b = NetworkBuilder()
        b.add_population("x", 1, crossbar="identity")
        net, _, _ = b.build()
        assert net.get_crossbar(0).get(7, 7)
        assert not net.get_crossbar(0).get(7, 8)

    def test_density_crossbar(self):
        b = NetworkBuilder(seed=1)
        b.add_population("x", 2, crossbar=0.25)
        net, _, _ = b.build()
        assert abs(net.get_crossbar(0).density - 0.25) < 0.03

    def test_explicit_crossbar(self):
        dense = np.zeros((256, 256), dtype=bool)
        dense[0, 5] = True
        b = NetworkBuilder()
        b.add_population("x", 2, crossbar=dense)
        net, _, _ = b.build()
        assert net.get_crossbar(1).get(0, 5)

    def test_axon_type_fractions(self):
        b = NetworkBuilder()
        b.add_population("x", 1, axon_types=(0.5, 0.5, 0.0, 0.0))
        net, _, _ = b.build()
        counts = np.bincount(net.axon_types[0], minlength=4)
        assert list(counts) == [128, 128, 0, 0]

    def test_connections_wired_and_exclusive(self):
        b = NetworkBuilder()
        b.add_population("src", 2, crossbar="identity", neuron=relay_params())
        b.add_population("dst", 2, crossbar="identity", neuron=relay_params())
        b.connect("src", "dst", 100, delay=2)
        net, _, _ = b.build()
        assert net.connected_neuron_count == 100
        connected = net.target_gid >= 0
        pairs = list(
            zip(net.target_gid[connected], net.target_axon[connected])
        )
        assert len(pairs) == len(set(pairs))
        assert (net.target_delay[connected] == 2).all()

    def test_over_capacity_raises(self):
        b = NetworkBuilder()
        b.add_population("a", 1)
        b.add_population("b", 1)
        b.connect("a", "b", 300)
        with pytest.raises(WiringError, match="exhausted"):
            b.build()


class TestInputPorts:
    def test_ports_disjoint_from_wiring(self):
        b = NetworkBuilder()
        b.add_population("in", 1, crossbar="identity", neuron=relay_params())
        b.connect("in", "in", 100)
        b.reserve_inputs("in", 32)
        net, _, ports = b.build()
        port = ports[0]
        assert port.width == 32
        wired = set(
            zip(
                net.target_gid[net.target_gid >= 0],
                net.target_axon[net.target_gid >= 0],
            )
        )
        reserved = set(zip(port.gids, port.axons))
        assert not wired & reserved

    def test_port_schedule_drives_simulation(self):
        b = NetworkBuilder()
        pop = b.add_population("in", 1, crossbar="identity", neuron=relay_params())
        b.reserve_inputs(pop, 8)
        net, _, (port,) = b.build()
        sim = Compass(net, CompassConfig(record_spikes=True))
        sim.attach_schedule(port.schedule_for({0: np.array([0, 3])}))
        sim.run(3)
        t, g, n = sim.recorder.to_arrays()
        fired_neurons = set(n.tolist())
        # identity crossbar: reserved axons 0 and 3 drive neurons 0 and 3
        assert fired_neurons == {int(port.axons[0]), int(port.axons[3])}

    def test_lane_out_of_range(self):
        b = NetworkBuilder()
        b.add_population("in", 1)
        b.reserve_inputs("in", 4)
        _, _, (port,) = b.build()
        with pytest.raises(WiringError):
            list(port.schedule_for({0: np.array([4])}))
