"""Unit tests for the determinism lint engine (DET100–DET112).

Each rule gets a positive case (the violation is reported with its rule
id and location) and a suppressed case (the same construct with a
``# repro: allow[DETxxx]`` marker passes).  The engine itself is covered
for path scoping, rule filtering, and the syntax-error path — and the
installed ``repro`` package must lint clean, since that is what CI runs.
"""

from pathlib import Path

import pytest

import repro
from repro.check.lint import (
    iter_python_files,
    lint_source,
    path_is_rank_visible,
    run_lint,
)
from repro.check.rules import all_rules, rules_by_id
from repro.errors import CheckInputError


def rule_ids(violations):
    return [v.rule_id for v in violations]


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == [
            "DET101", "DET102", "DET103", "DET104", "DET105", "DET106", "DET107",
            "DET108", "DET109", "DET110", "DET111", "DET112",
        ]

    def test_rules_by_id_selects(self):
        (rule,) = rules_by_id(["DET103"])
        assert rule.rule_id == "DET103"

    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(KeyError, match="DET999"):
            rules_by_id(["DET999"])

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.title and rule.rationale


class TestSyntaxError:
    def test_unparseable_module_is_det100(self):
        violations = lint_source("def f(:\n    pass\n", path="bad.py")
        assert rule_ids(violations) == ["DET100"]
        assert "syntax error" in violations[0].message


class TestWallClock:
    def test_time_time_flagged(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET101"]
        assert violations[0].line == 4

    def test_datetime_now_flagged(self):
        src = "import datetime\n\nstamp = datetime.datetime.now()\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET101"]

    def test_perf_counter_allowed(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, path="x.py") == []

    def test_suppressed_on_same_line(self):
        src = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: allow[DET101] host log stamp\n"
        )
        assert lint_source(src, path="x.py") == []


class TestGlobalRng:
    def test_random_module_flagged(self):
        src = "import random\n\ndef f():\n    return random.random()\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET102"]

    def test_np_random_draw_flagged(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.rand(4)\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET102"]
        assert "default_rng" in violations[0].message

    def test_seeded_default_rng_allowed(self):
        src = (
            "import numpy as np\n\ndef f(seed):\n"
            "    return np.random.default_rng(seed).random(4)\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_unimported_random_namespace_not_flagged(self):
        # A local object that happens to be called `random` is not the
        # stdlib module unless the module imports it.
        src = "def f(random):\n    return random.random()\n"
        assert lint_source(src, path="x.py") == []

    def test_suppressed(self):
        src = (
            "import random\n\ndef f():\n"
            "    # repro: allow[DET102] demo script, not simulation state\n"
            "    return random.random()\n"
        )
        assert lint_source(src, path="x.py") == []


class TestUnorderedIteration:
    def test_dict_values_flagged(self):
        src = "def f(table):\n    return [v + 1 for v in table.values()]\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET103"]

    def test_set_literal_flagged(self):
        src = "def f():\n    for x in {3, 1, 2}:\n        print(x)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET103"]

    def test_set_call_flagged(self):
        src = "def f(items):\n    return [x for x in set(items)]\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET103"]

    def test_sorted_wrapper_allowed(self):
        src = (
            "def f(table, items):\n"
            "    for k in sorted(table.keys()):\n"
            "        print(k)\n"
            "    return [x for x in sorted(set(items))]\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_not_applied_outside_rank_visible_paths(self):
        src = "def f(table):\n    return [v for v in table.values()]\n"
        path = str(Path("src") / "repro" / "apps" / "report.py")
        assert lint_source(src, path=path) == []

    def test_suppressed_on_line_above(self):
        src = (
            "def f(table):\n"
            "    # repro: allow[DET103] insertion order is the layout order\n"
            "    return [v for v in table.values()]\n"
        )
        assert lint_source(src, path="x.py") == []


class TestHostClockWait:
    def test_time_sleep_flagged(self):
        src = "import time\n\ndef backoff():\n    time.sleep(0.5)\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET106"]
        assert violations[0].line == 4

    def test_signal_alarm_flagged(self):
        src = "import signal\n\ndef watchdog():\n    signal.alarm(30)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET106"]

    def test_settimeout_flagged(self):
        src = "def connect(sock):\n    sock.settimeout(2.0)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET106"]

    def test_timeout_kwarg_flagged(self):
        src = "def wait(q):\n    return q.get(timeout=5)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET106"]

    def test_timeout_none_allowed(self):
        src = "def wait(q):\n    return q.get(timeout=None)\n"
        assert lint_source(src, path="x.py") == []

    def test_not_applied_outside_rank_visible_paths(self):
        src = "import time\n\ndef poll():\n    time.sleep(1)\n"
        path = str(Path("src") / "repro" / "apps" / "monitor.py")
        assert lint_source(src, path=path) == []

    def test_resilience_paths_are_rank_visible(self):
        src = "import time\n\ndef backoff():\n    time.sleep(1)\n"
        path = str(Path("src") / "repro" / "resilience" / "recovery.py")
        assert rule_ids(lint_source(src, path=path)) == ["DET106"]

    def test_suppressed(self):
        src = (
            "import time\n\ndef backoff():\n"
            "    time.sleep(0.5)  # repro: allow[DET106] host-side CLI wait\n"
        )
        assert lint_source(src, path="x.py") == []


class TestFlushBoundary:
    def test_write_text_flagged(self):
        src = "def export(p, text):\n    p.write_text(text)\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET107"]
        assert violations[0].line == 2

    def test_open_for_writing_flagged(self):
        src = "def export(path):\n    with open(path, 'w') as fh:\n        fh.write('x')\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET107"]

    def test_open_mode_kwarg_flagged(self):
        src = "def export(path):\n    return open(path, mode='ab')\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET107"]

    def test_open_read_only_allowed(self):
        src = "def load(path):\n    with open(path) as fh:\n        return fh.read()\n"
        assert lint_source(src, path="x.py") == []
        src = "def load(path):\n    with open(path, 'rb') as fh:\n        return fh.read()\n"
        assert lint_source(src, path="x.py") == []

    def test_open_dynamic_mode_flagged(self):
        # A mode that cannot be proven read-only is treated as a write.
        src = "def export(path, mode):\n    return open(path, mode)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET107"]

    def test_json_dump_and_np_savez_flagged(self):
        src = (
            "import json\nimport numpy as np\n\n"
            "def export(obj, fh, path, arr):\n"
            "    json.dump(obj, fh)\n"
            "    np.savez(path, arr=arr)\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET107", "DET107"]

    def test_marked_def_line_exempt(self):
        src = "def flush(p, text):  # repro: obs-flush\n    p.write_text(text)\n"
        assert lint_source(src, path="x.py") == []

    def test_marked_line_above_exempt(self):
        src = (
            "# repro: obs-flush\n"
            "def flush(p, text):\n    p.write_text(text)\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_nested_function_inherits_exemption(self):
        src = (
            "def flush(p, items):  # repro: obs-flush\n"
            "    def write_one(item):\n"
            "        p.write_text(item)\n"
            "    for item in items:\n"
            "        write_one(item)\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_not_applied_outside_rank_visible_paths(self):
        src = "def save(p, text):\n    p.write_text(text)\n"
        path = str(Path("src") / "repro" / "analysis" / "report.py")
        assert lint_source(src, path=path) == []

    def test_suppressed(self):
        src = (
            "def save(p, text):\n"
            "    p.write_text(text)  # repro: allow[DET107] test fixture\n"
        )
        assert lint_source(src, path="x.py") == []


class TestSchedulingOrder:
    SERVE = "src/repro/serve/queue.py"

    def test_bare_heappush_flagged_in_serve(self):
        src = (
            "import heapq\n\n"
            "def push(heap, wid):\n    heapq.heappush(heap, wid)\n"
        )
        violations = lint_source(src, path=self.SERVE)
        assert rule_ids(violations) == ["DET108"]
        assert "tie-break" in violations[0].message

    def test_imported_heappush_flagged_in_serve(self):
        src = (
            "from heapq import heappush\n\n"
            "def push(heap, wid):\n    heappush(heap, wid)\n"
        )
        assert rule_ids(lint_source(src, path=self.SERVE)) == ["DET108"]

    def test_tuple_entry_allowed(self):
        src = (
            "import heapq\n\n"
            "def push(heap, prio, seq, job):\n"
            "    heapq.heappush(heap, (prio, seq, job))\n"
        )
        assert lint_source(src, path=self.SERVE) == []

    def test_single_element_tuple_flagged(self):
        src = (
            "import heapq\n\n"
            "def push(heap, job):\n    heapq.heappush(heap, (job,))\n"
        )
        assert rule_ids(lint_source(src, path=self.SERVE)) == ["DET108"]

    def test_items_iteration_flagged_in_serve(self):
        src = (
            "def drain(queues):\n"
            "    return [k for k, v in queues.items()]\n"
        )
        assert rule_ids(lint_source(src, path=self.SERVE)) == ["DET108"]

    def test_sorted_items_allowed(self):
        src = (
            "def drain(queues):\n"
            "    return [k for k, v in sorted(queues.items())]\n"
        )
        assert lint_source(src, path=self.SERVE) == []

    def test_not_applied_outside_serve(self):
        src = (
            "import heapq\n\n"
            "def push(heap, wid):\n    heapq.heappush(heap, wid)\n"
        )
        assert lint_source(src, path="src/repro/core/simulator.py") == []

    def test_unsorted_items_flagged_in_shard_ring(self):
        # The fleet tier carries scheduling state too: an unsorted
        # .items() walk over per-shard loads would encode insertion
        # history into routing decisions.
        src = (
            "def pick(loads):\n"
            "    return [s for s, depth in loads.items() if depth == 0]\n"
        )
        violations = lint_source(src, path="src/repro/shard/ring.py")
        assert rule_ids(violations) == ["DET108"]

    def test_heappush_flagged_in_shard(self):
        src = (
            "import heapq\n\n"
            "def push(heap, shard):\n    heapq.heappush(heap, shard)\n"
        )
        assert rule_ids(
            lint_source(src, path="src/repro/shard/router.py")
        ) == ["DET108"]

    def test_suppression(self):
        src = (
            "import heapq\n\n"
            "def push(heap, entry):\n"
            "    heapq.heappush(heap, entry)"
            "  # repro: allow[DET108] entry is a tuple\n"
        )
        assert lint_source(src, path=self.SERVE) == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        src = "def f(acc=[]):\n    return acc\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET104"]

    def test_factory_call_and_kwonly_flagged(self):
        src = "def f(*, cache=dict()):\n    return cache\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET104"]

    def test_none_default_allowed(self):
        src = "def f(acc=None):\n    return acc or []\n"
        assert lint_source(src, path="x.py") == []

    def test_applies_even_off_simulation_paths(self):
        src = "def f(acc=[]):\n    return acc\n"
        path = str(Path("src") / "repro" / "apps" / "report.py")
        assert rule_ids(lint_source(src, path=path)) == ["DET104"]

    def test_suppressed(self):
        src = (
            "# repro: allow[DET104] sentinel list, never mutated\n"
            "def f(acc=[]):\n    return acc\n"
        )
        assert lint_source(src, path="x.py") == []


class TestBroadExcept:
    def test_bare_except_flagged(self):
        src = "def f():\n    try:\n        g()\n    except:\n        pass\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET105"]

    def test_except_exception_flagged(self):
        src = (
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        return None\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET105"]

    def test_specific_exception_allowed(self):
        src = (
            "def f():\n    try:\n        g()\n"
            "    except ValueError:\n        return None\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_reraise_allowed(self):
        src = (
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        cleanup()\n        raise\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_suppressed(self):
        src = (
            "def f():\n    try:\n        g()\n"
            "    # repro: allow[DET105] top-level CLI guard\n"
            "    except Exception:\n        return 1\n"
        )
        assert lint_source(src, path="x.py") == []


class TestEngine:
    def test_path_classification(self):
        assert path_is_rank_visible("src/repro/runtime/mpi.py")
        assert path_is_rank_visible("src/repro/core/simulator.py")
        assert not path_is_rank_visible("src/repro/apps/quicknet.py")
        assert not path_is_rank_visible("src/repro/cli.py")
        assert not path_is_rank_visible("src/repro/check/lint.py")
        # Unknown paths default strict.
        assert path_is_rank_visible("tests/fixtures/whatever.py")

    def test_run_lint_over_directory(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef f(acc=[]):\n    return time.time(), acc\n"
        )
        (tmp_path / "clean.py").write_text("def f():\n    return 1\n")
        report = run_lint([tmp_path])
        assert report.files_checked == 2
        assert rule_ids(report.violations) == ["DET104", "DET101"]
        assert not report.passed
        assert "2 violation(s) in 2 file(s)" in report.format()

    def test_violations_sorted_and_formatted(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import time\nt = time.time()\nu = time.time()\n")
        report = run_lint([path])
        lines = [v.line for v in report.violations]
        assert lines == sorted(lines)
        assert report.violations[0].format().startswith(f"{path}:2:")

    def test_rule_filter(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import time\n\ndef f(acc=[]):\n    return time.time()\n")
        report = run_lint([path], rules=rules_by_id(["DET104"]))
        assert rule_ids(report.violations) == ["DET104"]

    def test_iter_python_files_rejects_non_python(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("hi")
        with pytest.raises(CheckInputError, match="not a python file"):
            iter_python_files([other])

    def test_iter_python_files_names_missing_path(self, tmp_path):
        missing = tmp_path / "nope" / "gone.py"
        with pytest.raises(CheckInputError, match="no such file or directory"):
            iter_python_files([missing])
        with pytest.raises(CheckInputError, match="gone.py"):
            iter_python_files([missing])

    def test_non_utf8_file_is_a_typed_error(self, tmp_path):
        path = tmp_path / "latin1.py"
        path.write_bytes(b"# caf\xe9\nx = 1\n")
        with pytest.raises(CheckInputError, match="not valid UTF-8"):
            run_lint([path])
        with pytest.raises(CheckInputError, match="latin1.py"):
            run_lint([path])

    def test_installed_repro_package_is_clean(self):
        """The acceptance gate CI runs: the repo lints clean."""
        report = run_lint([Path(repro.__file__).parent])
        assert report.files_checked > 50
        assert report.passed, report.format()


class TestPathClassificationTable:
    """The rank-visibility classifier, one row per package family."""

    RANK_VISIBLE = [
        "src/repro/runtime/mpi.py",
        "src/repro/runtime/pgas.py",
        "src/repro/core/simulator.py",
        "src/repro/compiler/pcc.py",
        "src/repro/arch/crossbar.py",
        "src/repro/cocomac/model.py",
        "src/repro/util/rng.py",
        "src/repro/errors.py",
        "src/repro/resilience/recovery.py",
        "src/repro/obs/tracer.py",
        "src/repro/serve/server.py",
    ]
    NOT_RANK_VISIBLE = [
        "src/repro/apps/quicknet.py",
        "src/repro/perf/report.py",
        "src/repro/analysis/raster.py",
        "src/repro/check/flow/taint.py",
        "src/repro/cli.py",
        "src/repro/version.py",
    ]

    def test_rank_visible_paths(self):
        for path in self.RANK_VISIBLE:
            assert path_is_rank_visible(path), path

    def test_non_rank_visible_paths(self):
        for path in self.NOT_RANK_VISIBLE:
            assert not path_is_rank_visible(path), path

    def test_paths_outside_repro_default_strict(self):
        assert path_is_rank_visible("tests/unit/test_lint.py")
        assert path_is_rank_visible("fixture.py")


class TestExplicitTimestamp:
    SERVE = "src/repro/serve/server.py"
    LIVE = "src/repro/obs/live/pipeline.py"

    def test_instant_without_ts_flagged_in_serve(self):
        src = (
            "def emit(tracer, job):\n"
            "    tracer.instant('serve.done', rank=-1, job=job)\n"
        )
        violations = lint_source(src, path=self.SERVE)
        assert rule_ids(violations) == ["DET110"]
        assert "ts_us" in violations[0].message

    def test_ts_none_flagged(self):
        src = (
            "def emit(tracer):\n"
            "    tracer.complete('job.run', rank=0, ts_us=None)\n"
        )
        assert rule_ids(lint_source(src, path=self.LIVE)) == ["DET110"]

    def test_explicit_ts_allowed(self):
        src = (
            "def emit(self, job):\n"
            "    self.obs.tracer.instant('serve.done', rank=-1, "
            "ts_us=self.now_us, job=job)\n"
        )
        assert lint_source(src, path=self.SERVE) == []

    def test_phase_clock_emitters_banned(self):
        src = (
            "def emit(tracer, tick):\n"
            "    with tracer.span('route', rank=0, tick=tick):\n"
            "        pass\n"
        )
        violations = lint_source(src, path="src/repro/shard/router.py")
        assert rule_ids(violations) == ["DET110"]
        assert "phase" in violations[0].message

    def test_non_tracer_receiver_not_flagged(self):
        src = "def f(queue):\n    queue.complete('x')\n"
        assert lint_source(src, path=self.SERVE) == []

    def test_not_applied_to_posthoc_obs(self):
        # The core simulator and post-hoc obs analysis legitimately emit
        # on the tracer's phase-window clock.
        src = (
            "def emit(tracer, tick):\n"
            "    with tracer.span('deliver', rank=0, tick=tick):\n"
            "        pass\n"
        )
        assert lint_source(src, path="src/repro/obs/span.py") == []
        assert lint_source(src, path="src/repro/core/simulator.py") == []

    def test_suppressed(self):
        src = (
            "def emit(tracer, job):\n"
            "    # repro: allow[DET110] replayed event keeps source stamp\n"
            "    tracer.instant('serve.replay', rank=-1, job=job)\n"
        )
        assert lint_source(src, path=self.SERVE) == []


class TestEnvFsOrder:
    def test_environ_read_flagged(self):
        src = "import os\n\ndef f():\n    return os.environ['SEED']\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET109"]

    def test_getenv_flagged(self):
        src = "import os\n\ndef f():\n    return os.getenv('SEED')\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET109"]

    def test_listdir_iteration_flagged(self):
        src = "import os\n\ndef f(d):\n    return [p for p in os.listdir(d)]\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET109"]

    def test_iterdir_for_loop_flagged(self):
        src = (
            "import os\n\ndef f(d):\n    for p in d.iterdir():\n"
            "        handle(p)\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET109"]

    def test_sorted_listing_allowed(self):
        src = (
            "import os\n\ndef f(d):\n"
            "    return [p for p in sorted(os.listdir(d))]\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_unimported_os_namespace_not_flagged(self):
        src = "def f(os):\n    return os.environ\n"
        assert lint_source(src, path="x.py") == []

    def test_not_applied_outside_rank_visible_paths(self):
        src = "import os\n\ndef f():\n    return os.getenv('SEED')\n"
        path = str(Path("src") / "repro" / "apps" / "report.py")
        assert lint_source(src, path=path) == []

    def test_suppressed(self):
        src = (
            "import os\n\ndef f():\n"
            "    # repro: allow[DET109] documented launch-time input\n"
            "    return os.environ['SEED']\n"
        )
        assert lint_source(src, path="x.py") == []


class TestHostProfBoundary:
    def test_tracemalloc_read_flagged(self):
        src = (
            "import tracemalloc\n\ndef peak():\n"
            "    return tracemalloc.get_traced_memory()[1]\n"
        )
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET111"]
        assert "tracemalloc.get_traced_memory" in violations[0].message
        assert violations[0].line == 4

    def test_tracemalloc_start_flagged(self):
        src = "import tracemalloc\n\ndef begin():\n    tracemalloc.start(1)\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET111"]

    def test_current_frames_flagged(self):
        src = "import sys\n\ndef stacks():\n    return sys._current_frames()\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET111"]
        assert "sys._current_frames" in violations[0].message

    def test_getrusage_flagged(self):
        src = (
            "import resource\n\ndef rss():\n"
            "    return resource.getrusage(resource.RUSAGE_SELF)\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET111"]

    def test_marked_def_line_exempt(self):
        src = (
            "import tracemalloc\n\n"
            "def peak():  # repro: host-prof\n"
            "    return tracemalloc.get_traced_memory()[1]\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_marked_line_above_exempt(self):
        src = (
            "import sys\n\n"
            "# repro: host-prof\n"
            "def stacks(ident):\n"
            "    return sys._current_frames().get(ident)\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_nested_function_inherits_exemption(self):
        src = (
            "import tracemalloc\n\n"
            "def meter():  # repro: host-prof\n"
            "    def peak():\n"
            "        return tracemalloc.get_traced_memory()[1]\n"
            "    return peak()\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_obs_prof_package_is_linted(self):
        # The profiling layer itself is rank-visible for the linter —
        # that is the isolation guarantee, so an unmarked read there fails.
        src = "import tracemalloc\n\ndef peak():\n    return tracemalloc.stop()\n"
        path = str(Path("src") / "repro" / "obs" / "prof" / "memory.py")
        assert rule_ids(lint_source(src, path=path)) == ["DET111"]

    def test_not_applied_outside_rank_visible_paths(self):
        src = "import tracemalloc\n\ndef peak():\n    return tracemalloc.stop()\n"
        path = str(Path("src") / "repro" / "perf" / "meter.py")
        assert lint_source(src, path=path) == []

    def test_suppressed(self):
        src = (
            "import resource\n\ndef rss():\n"
            "    # repro: allow[DET111] documented one-shot diagnostics\n"
            "    return resource.getrusage(resource.RUSAGE_SELF)\n"
        )
        assert lint_source(src, path="x.py") == []


class TestExecHostBoundary:
    def test_cpu_count_flagged(self):
        src = "import os\n\ndef width():\n    return os.cpu_count()\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET112"]
        assert "os.cpu_count" in violations[0].message
        assert violations[0].line == 4

    def test_multiprocessing_cpu_count_flagged(self):
        src = (
            "import multiprocessing\n\ndef width():\n"
            "    return multiprocessing.cpu_count()\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET112"]

    def test_fork_context_flagged(self):
        src = (
            "import multiprocessing\n\ndef ctx():\n"
            "    return multiprocessing.get_context('fork')\n"
        )
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET112"]
        assert "fork start method" in violations[0].message

    def test_fork_start_method_flagged(self):
        src = (
            "import multiprocessing as mp\n\ndef setup():\n"
            "    mp.set_start_method('forkserver')\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET112"]

    def test_os_fork_flagged(self):
        src = "import os\n\ndef clone():\n    return os.fork()\n"
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET112"]
        assert "spawn" in violations[0].message

    def test_spawn_context_allowed(self):
        src = (
            "import multiprocessing\n\ndef ctx():\n"
            "    return multiprocessing.get_context('spawn')\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_unseeded_rng_flagged(self):
        src = (
            "import numpy as np\n\ndef stream():\n"
            "    return np.random.default_rng()\n"
        )
        violations = lint_source(src, path="x.py")
        assert rule_ids(violations) == ["DET112"]
        assert "unseeded" in violations[0].message

    def test_unseeded_random_flagged(self):
        # random.Random() is both a global-state RNG touch (DET102) and
        # an unseeded construction (DET112).
        src = "import random\n\ndef stream():\n    return random.Random()\n"
        assert rule_ids(lint_source(src, path="x.py")) == ["DET102", "DET112"]

    def test_unseeded_seed_sequence_flagged(self):
        src = (
            "import numpy as np\n\ndef entropy():\n"
            "    return np.random.SeedSequence()\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET112"]

    def test_seeded_rng_allowed(self):
        src = (
            "import numpy as np\n\ndef stream(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_marked_def_line_exempt(self):
        src = (
            "import os\n\n"
            "def width():  # repro: exec-host\n"
            "    return os.cpu_count()\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_marked_line_above_exempt(self):
        src = (
            "import os\n\n"
            "# repro: exec-host\n"
            "def width():\n"
            "    return os.cpu_count()\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_nested_function_inherits_exemption(self):
        src = (
            "import os\n\n"
            "def plan():  # repro: exec-host\n"
            "    def width():\n"
            "        return os.cpu_count()\n"
            "    return width()\n"
        )
        assert lint_source(src, path="x.py") == []

    def test_fork_flagged_even_inside_exec_host(self):
        # The marker admits host *facts*, never the fork start method.
        src = (
            "import multiprocessing\n\n"
            "def ctx():  # repro: exec-host\n"
            "    return multiprocessing.get_context('fork')\n"
        )
        assert rule_ids(lint_source(src, path="x.py")) == ["DET112"]

    def test_exec_package_is_linted(self):
        src = "import os\n\ndef width():\n    return os.cpu_count()\n"
        path = str(Path("src") / "repro" / "exec" / "pool.py")
        assert rule_ids(lint_source(src, path=path)) == ["DET112"]

    def test_not_applied_outside_rank_visible_paths(self):
        src = "import os\n\ndef width():\n    return os.cpu_count()\n"
        path = str(Path("src") / "repro" / "analysis" / "meter.py")
        assert lint_source(src, path=path) == []

    def test_suppressed(self):
        src = (
            "import os\n\ndef width():\n"
            "    # repro: allow[DET112] documented capacity-planning probe\n"
            "    return os.cpu_count()\n"
        )
        assert lint_source(src, path="x.py") == []
