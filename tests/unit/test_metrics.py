"""Unit tests for run metrics and the simulated timer."""

import pytest

from repro.core.metrics import (
    PhaseTimes,
    RunMetrics,
    SimulatedTimer,
    TickMetrics,
    estimate_bytes,
)
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig


class TestPhaseTimes:
    def test_total(self):
        t = PhaseTimes(1.0, 2.0, 3.0)
        assert t.total == 6.0

    def test_iadd(self):
        t = PhaseTimes(1, 1, 1)
        t += PhaseTimes(2, 3, 4)
        assert (t.synapse, t.neuron, t.network) == (3, 4, 5)

    def test_as_dict(self):
        d = PhaseTimes(1, 2, 3).as_dict()
        assert d["total"] == 6


class TestRunMetrics:
    def make(self) -> RunMetrics:
        m = RunMetrics(n_ranks=4)
        for t in range(10):
            m.record_tick(
                TickMetrics(
                    tick=t,
                    fired=100,
                    local_spikes=80,
                    remote_spikes=20,
                    messages=5,
                    bytes_sent=400,
                    active_axons=50,
                )
            )
        return m

    def test_accumulation(self):
        m = self.make()
        assert m.ticks == 10
        assert m.total_fired == 1000
        assert m.total_messages == 50

    def test_mean_rate(self):
        m = self.make()
        # 1000 spikes / 1000 neurons / 0.010 s = 100 Hz
        assert m.mean_rate_hz(1000) == pytest.approx(100.0)

    def test_per_tick_ratios(self):
        m = self.make()
        assert m.messages_per_tick() == 5
        assert m.spikes_per_tick() == 20
        assert m.bytes_per_tick() == 400

    def test_simulated_slowdown(self):
        m = self.make()
        m.simulated += PhaseTimes(0.0, 0.0, 3.88)
        assert m.simulated_slowdown() == pytest.approx(388.0)

    def test_summary_keys(self):
        s = self.make().summary(1000)
        assert {"ticks", "mean_rate_hz", "messages_per_tick"} <= set(s)


class TestSimulatedTimer:
    def test_max_over_ranks(self):
        mc = MachineConfig(BLUE_GENE_Q, nodes=2, threads_per_proc=32)
        timer = SimulatedTimer(mc, "mpi")
        timer.rank_compute(10, 1000, 0, 0, 0)
        small = timer.tick_times().neuron
        timer.rank_compute(10, 100000, 0, 0, 0)
        big = timer.tick_times().neuron
        assert big > small
        timer.rank_compute(10, 500, 0, 0, 0)  # smaller rank cannot reduce max
        assert timer.tick_times().neuron == big

    def test_reset(self):
        mc = MachineConfig(BLUE_GENE_Q, nodes=2, threads_per_proc=32)
        timer = SimulatedTimer(mc, "mpi")
        timer.rank_compute(10, 1000, 0, 0, 0)
        timer.reset_tick()
        assert timer.tick_times().total == 0.0

    def test_rejects_unknown_backend(self):
        mc = MachineConfig(BLUE_GENE_Q, nodes=2)
        with pytest.raises(ValueError):
            SimulatedTimer(mc, "rdma")


def test_estimate_bytes():
    assert estimate_bytes(1000) == 20000
