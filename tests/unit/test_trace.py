"""Unit tests for spike trace export/import/compare/replay."""

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass, SpikeRecorder
from repro.core.trace import (
    compare_traces,
    read_trace,
    replay_as_input,
    write_trace,
)
from repro.errors import CheckpointError


@pytest.fixture()
def recorded():
    net = build_quickstart_network()
    sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
    sim.run(60)
    return sim.recorder


class TestRoundTrip:
    def test_write_read(self, recorded, tmp_path):
        path = tmp_path / "run.spk"
        nbytes = write_trace(recorded, path)
        assert nbytes == 16 + 16 * recorded.count
        trace = read_trace(path)
        for a, b in zip(trace, recorded.to_arrays()):
            assert np.array_equal(a, b)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.spk"
        write_trace(SpikeRecorder(), path)
        t, g, n = read_trace(path)
        assert t.size == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.spk"
        path.write_bytes(b"NOPE" + b"\0" * 32)
        with pytest.raises(CheckpointError, match="not a Compass trace"):
            read_trace(path)

    def test_truncated(self, recorded, tmp_path):
        path = tmp_path / "trunc.spk"
        write_trace(recorded, path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(CheckpointError, match="truncated"):
            read_trace(path)


class TestCompare:
    def test_equal(self, recorded):
        a = recorded.to_arrays()
        assert compare_traces(a, a).equal

    def test_divergence_located(self, recorded):
        a = recorded.to_arrays()
        b = tuple(x.copy() for x in a)
        b[2][5] += 1  # corrupt neuron id of record 5
        diff = compare_traces(a, b)
        assert not diff.equal
        assert "record 5" in diff.detail
        assert diff.first_divergence_tick == a[0][5]

    def test_length_mismatch(self, recorded):
        a = recorded.to_arrays()
        b = tuple(x[:-2] for x in a)
        diff = compare_traces(a, b)
        assert not diff.equal
        assert "length mismatch" in diff.detail


class TestReplay:
    def test_replay_drives_target(self, recorded, tmp_path):
        """A recorded trace replayed into a fresh network produces input."""
        path = tmp_path / "run.spk"
        write_trace(recorded, path)
        trace = read_trace(path)

        target = build_quickstart_network(n_cores=2, seed=99)
        sim = Compass(target, CompassConfig(record_spikes=True))
        # Map every recorded spike from gid 0 onto target core 0's axons.
        triples = list(
            replay_as_input(
                trace,
                lambda gid, neuron: (0, neuron % 256) if gid == 0 else None,
            )
        )
        future = [(g, a, t) for g, a, t in triples if t >= 0]
        sim.attach_schedule(future)
        sim.run(70)
        assert sim.metrics.total_active_axons > 0

    def test_tick_offset(self, recorded):
        trace = recorded.to_arrays()
        shifted = list(
            replay_as_input(trace, lambda g, n: (0, 0), tick_offset=100)
        )
        if shifted:
            assert min(t for _, _, t in shifted) >= 100
