"""Unit tests for the collective-algorithm derivations."""

import numpy as np
import pytest

from repro.runtime.collectives import (
    dissemination_barrier,
    fit_linear,
    reduce_scatter_recursive_halving,
    validate_against,
)
from repro.runtime.machine import BLUE_GENE_Q


class TestReduceScatter:
    def test_single_rank_free(self):
        assert reduce_scatter_recursive_halving(1, 8, 1e-6, 1e9) == 0.0

    def test_grows_linearly_in_ranks(self):
        """Doubling P roughly doubles the time once bandwidth dominates:
        the §VI-B observation, derived rather than asserted."""
        t1 = reduce_scatter_recursive_halving(4096, 8, 1e-9, 1e9)
        t2 = reduce_scatter_recursive_halving(8192, 8, 1e-9, 1e9)
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_latency_term_logarithmic(self):
        # With zero payload only the per-round latency remains.
        t = reduce_scatter_recursive_halving(1024, 0.0, 1e-6, 1e9)
        assert t == pytest.approx(10 * 1e-6)

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            reduce_scatter_recursive_halving(0, 8, 1e-6, 1e9)


class TestBarrier:
    def test_log_rounds(self):
        t256 = dissemination_barrier(256, 1e-6)
        t65536 = dissemination_barrier(65536, 1e-6)
        assert t65536 / t256 == pytest.approx(2.0, rel=0.01)  # 16 vs 8 rounds

    def test_barrier_cheaper_than_reduce_scatter(self):
        p = 16384
        rs = reduce_scatter_recursive_halving(p, 8, 1e-6, 1e9)
        barrier = dissemination_barrier(p, 1e-6)
        assert barrier < rs / 10


class TestFit:
    def test_recovers_exact_line(self):
        ranks = np.array([100, 200, 400])
        times = 3.0 + 0.5 * ranks
        alpha, beta = fit_linear(ranks, times)
        assert alpha == pytest.approx(3.0)
        assert beta == pytest.approx(0.5)


class TestValidation:
    def test_calibrated_model_matches_derivation_shape(self):
        """The calibrated BG/Q model grows like the recursive-halving
        derivation (both ~linear in P once bandwidth/software per-element
        costs dominate) even though the absolute constant reflects MPI
        software overhead above wire time."""
        result = validate_against(BLUE_GENE_Q.cost)
        assert result["derived_beta"] > 0
        # Growth ratios agree within ~60% across a 64x communicator range.
        assert result["shape_mismatch"] < 0.6
        # The calibration attributes most of the per-element cost to
        # software (hundreds of wire-times per element is typical of
        # small-element MPI reductions).
        assert result["implied_software_overhead"] > 10


class TestFailureDetectionCosts:
    """Heartbeat and timeout cost helpers for the resilience subsystem."""

    def test_heartbeat_rides_the_barrier(self):
        from repro.runtime.collectives import (
            dissemination_barrier,
            heartbeat_allreduce_time,
        )

        t = heartbeat_allreduce_time(64)
        assert t > 0
        assert t >= dissemination_barrier(64, latency=2e-6)

    def test_heartbeat_grows_with_ranks(self):
        from repro.runtime.collectives import heartbeat_allreduce_time

        assert heartbeat_allreduce_time(1024) > heartbeat_allreduce_time(4)

    def test_phase_timeout_slack(self):
        from repro.runtime.collectives import phase_timeout

        assert phase_timeout(0.01) == pytest.approx(0.04)
        assert phase_timeout(0.01, slack_factor=2.0) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            phase_timeout(-1.0)
