"""Unit tests for the execution adapter layer (``repro.exec``).

One parametrized contract suite over the in-process backends — prepare,
run, collect, checkpoint round-trip, injection — plus the shared pieces:
layout validation, the backend registry, the setup-cost model, and the
shared-memory spike-window ring.  The heavyweight pool byte-identity
guarantees live in ``tests/integration/test_exec_determinism.py``; here
the pool is only exercised for its typed rejection surface.
"""

import multiprocessing

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass
from repro.errors import ExecError
from repro.exec import (
    ExecLayout,
    PgasAdapter,
    ProcessPoolAdapter,
    SequentialAdapter,
    SetupCostModel,
    SpikeWindow,
    as_adapter,
    backend_names,
    make_adapter,
)
from repro.resilience import spike_digest
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig

TICKS = 12
N_CORES = 8


def _net(seed=7):
    return build_quickstart_network(n_cores=N_CORES, seed=seed)


class TestExecLayout:
    def test_validation(self):
        with pytest.raises(ExecError, match="workers"):
            ExecLayout(workers=0)
        with pytest.raises(ExecError, match="window_bytes"):
            ExecLayout(window_bytes=16)

    def test_compass_config_round_trip(self):
        layout = ExecLayout(n_processes=4, threads_per_process=2, record_spikes=True)
        cfg = layout.compass_config()
        assert cfg.n_processes == 4
        assert cfg.threads_per_process == 2
        assert cfg.record_spikes
        lifted = ExecLayout.from_config(cfg, workers=3)
        assert lifted.n_processes == 4
        assert lifted.workers == 3


class TestRegistry:
    def test_known_backends(self):
        names = backend_names()
        for name in ("sequential", "mpi", "pgas", "pool", "pool-mpi"):
            assert name in names

    def test_unknown_backend_raises(self):
        with pytest.raises(ExecError, match="unknown execution backend"):
            make_adapter("quantum")

    def test_as_adapter_passthrough_and_wrap(self):
        adapter = make_adapter("sequential")
        assert as_adapter(adapter) is adapter
        net = _net()
        seq = as_adapter(Compass(net, CompassConfig(n_processes=2)))
        assert isinstance(seq, SequentialAdapter)
        assert seq.backend == "sequential"
        pg = as_adapter(PgasCompass(net, CompassConfig(n_processes=2)))
        assert isinstance(pg, PgasAdapter)
        assert pg.backend == "pgas"


class TestSetupCostModel:
    def test_span_cost(self):
        m = SetupCostModel(setup_us=100.0, tick_us=2.0, spike_us=0.5)
        assert m.span_cost_us(10, 4, cold=False) == 10 * 2.0 + 4 * 0.5
        assert m.span_cost_us(10, 4, cold=True) == 100.0 + 10 * 2.0 + 4 * 0.5


@pytest.mark.parametrize("backend", ["sequential", "pgas"])
class TestAdapterContract:
    def test_run_matches_direct_simulator(self, backend):
        net = _net()
        layout = ExecLayout(n_processes=4, record_spikes=True)
        adapter = make_adapter(backend).prepare(net, layout)
        result = adapter.run(TICKS)
        sim_cls = Compass if backend == "sequential" else PgasCompass
        direct = sim_cls(_net(), layout.compass_config()).run(TICKS)
        assert result.total_spikes == direct.total_spikes
        assert spike_digest(result.spikes) == spike_digest(direct.spikes)
        assert adapter.tick == TICKS
        assert adapter.n_ranks == 4

    def test_capture_restore_round_trip(self, backend):
        adapter = make_adapter(backend).prepare(
            _net(), ExecLayout(n_processes=2, record_spikes=True)
        )
        adapter.run_ticks(5)
        snap = adapter.capture()
        adapter.run_ticks(5)
        first = spike_digest(adapter.recorder)
        # Rewind to the checkpoint and replay: the continuation must land
        # on the same tick and produce identical spikes from that state.
        adapter.restore(snap)
        assert adapter.tick == 5
        adapter.recorder.truncate(5)
        adapter.run_ticks(5)
        assert spike_digest(adapter.recorder) == first
        assert adapter.state_nbytes() > 0

    def test_injection(self, backend):
        base = make_adapter(backend).prepare(
            _net(), ExecLayout(n_processes=2, record_spikes=True)
        )
        base_total = base.run(TICKS).total_spikes
        poked = make_adapter(backend).prepare(
            _net(), ExecLayout(n_processes=2, record_spikes=True)
        )
        for axon in range(6):
            poked.inject(gid=0, axon=axon, tick=3)
        assert poked.run(TICKS).total_spikes >= base_total

    def test_inject_past_tick_raises(self, backend):
        adapter = make_adapter(backend).prepare(_net(), ExecLayout(n_processes=2))
        adapter.run_ticks(4)
        with pytest.raises(ValueError, match="past tick"):
            adapter.inject(gid=0, axon=0, tick=1)


class TestPoolRejections:
    def test_unknown_flavor(self):
        with pytest.raises(ExecError, match="flavor"):
            ProcessPoolAdapter(flavor="tcp")

    def test_sanitize_rejected(self):
        with pytest.raises(ExecError, match="sanitizer"):
            ProcessPoolAdapter(workers=1).prepare(
                _net(), ExecLayout(n_processes=2, sanitize=True)
            )

    def test_machine_model_rejected(self):
        machine = MachineConfig(machine=BLUE_GENE_Q, nodes=2)
        with pytest.raises(ExecError, match="machine"):
            ProcessPoolAdapter(workers=1).prepare(
                _net(), ExecLayout(n_processes=2, machine=machine)
            )

    def test_profiling_obs_rejected(self):
        from repro.obs import Observability

        obs = Observability.with_profiling()
        with pytest.raises(ExecError, match="prof"):
            ProcessPoolAdapter(obs=obs, workers=1).prepare(
                _net(), ExecLayout(n_processes=2)
            )

    def test_flags(self):
        pool = ProcessPoolAdapter(workers=1)
        assert pool.backend == "pool"
        assert not pool.supports_simulated_faults
        assert ProcessPoolAdapter(flavor="mpi", workers=1).backend == "pool-mpi"


class TestSpikeWindow:
    @pytest.fixture
    def window(self):
        ctx = multiprocessing.get_context("spawn")
        win = SpikeWindow.create(ctx, owner=0, capacity=256)
        yield win
        win.unlink()

    def test_put_drain(self, window):
        window.put(1, 0, b"alpha")
        window.put(2, 0, b"beta")
        assert window.drain() == [(1, 0, b"alpha"), (2, 0, b"beta")]
        assert window.drain() == []

    def test_wrap_around(self, window):
        # Each 48-B record cycles the 256-B ring through every offset.
        payload = bytes(range(32))
        for i in range(40):
            window.put(i, 0, payload)
            assert window.drain() == [(i, 0, payload)]

    def test_overflow_raises(self, window):
        window.put(0, 0, bytes(100))
        window.put(1, 0, bytes(100))
        with pytest.raises(ExecError, match="overflow"):
            window.put(2, 0, bytes(100))

    def test_oversized_record_raises(self, window):
        with pytest.raises(ExecError, match="window_bytes"):
            window.put(0, 0, bytes(1024))
