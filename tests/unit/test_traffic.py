"""Unit tests for the scale-out traffic model."""

import numpy as np
import pytest

from repro.cocomac.model import build_macaque_coreobject
from repro.perf.traffic import CocomacTraffic, SyntheticTraffic, _apportion_processes


@pytest.fixture(scope="module")
def model():
    return build_macaque_coreobject(total_cores=16384, seed=0)


class TestRateSplit:
    def test_mean_rate_preserved(self, model):
        tm = CocomacTraffic(model, mean_rate_hz=8.1, white_rate_hz=0.53)
        ts = tm.summary(64)
        total_neurons = model.total_cores * 256
        implied_rate = ts.total_spikes * 1000.0 / total_neurons
        # Connection counts ~ neuron count (every neuron one output).
        assert implied_rate == pytest.approx(8.1, rel=0.02)

    def test_white_rate_too_high_rejected(self, model):
        with pytest.raises(ValueError):
            CocomacTraffic(model, mean_rate_hz=1.0, white_rate_hz=50.0)


class TestScaling:
    def test_messages_grow_sublinearly_with_processes(self, model):
        """Fig 4(b): thinner links -> sub-linear message growth."""
        tm = CocomacTraffic(model)
        m64 = tm.summary(64).messages
        m512 = tm.summary(512).messages
        assert m512 > m64  # more process pairs
        assert m512 < 8 * m64  # but sub-linear in the process count

    def test_spikes_independent_of_partitioning(self, model):
        tm = CocomacTraffic(model)
        assert tm.summary(64).white_spikes == pytest.approx(
            tm.summary(512).white_spikes
        )

    def test_messages_bounded_by_spikes(self, model):
        ts = CocomacTraffic(model).summary(256)
        assert ts.messages <= ts.white_spikes

    def test_aggregation_ablation_one_message_per_spike(self, model):
        agg = CocomacTraffic(model, aggregate=True).summary(256)
        per_spike = CocomacTraffic(model, aggregate=False).summary(256)
        assert per_spike.messages == pytest.approx(per_spike.white_spikes)
        assert agg.messages < per_spike.messages

    def test_focused_targeting_fewer_messages(self, model):
        """§V-B ablation: focused connections concentrate traffic."""
        diffuse = CocomacTraffic(model, diffuse=True).summary(512)
        focused = CocomacTraffic(model, diffuse=False).summary(512)
        assert focused.messages < diffuse.messages

    def test_bytes_are_20_per_spike(self, model):
        ts = CocomacTraffic(model).summary(128)
        assert ts.bytes_sent == pytest.approx(20 * ts.white_spikes)

    def test_compute_load_uniform(self, model):
        ts = CocomacTraffic(model).summary(128)
        assert np.allclose(ts.neurons_pp, ts.neurons_pp[0])
        assert ts.neurons_pp[0] == pytest.approx(16384 * 256 / 128)


class TestSynthetic:
    def test_local_fraction_split(self):
        tm = SyntheticTraffic(n_cores=1024, rate_hz=10.0, node_local_fraction=0.75)
        ts = tm.summary(nodes=64, procs_per_node=1)
        assert ts.total_spikes == pytest.approx(1024 * 256 * 0.01)
        # With one process per node, process-local == node-local.
        local = float(ts.local_spikes_pp[0] * ts.n_processes)
        assert local == pytest.approx(0.75 * ts.total_spikes)

    def test_more_procs_per_node_less_local(self):
        tm = SyntheticTraffic(n_cores=1024)
        one = tm.summary(64, 1)
        four = tm.summary(64, 4)
        assert four.local_spikes_pp[0] * four.n_processes < (
            one.local_spikes_pp[0] * one.n_processes
        )

    def test_remote_spikes_complement_local(self):
        tm = SyntheticTraffic(n_cores=2048, rate_hz=10.0)
        ts = tm.summary(32, 2)
        local_total = float(ts.local_spikes_pp[0] * ts.n_processes)
        assert ts.white_spikes + local_total == pytest.approx(ts.total_spikes)


class TestApportionment:
    def test_every_region_at_least_one(self):
        cores = np.array([1000, 1, 1, 1])
        procs = _apportion_processes(cores, 8)
        assert procs.min() >= 1
        assert procs.sum() == 8

    def test_proportionality(self):
        cores = np.array([100, 200, 300])
        procs = _apportion_processes(cores, 600)
        assert list(procs) == [100, 200, 300]

    def test_too_few_processes_rejected(self):
        with pytest.raises(ValueError):
            _apportion_processes(np.array([1, 1, 1]), 2)
