"""Unit tests for the core-to-process partition (the implicit map)."""

import numpy as np
import pytest

from repro.core.partition import Partition


class TestUniform:
    def test_ranges_cover_exactly(self):
        p = Partition(100, 7)
        covered = []
        for lo, hi in p:
            covered.extend(range(lo, hi))
        assert covered == list(range(100))

    def test_sizes_within_one(self):
        p = Partition(100, 7)
        sizes = [p.size_of_rank(r) for r in range(7)]
        assert max(sizes) - min(sizes) <= 1

    def test_rank_of_gid_matches_ranges(self):
        p = Partition(97, 5)
        for r in range(5):
            lo, hi = p.range_of_rank(r)
            for g in (lo, hi - 1):
                assert p.rank_of_gid(g) == r

    def test_rank_of_gid_vectorised(self):
        p = Partition(64, 4)
        gids = np.arange(64)
        ranks = p.rank_of_gid(gids)
        expected = np.repeat(np.arange(4), 16)
        assert np.array_equal(ranks, expected)

    def test_rejects_more_ranks_than_cores(self):
        with pytest.raises(ValueError):
            Partition(3, 5)

    def test_rejects_out_of_range_gid(self):
        p = Partition(10, 2)
        with pytest.raises(ValueError):
            p.rank_of_gid(10)
        with pytest.raises(ValueError):
            p.rank_of_gid(-1)

    def test_single_rank(self):
        p = Partition(10, 1)
        assert p.range_of_rank(0) == (0, 10)

    def test_ranks_of_range(self):
        p = Partition(100, 10)
        assert list(p.ranks_of_range(5, 25)) == [0, 1, 2]
        assert list(p.ranks_of_range(0, 100)) == list(range(10))
        assert list(p.ranks_of_range(7, 7)) == []


class TestBoundaries:
    def test_from_boundaries(self):
        p = Partition.from_boundaries(np.array([0, 10, 15, 40]))
        assert p.n_ranks == 3
        assert p.n_cores == 40
        assert p.range_of_rank(1) == (10, 15)
        assert p.rank_of_gid(12) == 1
        assert p.rank_of_gid(39) == 2

    def test_rejects_nonmonotone(self):
        with pytest.raises(ValueError):
            Partition.from_boundaries(np.array([0, 10, 10, 20]))

    def test_rejects_not_starting_at_zero(self):
        with pytest.raises(ValueError):
            Partition.from_boundaries(np.array([1, 10]))

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            Partition.from_boundaries(np.array([0]))
