"""Unit tests for the live-telemetry layer (``repro.obs.live``).

Covers the deterministic trace-context algebra, the streaming rollup's
window edge cases (empty windows, single-job windows, boundary-exact
completions), the multi-window burn-rate SLO engine (adjacent-window
fire/resolve), the kind-aware divergence finder, the flow-event
validator's malformed-trace detection, and journey reconstruction.
"""

import json

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.obs import Observability
from repro.obs.jsonl import first_divergence, read_event_log, write_event_log
from repro.obs.live import (
    ALERT_SCHEMA,
    BurnRateRule,
    LiveTelemetry,
    ROLLUP_SCHEMA,
    SLO,
    SLOEngine,
    StreamingRollup,
    TelemetryConfig,
    TraceContext,
    WindowAggregate,
    find_traces,
    job_trace_id,
    reconstruct_journey,
    stable_hash64,
)
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.registry import MetricRegistry
from repro.obs.span import NULL_TRACER, SpanTracer
from repro.serve.jobs import DONE, REJECTED, Job, JobSpec


def _job(
    tenant="t0",
    job_id=0,
    submit_us=0.0,
    finish_us=10_000.0,
    status=DONE,
    deadline_us=None,
    reject=False,
):
    spec = JobSpec(tenant=tenant, ticks=10, deadline_us=deadline_us)
    job = Job(spec=spec, job_id=job_id, submit_us=submit_us)
    if reject:
        job.status = REJECTED
    else:
        job.status = status
        job.finish_us = finish_us
    return job


class TestTraceContext:
    def test_ids_are_content_defined(self):
        a = TraceContext.root("t0", 3, 125.5)
        b = TraceContext.root("t0", 3, 125.5)
        assert a == b
        assert a.trace_id == job_trace_id("t0", 3, 125.5)
        assert a.span_id == a.trace_id and a.parent_id == ""

    def test_child_chains_parent_links(self):
        root = TraceContext.root("t0", 0, 0.0)
        route = root.child("route")
        queue = route.child("queue")
        assert route.parent_id == root.span_id
        assert queue.parent_id == route.span_id
        assert queue.trace_id == root.trace_id
        assert len(queue.span_id) == 16

    def test_submit_instant_disambiguates_job_ids(self):
        # Per-shard job ids collide across shards; the submit instant
        # (from the seeded arrival process) never does.
        assert job_trace_id("t0", 0, 1.0) != job_trace_id("t0", 0, 2.0)

    def test_stage_changes_span(self):
        root = TraceContext.root("t0", 0, 0.0)
        assert root.child("route").span_id != root.child("queue").span_id

    def test_matches_ring_hash(self):
        from repro.shard.ring import stable_hash64 as ring_hash

        assert stable_hash64("tenant/0/0.0") == ring_hash("tenant/0/0.0")


class TestWindowAggregate:
    def test_rejected_jobs_do_not_record_latency(self):
        agg = WindowAggregate()
        agg.observe(_job(reject=True, deadline_us=5_000.0))
        assert agg.rejected == 1 and agg.completed == 0
        assert agg.missed == 1  # rejection misses the deadline by definition
        assert agg.latencies == []

    def test_single_job_window_record(self):
        agg = WindowAggregate()
        agg.observe(_job(finish_us=10_000.0))
        rec = agg.record(0, 0.0, 50_000.0, "fleet", -1, "", 3)
        assert rec["schema"] == ROLLUP_SCHEMA and rec["kind"] == "rollup"
        assert rec["completed"] == 1
        assert rec["p50_us"] == rec["p95_us"] == rec["p99_us"] == 10_000.0
        assert rec["throughput_per_s"] == pytest.approx(20.0)
        assert rec["queue_depth"] == 3

    def test_empty_window_record_is_all_zero(self):
        rec = WindowAggregate().record(2, 100.0, 200.0, "shard", 1, "", 0)
        assert rec["completed"] == rec["rejected"] == rec["missed"] == 0
        assert rec["p50_us"] == 0.0 and rec["miss_rate"] == 0.0


class TestStreamingRollup:
    def test_emits_fleet_shard_tenant_in_fixed_order(self):
        out = []
        roll = StreamingRollup(50_000.0, n_shards=2, sink=out.append)
        roll.observe(0, _job(tenant="b"))
        roll.observe(1, _job(tenant="a", job_id=1))
        roll.close_window([0, 0])
        scopes = [(r["scope"], r["shard"], r["tenant"]) for r in out]
        assert scopes == [
            ("fleet", -1, ""),
            ("shard", 0, ""),
            ("shard", 1, ""),
            ("tenant", -1, "a"),
            ("tenant", -1, "b"),
        ]

    def test_empty_window_still_emits_per_shard_records(self):
        out = []
        roll = StreamingRollup(50_000.0, n_shards=3, sink=out.append)
        roll.close_window([0, 0, 0])
        assert len(out) == 4  # fleet + 3 shards, no tenants
        assert all(r["completed"] == 0 for r in out)

    def test_window_state_resets_after_close(self):
        roll = StreamingRollup(50_000.0, n_shards=1)
        roll.observe(0, _job())
        roll.close_window([0])
        (first, _, agg) = roll.close_window([0])[0]
        assert agg.terminal == 0
        assert roll.window == 2

    def test_boundary_exact_completion_counts_in_next_window(self):
        """[t0, t1) assignment, via the router's processing order.

        The router drains events strictly before the boundary, closes
        the window, then runs boundary-instant events — so a completion
        at exactly t1 must land in window t1's aggregates.
        """
        from repro.serve.server import ServeConfig, SimServer

        # Measure one job's actual finish time, then replay with a
        # window boundary placed exactly there.
        server = SimServer(ServeConfig(workers=1))
        server.submit(JobSpec(tenant="t0", ticks=10), at_us=0.0)
        server.run()
        (job,) = server.finished_jobs()
        boundary = job.finish_us  # a window boundary exactly at completion

        server2 = SimServer(ServeConfig(workers=1))
        roll = StreamingRollup(boundary, n_shards=1)
        server2.add_completion_hook(lambda j: roll.observe(0, j))
        server2.submit(JobSpec(tenant="t0", ticks=10), at_us=0.0)
        server2.run_before(boundary)  # strictly-before: job not done yet
        closed = roll.close_window([len(server2.queue)])
        assert closed[0][2].terminal == 0  # window [0, b) is empty
        server2.run_until(boundary)  # boundary instant: job completes
        closed = roll.close_window([0])
        assert closed[0][2].terminal == 1  # ... and lands in window [b, 2b)
        assert roll.windows_closed == 2

    def test_max_ts_tracks_rejections_by_submit_time(self):
        roll = StreamingRollup(1_000.0, n_shards=1)
        roll.observe(0, _job(reject=True, submit_us=2_500.0))
        assert roll.max_ts_us == 2_500.0

    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            StreamingRollup(0.0, n_shards=1)
        with pytest.raises(ConfigurationError):
            StreamingRollup(100.0, n_shards=0)


class TestSLOEngine:
    SLOS = (SLO("latency", latency_target_us=5_000.0, error_budget=0.1),)
    RULE = BurnRateRule("page", long_windows=2, short_windows=1, threshold=2.0)

    def _window(self, engine, window, bad):
        """Feed one window: 4 jobs, `bad` of them over target."""
        agg = WindowAggregate()
        for i in range(4):
            lat = 50_000.0 if i < bad else 1_000.0
            agg.observe(_job(job_id=i, finish_us=lat))
        return engine.evaluate(window, (window + 1) * 100.0, [("fleet", -1, agg)])

    def test_fire_and_resolve_in_adjacent_windows(self):
        engine = SLOEngine(self.SLOS, rules=(self.RULE,))
        # Window 0: all bad -> burn 10.0 over both lookbacks -> fire.
        fired = self._window(engine, 0, bad=4)
        assert [a["state"] for a in fired] == ["fire"]
        assert fired[0]["kind"] == "alert" and fired[0]["schema"] == ALERT_SCHEMA
        assert fired[0]["burn_short"] == pytest.approx(10.0)
        # Window 1: all good -> short burn (10+0)/... short=1 window = 0 -> resolve.
        resolved = self._window(engine, 1, bad=0)
        assert [a["state"] for a in resolved] == ["resolve"]
        assert engine.fired == 1 and engine.resolved == 1

    def test_no_transition_while_condition_holds(self):
        engine = SLOEngine(self.SLOS, rules=(self.RULE,))
        assert len(self._window(engine, 0, bad=4)) == 1
        assert self._window(engine, 1, bad=4) == []  # still firing: no record

    def test_long_window_guards_single_spike(self):
        # One bad window after a long good history: the long lookback
        # dilutes the spike below threshold, so nothing fires.
        rule = BurnRateRule("page", long_windows=4, short_windows=1, threshold=8.0)
        engine = SLOEngine(self.SLOS, rules=(rule,))
        for w in range(3):
            assert self._window(engine, w, bad=0) == []
        assert self._window(engine, 3, bad=4) == []
        # long burn = (4/16)/0.1 = 2.5 < 8 even though short burn is 10.

    def test_empty_windows_burn_nothing(self):
        engine = SLOEngine(self.SLOS, rules=(self.RULE,))
        empty = WindowAggregate()
        assert engine.evaluate(0, 100.0, [("fleet", -1, empty)]) == []

    def test_unique_names_enforced(self):
        with pytest.raises(ConfigurationError):
            SLOEngine((self.SLOS[0], self.SLOS[0]))
        with pytest.raises(ConfigurationError):
            SLOEngine(self.SLOS, rules=(self.RULE, self.RULE))

    def test_rule_shape_validated(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("bad", long_windows=1, short_windows=2, threshold=1.0)


class TestLiveTelemetry:
    def _telemetry(self, tracer=NULL_TRACER):
        config = TelemetryConfig(
            window_us=1_000.0,
            slos=(SLO("latency", latency_target_us=1.0, error_budget=0.01),),
            rules=(BurnRateRule("page", 1, 1, 1.0),),
        )
        return LiveTelemetry(config, n_shards=1, tracer=tracer)

    def test_finalize_closes_through_last_observation(self):
        tel = self._telemetry()
        tel.observe(0, _job(finish_us=2_500.0))
        tel.finalize([0])
        assert tel.windows_closed == 3  # windows 0,1,2 cover ts 2500
        tel.finalize([0])  # idempotent
        assert tel.windows_closed == 3

    def test_alerts_recorded_and_traced(self):
        tracer = SpanTracer()
        tel = self._telemetry(tracer=tracer)
        tel.observe(0, _job(finish_us=500.0))  # over the 1us target
        tel.close_window([0])
        states = [a["state"] for a in tel.alerts]
        assert states == ["fire", "fire"]  # fleet scope + shard scope
        instants = [e for e in tracer.events if e.cat == "alert"]
        assert [e.name for e in instants] == ["slo.fire", "slo.fire"]
        assert all(e.ts_us == 1_000.0 for e in instants)

    def test_disabled_tracer_emits_no_events(self):
        tel = self._telemetry()
        tel.observe(0, _job(finish_us=500.0))
        tel.close_window([0])
        assert tel.alerts  # alerts still recorded
        assert len(NULL_TRACER) == 0


class TestKindDivergence:
    ROLLUP_A = [
        {"kind": "rollup", "window": 0, "scope": "fleet", "shard": -1,
         "t1_us": 100.0, "completed": 3},
        {"kind": "alert", "window": 0, "scope": "fleet", "shard": -1,
         "t_us": 100.0, "state": "fire"},
        {"kind": "rollup", "window": 1, "scope": "fleet", "shard": -1,
         "t1_us": 200.0, "completed": 5},
    ]

    def test_kind_filter_localises_rollup_divergence(self):
        b = [dict(r) for r in self.ROLLUP_A]
        b[2] = dict(b[2], completed=6)
        div = first_divergence(self.ROLLUP_A, b, kind="rollup")
        assert div.index == 1  # second *rollup* record, alert filtered out
        text = div.describe()
        assert "rollup[window=1" in text and "completed" in text

    def test_kind_filter_ignores_other_kinds(self):
        b = [dict(r) for r in self.ROLLUP_A]
        b[1] = dict(b[1], state="resolve")  # alert differs
        assert first_divergence(self.ROLLUP_A, b, kind="rollup") is None
        div = first_divergence(self.ROLLUP_A, b, kind="alert")
        assert div is not None and div.index == 0

    def test_prefix_divergence_names_window(self):
        div = first_divergence(self.ROLLUP_A, self.ROLLUP_A[:2], kind="rollup")
        assert "log B ends" in div.describe()
        assert "window 1" in div.describe()


class TestFlowValidation:
    def _trace(self, events):
        return {"traceEvents": events}

    def _slice(self, ts, dur=10.0, pid=0, tid=1):
        return {"name": "job.route", "cat": "serve", "ph": "X", "ts": ts,
                "dur": dur, "pid": pid, "tid": tid, "args": {}}

    def _flow(self, ph, ts, flow_id="abc", pid=0, tid=1):
        return {"name": "job", "cat": "serve", "ph": ph, "ts": ts,
                "id": flow_id, "bp": "e", "pid": pid, "tid": tid, "args": {}}

    def test_well_formed_flow_passes(self):
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("s", 0.0),
            self._slice(5.0), self._flow("t", 5.0),
            self._slice(20.0), self._flow("f", 20.0),
        ]))
        assert errors == []

    def test_missing_finish_flagged(self):
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("s", 0.0),
        ]))
        assert any("0 'f' events" in e for e in errors)

    def test_duplicate_start_flagged(self):
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("s", 0.0), self._flow("s", 1.0),
            self._flow("f", 2.0),
        ]))
        assert any("2 's' events" in e for e in errors)

    def test_start_after_finish_flagged(self):
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("f", 0.0),
            self._slice(5.0), self._flow("s", 5.0),
        ]))
        assert any("later than 'f'" in e for e in errors)

    def test_step_outside_span_flagged(self):
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("s", 0.0),
            self._slice(5.0), self._flow("f", 5.0),
            self._slice(9.0), self._flow("t", 9.0),
        ]))
        assert any("outside its" in e for e in errors)

    def test_unenclosed_flow_event_flagged(self):
        errors = validate_chrome_trace(self._trace([
            self._flow("s", 0.0), self._flow("f", 1.0),
        ]))
        assert sum("not enclosed" in e for e in errors) == 2

    def test_missing_flow_id_flagged(self):
        bad = self._flow("s", 0.0)
        bad["id"] = ""
        errors = validate_chrome_trace(self._trace([self._slice(0.0), bad]))
        assert any("non-empty 'id'" in e for e in errors)

    def test_flows_scoped_by_category(self):
        # Same id in different categories are different flows.
        errors = validate_chrome_trace(self._trace([
            self._slice(0.0), self._flow("s", 0.0),
            {**self._flow("f", 1.0), "cat": "other"},
            self._slice(1.0),
        ]))
        assert any("0 'f' events" in e for e in errors)


class TestSpanTracerFlow:
    def test_flow_rejects_unknown_phase(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="flow phase"):
            tracer.flow("job", rank=0, ph="X", flow_id="abc", ts_us=0.0)

    def test_null_tracer_flow_and_complete_are_noops(self):
        NULL_TRACER.complete("job.route", rank=0, ts_us=0.0)
        NULL_TRACER.flow("job", rank=0, ph="s", flow_id="abc", ts_us=0.0)
        assert len(NULL_TRACER) == 0


class TestJourney:
    def _events(self, tracer):
        from repro.obs.jsonl import event_record

        return [event_record(e) for e in tracer.events]

    def _traced_run(self):
        obs = Observability.with_tracing()
        from repro.serve.server import ServeConfig, SimServer

        server = SimServer(ServeConfig(workers=1), obs=obs)
        server.submit(JobSpec(tenant="t0", ticks=10), at_us=100.0)
        server.run()
        return self._events(obs.tracer)

    def test_standalone_serve_journey(self):
        records = self._traced_run()
        (trace_id,) = find_traces(records, job=0)
        journey = reconstruct_journey(records, trace_id)
        assert journey.stages == ["queue", "batch", "run", "done"]
        assert journey.tenant == "t0" and journey.job == 0
        assert trace_id in journey.format()

    def test_find_traces_selectors(self):
        records = self._traced_run()
        assert find_traces(records, tenant="t0")
        assert find_traces(records, tenant="nope") == []
        assert find_traces(records, job=99) == []

    def test_broken_chain_raises(self):
        records = self._traced_run()
        (trace_id,) = find_traces(records, job=0)
        # Drop the 'batch' stage: the run stage's parent link breaks.
        broken = [r for r in records if r.get("name") != "job.batch"]
        with pytest.raises(AnalysisError, match="broken causal chain"):
            reconstruct_journey(broken, trace_id)

    def test_unknown_trace_raises(self):
        with pytest.raises(AnalysisError, match="no stage events"):
            reconstruct_journey([], "deadbeefdeadbeef")

    def test_journey_roundtrips_through_jsonl(self, tmp_path):
        obs = Observability.with_tracing()
        from repro.serve.server import ServeConfig, SimServer

        server = SimServer(ServeConfig(workers=1), obs=obs)
        server.submit(JobSpec(tenant="t0", ticks=10), at_us=0.0)
        server.run()
        path = write_event_log(obs.tracer, tmp_path / "events.jsonl")
        records = read_event_log(path)
        (trace_id,) = find_traces(records, job=0)
        journey = reconstruct_journey(records, trace_id)
        assert journey.stages[-1] == "done"
        assert journey.steps[0].rank == -1  # standalone service track


class TestHistogramEdgeCases:
    def test_cumulative_on_rank_with_no_observations(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0, 5.0)
        # Rank 7 never observed anything: all-zero cumulative, +Inf last.
        assert hist.cumulative(7) == [(1.0, 0), (10.0, 0), (float("inf"), 0)]
        assert hist.count(7) == 0
