"""Unit tests for run configuration, run results, and the error taxonomy."""

import pytest

from repro import errors
from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.errors import (
    CheckpointError,
    CommunicationError,
    CompilationError,
    ConfigurationError,
    ReproError,
    WiringError,
)
from repro.runtime.machine import BLUE_GENE_Q


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            WiringError,
            CommunicationError,
            CompilationError,
            CheckpointError,
        ):
            assert issubclass(exc, ReproError)

    def test_catchable_at_package_level(self):
        with pytest.raises(ReproError):
            raise WiringError("x")

    def test_module_exports_match(self):
        public = {n for n in dir(errors) if n.endswith("Error")}
        assert {
            "ReproError",
            "ConfigurationError",
            "WiringError",
            "CommunicationError",
            "CompilationError",
            "CheckpointError",
        } <= public


class TestCompassConfig:
    def test_defaults(self):
        cfg = CompassConfig()
        assert cfg.n_processes == 1
        assert cfg.machine is None
        assert not cfg.record_spikes

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CompassConfig(n_processes=0)
        with pytest.raises(ConfigurationError):
            CompassConfig(threads_per_process=0)

    def test_for_blue_gene_q_standard_geometry(self):
        cfg = CompassConfig.for_blue_gene_q(nodes=4)
        assert cfg.n_processes == 4
        assert cfg.threads_per_process == 32
        assert cfg.machine.machine is BLUE_GENE_Q
        assert cfg.machine.racks == pytest.approx(4 / 1024)

    def test_for_blue_gene_q_multi_proc(self):
        cfg = CompassConfig.for_blue_gene_q(
            nodes=2, procs_per_node=2, threads_per_proc=8
        )
        assert cfg.n_processes == 4

    def test_frozen(self):
        cfg = CompassConfig()
        with pytest.raises(AttributeError):
            cfg.n_processes = 5


class TestRunResult:
    @pytest.fixture(scope="class")
    def result(self):
        net = build_quickstart_network()
        sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        return sim.run(50), net

    def test_totals_consistent(self, result):
        r, net = result
        assert r.total_spikes == r.metrics.total_fired
        assert r.total_spikes == r.spikes.count

    def test_mean_rate_formula(self, result):
        r, net = result
        expected = r.total_spikes / net.n_neurons / 0.05
        assert r.mean_rate_hz == pytest.approx(expected)

    def test_summary_keys(self, result):
        r, _ = result
        s = r.summary()
        assert s["ticks"] == 50
        assert s["ranks"] == 2
        assert s["total_fired"] == r.total_spikes

    def test_simulated_times_zero_without_machine(self, result):
        r, _ = result
        assert r.simulated_times.total == 0.0
