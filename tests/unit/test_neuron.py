"""Unit tests for the scalar reference neuron — the executable spec."""

import pytest

from repro.arch.params import NeuronParameters, ResetMode
from repro.arch.neuron import ReferenceNeuron


def make(params: NeuronParameters, seed: int = 1) -> ReferenceNeuron:
    return ReferenceNeuron(params, seed)


class TestDeterministicIntegration:
    def test_single_event_below_threshold(self):
        n = make(NeuronParameters(weights=(1, 0, 0, 0), threshold=3))
        assert n.tick((1, 0, 0, 0)) is False
        assert n.potential == 1

    def test_fires_at_threshold(self):
        n = make(NeuronParameters(weights=(1, 0, 0, 0), threshold=2))
        assert n.tick((2, 0, 0, 0)) is True

    def test_fires_above_threshold(self):
        n = make(NeuronParameters(weights=(3, 0, 0, 0), threshold=2))
        assert n.tick((1, 0, 0, 0)) is True

    def test_weights_by_axon_type(self):
        n = make(NeuronParameters(weights=(1, 2, 3, 4), threshold=100))
        n.tick((1, 1, 1, 1))
        assert n.potential == 10

    def test_negative_weight_inhibits(self):
        n = make(NeuronParameters(weights=(2, -1, 0, 0), threshold=10))
        n.tick((2, 3, 0, 0))
        assert n.potential == 1

    def test_accumulates_across_ticks(self):
        n = make(NeuronParameters(weights=(1, 0, 0, 0), threshold=5))
        raster = n.run([(1, 0, 0, 0)] * 5)
        assert raster == [False] * 4 + [True]


class TestLeak:
    def test_deterministic_positive_leak_fires_alone(self):
        n = make(NeuronParameters(weights=(0, 0, 0, 0), leak=1, threshold=3))
        raster = n.run([(0, 0, 0, 0)] * 3)
        assert raster == [False, False, True]

    def test_negative_leak_decays(self):
        n = make(NeuronParameters(weights=(5, 0, 0, 0), leak=-1, threshold=100))
        n.tick((1, 0, 0, 0))
        assert n.potential == 4
        n.tick((0, 0, 0, 0))
        assert n.potential == 3

    def test_leak_applied_after_integration(self):
        # threshold crossing depends on leak landing the same tick
        n = make(NeuronParameters(weights=(1, 0, 0, 0), leak=1, threshold=2))
        assert n.tick((1, 0, 0, 0)) is True


class TestResetAndFloor:
    def test_zero_reset(self):
        n = make(NeuronParameters(weights=(5, 0, 0, 0), threshold=3))
        n.tick((1, 0, 0, 0))
        assert n.potential == 0

    def test_linear_reset_keeps_residue(self):
        n = make(
            NeuronParameters(
                weights=(5, 0, 0, 0), threshold=3, reset_mode=ResetMode.LINEAR
            )
        )
        n.tick((1, 0, 0, 0))
        assert n.potential == 2

    def test_custom_reset_value(self):
        n = make(
            NeuronParameters(weights=(5, 0, 0, 0), threshold=3, reset_value=-2, floor=-10)
        )
        n.tick((1, 0, 0, 0))
        assert n.potential == -2

    def test_floor_saturation(self):
        n = make(NeuronParameters(weights=(0, -10, 0, 0), threshold=5, floor=-15))
        n.tick((0, 2, 0, 0))
        assert n.potential == -15
        n.tick((0, 2, 0, 0))
        assert n.potential == -15


class TestStochastic:
    def test_stochastic_weight_adds_sign_only(self):
        p = NeuronParameters(
            weights=(255, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=1000,
        )
        n = make(p)
        n.tick((10, 0, 0, 0))
        # 255/256 hit probability: nearly all events land, each adds +1.
        assert 0 < n.potential <= 10

    def test_stochastic_zero_magnitude_never_fires(self):
        p = NeuronParameters(
            weights=(0, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=1,
        )
        n = make(p)
        assert n.run([(5, 0, 0, 0)] * 50) == [False] * 50

    def test_stochastic_negative_weight_subtracts(self):
        p = NeuronParameters(
            weights=(-255, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=10,
            floor=-(2**17),
        )
        n = make(p)
        n.tick((20, 0, 0, 0))
        assert n.potential < 0

    def test_stochastic_leak_rate(self):
        p = NeuronParameters(weights=(0, 0, 0, 0), leak=128, stochastic_leak=True, threshold=10**6)
        n = make(p, seed=3)
        n.run([(0, 0, 0, 0)] * 2000)
        # leak hits with p=0.5: potential should be near 1000
        assert 850 < n.potential < 1150

    def test_same_seed_reproduces(self):
        p = NeuronParameters(
            weights=(128, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=3,
        )
        r1 = make(p, seed=9).run([(2, 0, 0, 0)] * 100)
        r2 = make(p, seed=9).run([(2, 0, 0, 0)] * 100)
        assert r1 == r2

    def test_different_seed_differs(self):
        p = NeuronParameters(
            weights=(128, 0, 0, 0),
            stochastic_weights=(True, False, False, False),
            threshold=3,
        )
        r1 = make(p, seed=9).run([(2, 0, 0, 0)] * 100)
        r2 = make(p, seed=10).run([(2, 0, 0, 0)] * 100)
        assert r1 != r2
