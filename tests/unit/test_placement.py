"""Unit tests for torus-aware region placement."""

import numpy as np
import pytest

from repro.compiler.placement import (
    optimize_region_order,
    placement_cost,
    placement_improvement,
)
from repro.runtime.torus import TorusTopology


def two_cluster_flow(n: int = 8, heavy: float = 100.0, light: float = 1.0):
    """Two chatty cliques with light cross traffic, interleaved in index
    order (the worst case for the default ordering)."""
    flow = np.full((n, n), light)
    np.fill_diagonal(flow, 0.0)
    evens = list(range(0, n, 2))
    odds = list(range(1, n, 2))
    for group in (evens, odds):
        for a in group:
            for b in group:
                if a != b:
                    flow[a, b] = heavy
    return flow


class TestCost:
    def test_zero_flow_zero_cost(self):
        torus = TorusTopology((4, 4))
        cost = placement_cost(
            np.zeros((3, 3)), np.ones(3), np.arange(3), torus
        )
        assert cost.byte_hops == 0.0

    def test_cost_scales_with_flow(self):
        torus = TorusTopology((8, 8))
        flow = two_cluster_flow()
        procs = np.ones(8)
        base = placement_cost(flow, procs, np.arange(8), torus)
        double = placement_cost(2 * flow, procs, np.arange(8), torus)
        assert double.byte_hops == pytest.approx(2 * base.byte_hops)

    def test_order_permutes_cost(self):
        torus = TorusTopology((16, 4))
        flow = two_cluster_flow()
        procs = np.ones(8)
        a = placement_cost(flow, procs, np.arange(8), torus)
        clustered = np.array([0, 2, 4, 6, 1, 3, 5, 7])
        b = placement_cost(flow, procs, clustered, torus)
        assert b.byte_hops < a.byte_hops


class TestOptimizer:
    def test_returns_permutation(self):
        order = optimize_region_order(two_cluster_flow())
        assert sorted(order) == list(range(8))

    def test_groups_cliques(self):
        order = list(optimize_region_order(two_cluster_flow(n=10)))
        parity = [i % 2 for i in order]
        # Cliques (even/odd indices) should come out contiguously: at most
        # one parity change along the order.
        changes = sum(1 for a, b in zip(parity, parity[1:]) if a != b)
        assert changes <= 1

    def test_improvement_on_adversarial_layout(self):
        flow = two_cluster_flow(n=12)
        default, optimised = placement_improvement(
            flow, np.ones(12), n_nodes=144, torus_dims=2
        )
        assert optimised.byte_hops < default.byte_hops

    def test_macaque_flow_improves_or_matches(self):
        from repro.cocomac.model import build_macaque_coreobject

        model = build_macaque_coreobject(1024, seed=0)
        flow = model.connection_counts.astype(float)
        procs = np.maximum(model.cores, 1)
        default, optimised = placement_improvement(
            flow, procs, n_nodes=1024, torus_dims=5
        )
        assert optimised.byte_hops <= default.byte_hops * 1.02
        assert optimised.mean_hops > 0
