"""Unit tests for the deterministic span tracer (repro.obs.span)."""

import pytest

from repro.obs import (
    NULL_TRACER,
    PHASES,
    SEQ_DT_US,
    TICK_US,
    Observability,
    SpanTracer,
)


class TestWindows:
    def test_phase_windows_partition_the_tick(self):
        assert PHASES["tick"] == (0.0, 1.0)
        # synapse + neuron tile the compute window exactly.
        assert PHASES["synapse"][1] == PHASES["neuron"][0]
        assert PHASES["neuron"][1] == PHASES["compute"][1]
        assert PHASES["sync"][0] == PHASES["compute"][1]
        assert PHASES["network"][1] == PHASES["tick"][1]

    def test_window_us_scales_with_tick(self):
        tr = SpanTracer()
        t0, t1 = tr.window_us("sync", tick=3)
        assert t0 == 3 * TICK_US + PHASES["sync"][0] * TICK_US
        assert t1 == 3 * TICK_US + PHASES["sync"][1] * TICK_US

    def test_instant_sequencing_and_clamp(self):
        tr = SpanTracer()
        tr.begin_tick(0)
        tr.instant("a", rank=0, phase="network")
        tr.instant("b", rank=0, phase="network")
        a, b = tr.events
        assert b.ts_us - a.ts_us == pytest.approx(SEQ_DT_US)
        # Runaway sequences clamp inside the window instead of escaping it.
        tr._seq = 10**9
        tr.instant("c", rank=0, phase="network")
        _, t1 = tr.window_us("network", 0)
        assert tr.events[-1].ts_us == t1 - SEQ_DT_US


class TestSpans:
    def test_span_covers_phase_window(self):
        tr = SpanTracer()
        tr.begin_tick(2)
        tr.span("compute", rank=1, phase="compute", fired=7)
        (ev,) = tr.events
        t0, t1 = tr.window_us("compute", 2)
        assert (ev.ph, ev.ts_us, ev.dur_us) == ("X", t0, t1 - t0)
        assert ev.tick == 2
        assert dict(ev.args) == {"fired": 7}

    def test_nesting_is_per_track(self):
        tr = SpanTracer()
        tr.begin_tick(0)
        tr.begin("outer", rank=0)
        tr.begin("inner", rank=0)
        tr.begin("other", rank=1)
        tr.end(rank=0)  # closes inner
        tr.end(rank=1)  # closes other
        tr.end(rank=0)  # closes outer
        names = [(e.ph, e.name, e.rank) for e in tr.events]
        assert names == [
            ("B", "outer", 0), ("B", "inner", 0), ("B", "other", 1),
            ("E", "inner", 0), ("E", "other", 1), ("E", "outer", 0),
        ]

    def test_end_without_begin_raises(self):
        tr = SpanTracer()
        with pytest.raises(ValueError, match="no open span"):
            tr.end(rank=0)

    def test_args_are_sorted_and_hashable(self):
        tr = SpanTracer()
        tr.instant("x", rank=0, zulu=1, alpha=2)
        assert tr.events[0].args == (("alpha", 2), ("zulu", 1))
        hash(tr.events[0])  # frozen dataclass stays hashable


class TestTickSummary:
    def test_fixed_timestamp_is_sequence_independent(self):
        """The partition-invariance anchor: the summary timestamp must not
        depend on how many events preceded it in the tick."""
        quiet, noisy = SpanTracer(), SpanTracer()
        for tr, chatter in ((quiet, 0), (noisy, 50)):
            tr.begin_tick(4)
            for i in range(chatter):
                tr.instant("msg", rank=i % 3)
            tr.tick_summary(4, fired=9)
        assert quiet.events[-1] == noisy.events[-1]
        assert quiet.events[-1].ts_us == 5 * TICK_US - SEQ_DT_US
        assert quiet.events[-1].rank == -1

    def test_count_filters(self):
        tr = SpanTracer()
        tr.begin_tick(0)
        tr.span("compute", rank=0, phase="compute")
        tr.instant("send", rank=0)
        tr.instant("send", rank=1)
        assert tr.count("send") == 2
        assert tr.count(ph="X") == 1
        assert tr.count("send", ph="i") == 2
        assert len(tr) == 3


class TestNullTracer:
    def test_all_methods_are_noops(self):
        NULL_TRACER.begin_tick(3)
        NULL_TRACER.span("a", rank=0)
        NULL_TRACER.instant("b", rank=0)
        NULL_TRACER.begin("c", rank=0)
        NULL_TRACER.end(rank=0)
        NULL_TRACER.tick_summary(1, fired=0)
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.count() == 0
        assert NULL_TRACER.events == ()

    def test_observability_defaults(self):
        off = Observability.off()
        assert off.tracer is NULL_TRACER
        assert not off.tracing
        on = Observability.with_tracing()
        assert on.tracing
        assert isinstance(on.tracer, SpanTracer)


class TestDeterminism:
    def test_identical_call_sequences_identical_events(self):
        def drive(tr):
            for tick in range(3):
                tr.begin_tick(tick)
                tr.span("compute", rank=0, phase="compute", fired=tick)
                tr.instant("send", rank=0, dst=1, nbytes=8)
                tr.span("sync", rank=0, phase="sync")
                tr.tick_summary(tick, fired=tick)

        a, b = SpanTracer(), SpanTracer()
        drive(a)
        drive(b)
        assert a.events == b.events
