"""Unit tests for the spiking reservoir (spatio-temporal features)."""

import numpy as np
import pytest

from repro.apps.reservoir import (
    RidgeReadout,
    SpikingReservoir,
    lsm_experiment,
    temporal_pattern,
)


class TestPatterns:
    def test_kinds_differ(self):
        r = temporal_pattern("rising", 16, 30, seed=1)
        f = temporal_pattern("falling", 16, 30, seed=1)
        assert r.shape == f.shape == (30, 16)
        assert not np.array_equal(r, f)

    def test_rising_moves_centre_of_mass(self):
        stream = temporal_pattern("rising", 16, 40, seed=2)
        lanes = np.arange(16)
        early = stream[:10].sum(axis=0)
        late = stream[-10:].sum(axis=0)
        if early.sum() and late.sum():
            com_early = (early * lanes).sum() / early.sum()
            com_late = (late * lanes).sum() / late.sum()
            assert com_late > com_early

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            temporal_pattern("sideways", 16, 10)


class TestReservoir:
    @pytest.fixture(scope="class")
    def reservoir(self):
        return SpikingReservoir(seed=4)

    def test_states_shape(self, reservoir):
        stream = temporal_pattern("steady", reservoir.n_inputs, 30, seed=0)
        feats = reservoir.states(stream, bin_width=5)
        assert feats.shape == ((30 + 2) // 5 * 256,)

    def test_input_drives_activity(self, reservoir):
        stream = temporal_pattern("steady", reservoir.n_inputs, 30, seed=1)
        active = reservoir.states(stream)
        silent = reservoir.states(np.zeros_like(stream))
        assert active.sum() > silent.sum()

    def test_deterministic(self, reservoir):
        stream = temporal_pattern("rising", reservoir.n_inputs, 20, seed=3)
        a = reservoir.states(stream)
        b = reservoir.states(stream)
        assert np.array_equal(a, b)

    def test_different_patterns_different_states(self, reservoir):
        a = reservoir.states(temporal_pattern("rising", 16, 30, seed=5))
        b = reservoir.states(temporal_pattern("falling", 16, 30, seed=5))
        assert not np.array_equal(a, b)

    def test_rejects_wrong_width(self, reservoir):
        with pytest.raises(ValueError):
            reservoir.states(np.zeros((10, 7), dtype=bool))

    def test_rejects_bad_input_count(self):
        with pytest.raises(ValueError):
            SpikingReservoir(n_inputs=0)


class TestReadout:
    def test_fits_separable_data(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(0, 1, size=(20, 8))
        x1 = rng.normal(4, 1, size=(20, 8))
        x = np.vstack([x0, x1])
        y = np.array([0] * 20 + [1] * 20)
        readout = RidgeReadout().fit(x, y)
        assert (readout.predict(x) == y).mean() > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RidgeReadout().predict(np.zeros((1, 4)))


class TestEndToEnd:
    def test_lsm_separates_temporal_patterns(self):
        accuracy = lsm_experiment(
            train_per_class=4, test_per_class=2, ticks=24, seed=1
        )
        # Three classes, chance = 1/3; the liquid must do much better.
        assert accuracy >= 0.66
