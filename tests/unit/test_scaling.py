"""Unit tests for the weak/strong/thread scaling drivers (shape checks).

Absolute anchors are checked in tests/integration/test_calibration_anchors;
here we verify the structural properties that make the curves *curves*.
"""

import pytest

from repro.perf.strong_scaling import strong_scaling_series
from repro.perf.thread_scaling import procs_threads_tradeoff, thread_scaling_series
from repro.perf.weak_scaling import weak_scaling_point, weak_scaling_series

# Scaled-down sweeps keep the unit tests fast; the model is analytic so
# the structure is scale-independent.
SMALL_RACKS = (1, 2, 4)


@pytest.fixture(scope="module")
def weak():
    return weak_scaling_series(racks=SMALL_RACKS, cores_per_node=2048, ticks=100)


@pytest.fixture(scope="module")
def strong():
    return strong_scaling_series(
        total_cores=2 * 2**20, racks=SMALL_RACKS, ticks=100
    )


class TestWeakScaling:
    def test_total_time_near_constant(self, weak):
        totals = [p.times.total for p in weak]
        assert max(totals) / min(totals) < 1.35

    def test_compute_phases_constant(self, weak):
        syn = [p.times.synapse for p in weak]
        neu = [p.times.neuron for p in weak]
        assert max(syn) / min(syn) < 1.05
        assert max(neu) / min(neu) < 1.05

    def test_network_phase_grows(self, weak):
        nets = [p.times.network for p in weak]
        assert all(b > a for a, b in zip(nets, nets[1:]))

    def test_spikes_scale_with_model(self, weak):
        spikes = [p.spikes_per_tick for p in weak]
        assert spikes[1] == pytest.approx(2 * spikes[0], rel=0.05)

    def test_messages_sublinear(self, weak):
        msgs = [p.messages_per_tick for p in weak]
        assert msgs[2] > msgs[0]
        per_proc = [m / p.nodes for m, p in zip(msgs, weak)]
        # messages per process grow less than linearly with system size
        assert per_proc[2] < 4 * per_proc[0]

    def test_point_metadata(self, weak):
        p = weak[0]
        assert p.cpus == p.nodes * 16
        assert p.neurons == p.cores * 256
        assert p.slowdown == pytest.approx(p.times.total / 0.1)


class TestStrongScaling:
    def test_monotone_speedup(self, strong):
        speeds = [p.speedup for p in strong]
        assert speeds[0] == 1.0
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_sublinear_at_scale(self, strong):
        # Perfect scaling is inhibited by the communication-intense phases.
        assert strong[-1].speedup < SMALL_RACKS[-1] / SMALL_RACKS[0] * 1.6

    def test_cores_per_node_halves(self, strong):
        assert strong[1].cores_per_node == pytest.approx(
            strong[0].cores_per_node / 2
        )


class TestThreadScaling:
    @pytest.fixture(scope="class")
    def series(self):
        return thread_scaling_series(
            total_cores=2 * 2**20, nodes=512, threads=(1, 2, 4, 8, 16, 32), ticks=100
        )

    def test_baseline_is_one(self, series):
        assert series[0].speedup_total == 1.0

    def test_speedup_monotone(self, series):
        speeds = [p.speedup_total for p in series]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_not_perfect(self, series):
        # §VI-D: a serial critical section prevents perfect scaling.
        assert series[-1].speedup_total < 32

    def test_compute_scales_better_than_network(self, series):
        last = series[-1]
        assert last.speedup_neuron > last.speedup_network


class TestTradeoff:
    def test_configs_near_equal(self):
        points = procs_threads_tradeoff(
            total_cores=2 * 2**20, nodes=512, ticks=100
        )
        totals = [p.times.total for p in points]
        assert max(totals) / min(totals) < 1.5

    def test_all_configs_present(self):
        points = procs_threads_tradeoff(
            total_cores=2 * 2**20, nodes=512, ticks=100
        )
        assert [(p.procs_per_node, p.threads) for p in points] == [
            (1, 32), (2, 16), (4, 8), (8, 4), (16, 2),
        ]


def test_weak_point_headline_consistency():
    p = weak_scaling_point(nodes=256, cores_per_node=2048, ticks=100)
    assert p.mean_rate_hz == pytest.approx(8.1)
