"""Unit tests for the cost model."""

import math

import pytest

from repro.runtime.machine import BLUE_GENE_P, BLUE_GENE_Q
from repro.runtime.timing import CostModel, scale

COST = BLUE_GENE_Q.cost


class TestPhaseCosts:
    def test_synapse_scales_with_axons(self):
        assert COST.synapse_time(2000, 8) == pytest.approx(2 * COST.synapse_time(1000, 8))

    def test_synapse_divided_by_threads(self):
        assert COST.synapse_time(1000, 10) == pytest.approx(
            COST.synapse_time(1000, 1) / 10
        )

    def test_neuron_includes_sends_serially(self):
        base = COST.neuron_time(1000, 8)
        with_sends = COST.neuron_time(1000, 8, messages_sent=10)
        assert with_sends == pytest.approx(base + 10 * COST.msg_overhead)

    def test_reduce_scatter_linear_in_ranks(self):
        t1 = COST.reduce_scatter_time(1024)
        t2 = COST.reduce_scatter_time(2048)
        assert t2 - t1 == pytest.approx(1024 * COST.rs_beta_per_rank)

    def test_barrier_logarithmic(self):
        t1 = COST.barrier_time(1024)
        t2 = COST.barrier_time(2048)
        assert t2 - t1 == pytest.approx(COST.barrier_beta_log)

    def test_barrier_cheaper_than_reduce_scatter_at_scale(self):
        # §VII-A: the PGAS barrier replaces a collective that scales with
        # communicator size.
        assert COST.barrier_time(16384) < COST.reduce_scatter_time(16384) / 10

    def test_wire_time(self):
        assert COST.wire_time(2e9) == pytest.approx(2e9 / COST.node_bandwidth)


class TestNetworkPhase:
    def test_overlap_hides_local_delivery(self):
        # When local delivery is cheaper than the Reduce-Scatter it is free.
        with_few = COST.network_time_mpi(4096, 100, 0, 0, 0, 32)
        with_none = COST.network_time_mpi(4096, 0, 0, 0, 0, 32)
        assert with_few == pytest.approx(with_none)

    def test_overlap_ablation_serialises(self):
        overlap = COST.network_time_mpi(4096, 10000, 0, 0, 0, 32, overlap=True)
        serial = COST.network_time_mpi(4096, 10000, 0, 0, 0, 32, overlap=False)
        assert serial > overlap

    def test_critical_section_serial_in_messages(self):
        a = COST.network_time_mpi(64, 0, 100, 0, 0, 32)
        b = COST.network_time_mpi(64, 0, 200, 0, 0, 32)
        assert b - a == pytest.approx(100 * COST.c_crit)

    def test_pgas_has_no_critical_section(self):
        mpi = COST.network_time_mpi(4096, 0, 1000, 1000, 20000, 4)
        pgas = COST.network_time_pgas(4096, 0, 1000, 1000, 20000, 4)
        assert pgas < mpi


class TestMemoryFactor:
    def test_in_cache_is_one(self):
        assert COST.memory_factor(COST.cache_bytes / 2) == 1.0

    def test_saturates_at_dram_factor(self):
        assert COST.memory_factor(COST.cache_bytes * 100) == pytest.approx(
            COST.dram_factor
        )

    def test_monotone(self):
        sizes = [COST.cache_bytes * f for f in (0.5, 1.0, 1.5, 2.0, 4.0, 64.0)]
        factors = [COST.memory_factor(s) for s in sizes]
        assert all(b >= a for a, b in zip(factors, factors[1:]))


class TestScale:
    def test_scale_doubles_costs(self):
        doubled = scale(COST, 2.0)
        assert doubled.c_neuron == pytest.approx(2 * COST.c_neuron)
        assert doubled.node_bandwidth == pytest.approx(COST.node_bandwidth / 2)

    def test_machines_have_distinct_calibrations(self):
        assert BLUE_GENE_P.cost != BLUE_GENE_Q.cost
