"""Unit tests for neuron/core parameter objects."""

import numpy as np
import pytest

from repro.arch.params import (
    DELAY_SLOTS,
    MAX_DELAY,
    NUM_AXON_TYPES,
    NUM_AXONS,
    NUM_NEURONS,
    CoreParameters,
    NeuronArrayParameters,
    NeuronParameters,
    ResetMode,
)
from repro.errors import ConfigurationError


class TestGeometry:
    def test_paper_core_geometry(self):
        # §II: 256 axons, 256 neurons, 256x256 crossbar, 4 axon types.
        assert NUM_AXONS == 256
        assert NUM_NEURONS == 256
        assert NUM_AXON_TYPES == 4
        assert DELAY_SLOTS == MAX_DELAY + 1


class TestNeuronParameters:
    def test_defaults_valid(self):
        p = NeuronParameters()
        assert p.threshold == 1
        assert p.reset_mode == ResetMode.ZERO

    def test_rejects_bad_weight_count(self):
        with pytest.raises(ConfigurationError):
            NeuronParameters(weights=(1, 2, 3))

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ConfigurationError):
            NeuronParameters(weights=(300, 0, 0, 0))
        with pytest.raises(ConfigurationError):
            NeuronParameters(weights=(-256, 0, 0, 0))

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            NeuronParameters(threshold=0)

    def test_rejects_positive_floor(self):
        with pytest.raises(ConfigurationError):
            NeuronParameters(floor=1)

    def test_rejects_reset_below_floor(self):
        with pytest.raises(ConfigurationError):
            NeuronParameters(floor=-4, reset_value=-5)

    def test_frozen(self):
        p = NeuronParameters()
        with pytest.raises(AttributeError):
            p.threshold = 5


class TestCoreParameters:
    def test_defaults(self):
        c = CoreParameters()
        assert c.num_axons == NUM_AXONS

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CoreParameters(num_axons=0)


class TestNeuronArrayParameters:
    def test_empty_shapes(self):
        block = NeuronArrayParameters.empty(3, 16)
        assert block.shape == (3, 16)
        assert block.weights.shape == (3, 16, NUM_AXON_TYPES)

    def test_set_get_round_trip(self):
        block = NeuronArrayParameters.empty(2, 8)
        p = NeuronParameters(
            weights=(5, -3, 0, 7),
            stochastic_weights=(True, False, True, False),
            leak=-2,
            stochastic_leak=True,
            threshold=9,
            reset_mode=ResetMode.LINEAR,
            reset_value=0,
            floor=-100,
        )
        block.set_neuron(1, 3, p)
        assert block.get_neuron(1, 3) == p

    def test_homogeneous_broadcast(self):
        p = NeuronParameters(threshold=4)
        block = NeuronArrayParameters.homogeneous(p, 3, 8)
        assert (block.threshold == 4).all()

    def test_slice_cores_copies(self):
        block = NeuronArrayParameters.empty(4, 8)
        sub = block.slice_cores(slice(1, 3))
        sub.threshold[...] = 99
        assert (block.threshold == 1).all()
        assert sub.shape == (2, 8)

    def test_default_neuron_is_relay_like(self):
        block = NeuronArrayParameters.empty(1, 4)
        assert np.array_equal(block.weights[0, 0], [1, 1, 1, 1])
