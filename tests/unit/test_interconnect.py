"""Unit tests for the interconnect feasibility analysis."""

import pytest

from repro.cocomac.model import build_macaque_coreobject
from repro.perf.interconnect import interconnect_load
from repro.perf.traffic import CocomacTraffic
from repro.runtime.machine import BLUE_GENE_Q


@pytest.fixture(scope="module")
def summary():
    model = build_macaque_coreobject(16384 * 1024, seed=0)
    return CocomacTraffic(model).summary(1024)


class TestInterconnectLoad:
    def test_paper_scale_is_feasible(self):
        """§VI-B: even the 256M-core configuration is bandwidth-feasible
        — 0.44 GB/tick against a 5-D torus of 2 GB/s links."""
        model = build_macaque_coreobject(16384 * 16384, seed=0)
        ts = CocomacTraffic(model).summary(16384)
        load = interconnect_load(ts, BLUE_GENE_Q, 16384)
        # Slower than real time is fine; feasibility here asks whether the
        # traffic fits within the measured ~12 ms/tick network phase, let
        # alone a full second. Utilisation per *real-time* tick:
        assert load.utilisation < 50  # trivially drained in 12 ms/tick
        assert load.bytes_per_tick < 1e9

    def test_small_scale(self, summary):
        load = interconnect_load(summary, BLUE_GENE_Q, 1024)
        assert load.nodes == 1024
        assert len(load.torus) == 5
        assert load.mean_hops >= 1.0
        assert load.links == 1024 * BLUE_GENE_Q.links_per_node

    def test_utilisation_scales_with_traffic(self, summary):
        load = interconnect_load(summary, BLUE_GENE_Q, 1024)
        assert load.utilisation > 0
        assert load.link_byte_ticks == pytest.approx(
            load.bytes_per_tick * load.mean_hops
        )

    def test_feasible_flag(self, summary):
        load = interconnect_load(summary, BLUE_GENE_Q, 1024)
        assert load.feasible == (load.utilisation < 1.0)
