"""Unit tests for the multi-modal sensor-integration application."""

import numpy as np
import pytest

from repro.apps.classify import DIGIT_GLYPHS, noisy_glyph
from repro.apps.integration import (
    AudioClassifier,
    MultiModalClassifier,
    default_audio_signatures,
)


@pytest.fixture(scope="module")
def fused():
    return MultiModalClassifier(seed=3)


class TestSignatures:
    def test_signature_shape(self):
        sigs = default_audio_signatures([0, 1, 2], seed=0)
        assert set(sigs) == {0, 1, 2}
        assert all(s.size == 64 for s in sigs.values())

    def test_signatures_distinct(self):
        sigs = default_audio_signatures(list(range(5)), seed=0)
        keys = list(sigs)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                assert not np.array_equal(sigs[keys[i]], sigs[keys[j]])

    def test_deterministic(self):
        a = default_audio_signatures([0, 1], seed=7)
        b = default_audio_signatures([0, 1], seed=7)
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestAudioClassifier:
    def test_clean_signatures_classified(self):
        sigs = default_audio_signatures(list(range(4)), seed=1)
        clf = AudioClassifier(sigs)
        for label, sig in sigs.items():
            evidence = clf.evidence(sig)
            assert clf.labels[int(np.argmax(evidence))] == label

    def test_rejects_wrong_width(self):
        clf = AudioClassifier(default_audio_signatures([0], seed=0))
        with pytest.raises(ValueError):
            clf.evidence(np.zeros(32, dtype=bool))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AudioClassifier({})


class TestFusion:
    def test_both_modalities_clean(self, fused):
        for label in list(DIGIT_GLYPHS)[:3]:
            img, spec = fused.sample_for(label)
            assert fused.classify(image=img, spectrum=spec) == label

    def test_single_modality_fallback(self, fused):
        img, spec = fused.sample_for(2)
        assert fused.classify(image=img) == 2
        assert fused.classify(spectrum=spec) == 2

    def test_requires_some_modality(self, fused):
        with pytest.raises(ValueError):
            fused.classify()

    def test_fusion_rescues_corrupted_vision(self, fused):
        """Heavy image noise + clean audio must still win via fusion."""
        label = 1
        _, spec = fused.sample_for(label)
        bad_img = noisy_glyph(label, flips=20, seed=5)
        assert fused.classify(image=bad_img, spectrum=spec) == label

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiModalClassifier(
                glyphs={0: DIGIT_GLYPHS[0]},
                signatures=default_audio_signatures([0, 1]),
            )
