"""Unit tests for the fleet router, autoscaler, and fleet report."""

import pytest

from repro.errors import (
    ConfigurationError,
    FleetFullError,
    ShardError,
    UnknownTenantError,
)
from repro.serve.jobs import JobSpec
from repro.serve.server import ServeConfig, SimServer
from repro.shard.autoscale import AutoscalePolicy, Autoscaler
from repro.shard.fleet import FleetReport, build_fleet_report
from repro.shard.loadgen import fleet_open_loop
from repro.shard.router import FleetConfig, ShardRouter


def spec(tenant="t1", ticks=10, priority=4, **kw):
    return JobSpec(
        tenant=tenant, model="quickstart", cores=4, ticks=ticks,
        priority=priority, seed=42, **kw,
    )


def same_home_tenants(ring, count=2, shard=None):
    """First ``count`` tenant names sharing one home shard."""
    found = {}
    for i in range(10_000):
        name = f"t{i}"
        home = ring.lookup(name)
        if shard is not None and home != shard:
            continue
        found.setdefault(home, []).append(name)
        if len(found[home]) == count:
            return home, found[home]
    raise AssertionError("no colliding tenants found")


class TestFleetConfig:
    def test_defaults_valid(self):
        FleetConfig()

    def test_fault_schedule_requires_fault_shard(self):
        with pytest.raises(ConfigurationError, match="fault_shard"):
            FleetConfig(serve=ServeConfig(fault_schedule=object()), fault_shard=-1)

    def test_fault_shard_bounds(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(shards=4, fault_shard=4)

    def test_fault_schedule_stripped_from_other_shards(self):
        schedule = object()
        config = FleetConfig(
            shards=2, spill=1, serve=ServeConfig(fault_schedule=schedule),
            fault_shard=1,
        )
        assert config.shard_serve_config(1).fault_schedule is schedule
        assert config.shard_serve_config(0).fault_schedule is None


class TestRouting:
    def _router(self, **kw):
        defaults = dict(
            shards=2,
            spill=1,
            hot_depth=2,
            serve=ServeConfig(
                workers=1,
                max_batch_size=8,
                max_batch_delay_us=1e9,  # hold jobs queued: no launches
                queue_capacity=3,
            ),
        )
        defaults.update(kw)
        return ShardRouter(FleetConfig(**defaults))

    def test_routes_to_ring_home(self):
        router = self._router()
        tenant = "t5"
        target, job_id = router.submit(spec(tenant), at_us=0.0)
        assert target == router.ring.lookup(tenant)
        assert router.shard_of(tenant) == target
        assert job_id == 0
        assert router.jobs_routed == 1

    def test_unknown_tenant_raises_typed(self):
        router = self._router()
        with pytest.raises(UnknownTenantError, match="never been routed"):
            router.shard_of("nobody")
        # The typed hierarchy: shard errors share a base.
        assert issubclass(UnknownTenantError, ShardError)

    def test_out_of_order_arrivals_rejected(self):
        router = self._router()
        router.submit(spec("t1"), at_us=100.0)
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            router.submit(spec("t1"), at_us=50.0)

    def test_hot_home_spills_then_fleet_fills(self):
        router = self._router()
        home, (a, _) = same_home_tenants(router.ring)
        neighbor = router.ring.preference(a, 2)[1]
        # Fill the home shard past hot_depth=2: third job spills.
        for _ in range(2):
            shard, _ = router.submit(spec(a), at_us=0.0)
            assert shard == home
        shard, _ = router.submit(spec(a), at_us=0.0)
        assert shard == neighbor
        assert router.spilled == 1
        # Saturate both candidates (capacity 3 each), then the fleet is full.
        while True:
            try:
                router.submit(spec(a), at_us=0.0)
            except FleetFullError:
                break
        assert len(router.servers[home].queue) == 3
        assert len(router.servers[neighbor].queue) == 3
        assert router.fleet_rejected == 1
        with pytest.raises(FleetFullError, match="at queue capacity"):
            router.submit(spec(a), at_us=0.0)

    def test_routing_digest_tracks_decisions(self):
        a, b = self._router(), self._router()
        assert a.routing_digest == b.routing_digest
        a.submit(spec("t1"), at_us=0.0)
        assert a.routing_digest != b.routing_digest
        b.submit(spec("t1"), at_us=0.0)
        assert a.routing_digest == b.routing_digest


class TestSameShardFairness:
    def test_fair_queue_tie_break_for_colliding_tenants(self):
        """Two tenants on one shard tie on (priority, vfinish): seq decides.

        Identical specs give both tenants the same virtual finish for
        their first job, so the fair queue's explicit third tie-break
        field — the admission sequence — must order them: first
        admitted drains first, byte-identically every run.
        """
        router = ShardRouter(FleetConfig(
            shards=2, spill=0, hot_depth=1000,
            serve=ServeConfig(workers=1, max_batch_delay_us=1e9, queue_capacity=16),
        ))
        shard, (a, b) = same_home_tenants(router.ring)
        router.submit(spec(a, priority=4), at_us=0.0)
        router.submit(spec(b, priority=4), at_us=0.0)
        router.submit(spec(a, priority=0), at_us=0.0)  # urgent: jumps both
        assert router.shard_of(a) == router.shard_of(b) == shard
        # Arrivals are events: drive the shard to t=0 so the last one
        # is admitted before previewing the drain order.
        router.servers[shard].run_until(0.0)
        order = router.servers[shard].queue.drain_order()
        assert [(j.spec.tenant, j.spec.priority) for j in order] == [
            (a, 0),  # strict priority first
            (a, 4),  # then equal (priority, vfinish): admission seq
            (b, 4),
        ]


class TestAutoscaler:
    def _server(self, workers=2):
        return SimServer(ServeConfig(
            workers=workers, max_batch_delay_us=1e9, queue_capacity=256,
        ))

    def _fill(self, server, jobs, tenant="t1"):
        for _ in range(jobs):
            server.submit(spec(tenant), at_us=0.0)
        server.run_until(0.0)

    def test_grows_above_high_watermark(self):
        server = self._server(workers=1)
        scaler = Autoscaler(AutoscalePolicy(cooldown_intervals=0), server, 0)
        self._fill(server, 6)  # depth 6 > 4*1
        decision = scaler.evaluate(50_000.0)
        assert decision.action == "grow"
        assert server.workers == 2
        assert decision.workers_after == 2

    def test_shrinks_below_low_watermark(self):
        server = self._server(workers=3)
        scaler = Autoscaler(AutoscalePolicy(cooldown_intervals=0), server, 0)
        decision = scaler.evaluate(50_000.0)  # depth 0 < 1*3
        assert decision.action == "shrink"
        assert server.workers == 2

    def test_in_band_no_action(self):
        server = self._server(workers=2)
        scaler = Autoscaler(AutoscalePolicy(cooldown_intervals=0), server, 0)
        self._fill(server, 4)  # 1*2 <= 4 <= 4*2
        assert scaler.evaluate(50_000.0) is None

    def test_cooldown_suppresses_consecutive_actions(self):
        server = self._server(workers=1)
        scaler = Autoscaler(AutoscalePolicy(cooldown_intervals=2), server, 0)
        self._fill(server, 40)
        assert scaler.evaluate(1.0).action == "grow"
        assert scaler.evaluate(2.0) is None  # cooling
        assert scaler.evaluate(3.0) is None  # cooling
        assert scaler.evaluate(4.0).action == "grow"

    def test_respects_max_workers(self):
        server = self._server(workers=2)
        scaler = Autoscaler(
            AutoscalePolicy(max_workers=2, cooldown_intervals=0), server, 0
        )
        self._fill(server, 40)
        assert scaler.evaluate(1.0) is None
        assert server.workers == 2

    def test_never_shrinks_busy_workers(self):
        server = self._server(workers=1)
        # A launched batch occupies the only worker; min_workers=1 blocks
        # the removal path entirely, and remove_worker refuses busy pools.
        assert server.remove_worker() is False

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            AutoscalePolicy(high_depth_per_worker=1.0, low_depth_per_worker=2.0)
        with pytest.raises(ConfigurationError, match="min_workers"):
            AutoscalePolicy(min_workers=4, max_workers=2)


class TestElasticServer:
    def test_worker_ids_never_recycled(self):
        server = SimServer(ServeConfig(workers=2))
        first = server.add_worker()
        assert first == 2
        assert server.remove_worker() is True
        assert server.add_worker() == 3
        assert server.workers == 3

    def test_run_until_advances_clock_without_events(self):
        server = SimServer(ServeConfig())
        server.run_until(123.0)
        assert server.now_us == 123.0
        assert server.idle


class TestFleetReport:
    def _run_fleet(self, seed=3):
        router = ShardRouter(FleetConfig(
            shards=3,
            hot_depth=8,
            serve=ServeConfig(workers=1, keep_records=False,
                              max_batch_delay_us=5000.0),
            autoscale=AutoscalePolicy(),
        ))
        fleet_open_loop(
            router, rate_per_s=300.0, jobs=90, tenants=30,
            cores=4, deadline_us=1_000_000.0, seed=seed,
        )
        router.run()
        return router

    def test_counts_reconcile(self):
        router = self._run_fleet()
        report = build_fleet_report(router)
        assert report.jobs_offered == 90
        assert report.jobs_routed == sum(s.routed for s in report.shards)
        assert report.jobs_completed + report.jobs_rejected == report.jobs_routed
        assert report.batches == sum(s.batches for s in report.shards)
        assert report.peak_state_nbytes == sum(
            s.peak_state_nbytes for s in report.shards
        )
        assert report.routing_digest == router.routing_digest

    def test_aggregate_percentiles_bound_shard_percentiles(self):
        report = build_fleet_report(self._run_fleet())
        populated = [s for s in report.shards if s.completed]
        assert min(s.p50_us for s in populated) <= report.p50_us
        assert report.p99_us >= max(s.p50_us for s in populated)
        assert report.p50_us <= report.p95_us <= report.p99_us

    def test_json_round_trip_byte_identical(self):
        report = build_fleet_report(self._run_fleet())
        text = report.to_json()
        assert FleetReport.from_json(text).to_json() == text

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            FleetReport.from_json('{"schema": 99, "shards": []}')

    def test_eviction_mode_drops_job_records(self):
        router = self._run_fleet()
        # keep_records=False: servers must not retain Job/BatchRecord
        # objects, only the aggregate counters the report needs.
        assert all(not server.jobs for server in router.servers)
        assert all(not server.batches for server in router.servers)
        assert sum(server.n_batches for server in router.servers) > 0

    def test_format_stable(self):
        a = build_fleet_report(self._run_fleet())
        b = build_fleet_report(self._run_fleet())
        assert a.format() == b.format()
