"""Unit tests for the extended neuron modes: stochastic threshold and
leak reversal (§II's "rich repertoire" of configurable behaviours)."""

import numpy as np
import pytest

from repro.arch.neuron import NeuronArrayState, ReferenceNeuron, integrate_leak_fire
from repro.arch.params import NeuronArrayParameters, NeuronParameters, ResetMode
from repro.util.rng import derive_seed


def make(params: NeuronParameters, seed: int = 1) -> ReferenceNeuron:
    return ReferenceNeuron(params, seed)


class TestStochasticThreshold:
    def test_zero_mask_is_deterministic(self):
        p = NeuronParameters(weights=(1, 0, 0, 0), threshold=2, threshold_mask=0)
        n = make(p)
        assert n.run([(2, 0, 0, 0)] * 20) == [True] * 20

    def test_mask_jitters_firing(self):
        # V sits exactly at the base threshold; jitter usually pushes the
        # effective threshold above it, so firing becomes probabilistic.
        p = NeuronParameters(
            weights=(2, 0, 0, 0), threshold=2, threshold_mask=255, floor=0
        )
        n = make(p, seed=5)
        raster = n.run([(1, 0, 0, 0)] * 300)
        fired = sum(raster)
        assert 0 < fired < 300

    def test_mask_consumes_one_draw_per_tick(self):
        p = NeuronParameters(weights=(0, 0, 0, 0), threshold=1, threshold_mask=7)
        a = make(p, seed=9)
        a.run([(0, 0, 0, 0)] * 10)
        # Manually replicate: 10 draws.
        from repro.util.rng import Lcg32

        ref = Lcg32(9)
        for _ in range(10):
            ref.next_u8()
        assert a.rng.state == ref.state

    def test_linear_reset_subtracts_effective_threshold(self):
        p = NeuronParameters(
            weights=(100, 0, 0, 0),
            threshold=1,
            threshold_mask=255,
            reset_mode=ResetMode.LINEAR,
            floor=0,
        )
        n = make(p, seed=2)
        n.tick((1, 0, 0, 0))
        # After firing, the residue is 100 - theta_eff, strictly < 100.
        assert 0 <= n.potential < 100

    def test_mask_validation(self):
        with pytest.raises(Exception):
            NeuronParameters(threshold_mask=300)


class TestLeakReversal:
    def test_positive_leak_diverges_from_zero(self):
        p = NeuronParameters(
            weights=(0, -5, 0, 0), leak=1, leak_reversal=True,
            threshold=1000, floor=-50,
        )
        n = make(p)
        n.tick((0, 1, 0, 0))  # push V to -5, then leak drives downward
        v_after_push = n.potential
        n.run([(0, 0, 0, 0)] * 10)
        assert n.potential < v_after_push

    def test_negative_leak_decays_toward_zero_from_below(self):
        p = NeuronParameters(
            weights=(0, -10, 0, 0), leak=-1, leak_reversal=True,
            threshold=1000, floor=-100,
        )
        n = make(p)
        n.tick((0, 1, 0, 0))  # V = -10 - (-1 * -1)? leak applies same tick
        start = n.potential
        n.run([(0, 0, 0, 0)] * 5)
        assert start < n.potential < 0

    def test_sign_zero_counts_positive(self):
        p = NeuronParameters(weights=(0, 0, 0, 0), leak=1, leak_reversal=True,
                             threshold=1000)
        n = make(p)
        n.tick((0, 0, 0, 0))
        assert n.potential == 1

    def test_no_reversal_unchanged(self):
        p = NeuronParameters(weights=(0, -5, 0, 0), leak=-1, threshold=10, floor=-50)
        n = make(p)
        n.tick((0, 1, 0, 0))
        n.run([(0, 0, 0, 0)] * 3)
        assert n.potential == -9  # keeps sinking, no reversal


class TestVectorEquivalence:
    CASES = [
        NeuronParameters(weights=(2, 0, 0, 0), threshold=3, threshold_mask=15),
        NeuronParameters(weights=(1, -1, 0, 0), leak=2, leak_reversal=True,
                         threshold=4, floor=-20),
        NeuronParameters(
            weights=(64, -32, 0, 0),
            stochastic_weights=(True, True, False, False),
            leak=50,
            stochastic_leak=True,
            leak_reversal=True,
            threshold=3,
            threshold_mask=31,
            reset_mode=ResetMode.LINEAR,
            floor=-30,
        ),
    ]

    @pytest.mark.parametrize("params", CASES)
    def test_scalar_vector_bit_equivalence(self, params):
        core_seed = 77
        rng = np.random.default_rng(3)
        schedule = [tuple(rng.integers(0, 3, size=4)) for _ in range(150)]

        ref = ReferenceNeuron(params, derive_seed(core_seed, 0))
        ref_out = [ref.tick(c) for c in schedule]

        state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 1)
        block = NeuronArrayParameters.empty(1, 1)
        block.set_neuron(0, 0, params)
        vec_out = []
        for counts in schedule:
            tc = np.array(counts, dtype=np.int32).reshape(1, 1, 4)
            vec_out.append(bool(integrate_leak_fire(state, block, tc)[0, 0]))

        assert ref_out == vec_out
        assert ref.potential == int(state.potential[0, 0])
        assert ref.rng.state == int(state.rng.state[0, 0])

    def test_mixed_modes_in_one_core(self):
        """Lanes with and without the extensions must not interfere."""
        core_seed = 5
        plain = NeuronParameters(weights=(1, 0, 0, 0), threshold=2, floor=0)
        jitter = NeuronParameters(
            weights=(1, 0, 0, 0), threshold=2, threshold_mask=63, floor=0
        )
        refs = [
            ReferenceNeuron(plain, derive_seed(core_seed, 0)),
            ReferenceNeuron(jitter, derive_seed(core_seed, 1)),
        ]
        schedule = [(1, 0, 0, 0)] * 80
        expected = [[n.tick(c) for c in schedule] for n in refs]

        state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 2)
        block = NeuronArrayParameters.empty(1, 2)
        block.set_neuron(0, 0, plain)
        block.set_neuron(0, 1, jitter)
        got = [[], []]
        for counts in schedule:
            tc = np.tile(np.array(counts, dtype=np.int32), (1, 2, 1))
            fired = integrate_leak_fire(state, block, tc)
            got[0].append(bool(fired[0, 0]))
            got[1].append(bool(fired[0, 1]))
        assert got == expected


class TestSerialisation:
    def test_coreobject_round_trip_with_extensions(self):
        from repro.compiler.coreobject import CoreObject, RegionSpec

        p = NeuronParameters(threshold=5, threshold_mask=31, leak_reversal=True)
        obj = CoreObject("x", regions=[RegionSpec("A", 1, neuron=p)], connections=[])
        restored = CoreObject.from_json(obj.to_json())
        assert restored.region("A").neuron == p
