"""Unit tests for the extended primitive library: delay lines, toggles,
counters, and gates."""

import numpy as np
import pytest

from repro.apps.primitives import (
    configure_counter,
    configure_delay_line,
    configure_gate,
    configure_toggle,
)
from repro.arch.network import CoreNetwork
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


def run_with(net, injections, ticks):
    sim = Compass(net, CompassConfig(record_spikes=True))
    for tick, axons in injections.items():
        for a in axons:
            sim.inject(0, a, tick)
    sim.run(ticks)
    return sim.recorder.to_arrays()


class TestDelayLine:
    def test_spike_traverses_stages(self):
        net = CoreNetwork(1)
        configure_delay_line(net, 0, stages=4, lanes=8)
        t, g, n = run_with(net, {0: [2]}, 12)
        # stage s fires at tick s (relay at 0, +1 per hop)
        expected = [(s, s * 8 + 2) for s in range(4)]
        assert list(zip(t, n)) == expected

    def test_lanes_independent(self):
        net = CoreNetwork(1)
        configure_delay_line(net, 0, stages=3, lanes=4)
        t, g, n = run_with(net, {0: [0, 3]}, 8)
        lanes = {int(x) % 4 for x in n}
        assert lanes == {0, 3}

    def test_too_big_rejected(self):
        net = CoreNetwork(1)
        with pytest.raises(ValueError):
            configure_delay_line(net, 0, stages=20, lanes=20)


class TestToggle:
    def test_set_then_sustain(self):
        net = CoreNetwork(1)
        configure_toggle(net, 0, channels=4)
        t, g, n = run_with(net, {0: [2 * 1]}, 12)  # set channel 1
        ch1 = t[n == 1]
        # Fires at the set tick and keeps firing via the self-loop.
        assert ch1.size >= 8
        assert set(np.diff(np.sort(ch1))) == {1}

    def test_reset_stops_it(self):
        net = CoreNetwork(1)
        configure_toggle(net, 0, channels=4)
        t, g, n = run_with(net, {0: [0], 6: [1]}, 16)  # set ch0, reset ch0
        ch0 = np.sort(t[n == 0])
        assert ch0.size >= 5
        assert ch0.max() <= 8  # silenced shortly after the reset

    def test_channels_isolated(self):
        net = CoreNetwork(1)
        configure_toggle(net, 0, channels=4)
        t, g, n = run_with(net, {0: [0]}, 10)
        assert set(n.tolist()) == {0}


class TestCounter:
    def test_divide_by_n(self):
        net = CoreNetwork(1)
        configure_counter(net, 0, count=3, channels=2)
        # 7 input spikes on channel 0 -> 2 output spikes (remainder 1).
        injections = {tick: [0] for tick in range(7)}
        t, g, n = run_with(net, injections, 10)
        assert (n == 0).sum() == 2

    def test_remainder_carries_over(self):
        net = CoreNetwork(1)
        configure_counter(net, 0, count=2, channels=1)
        t, g, n = run_with(net, {0: [0], 1: [0], 2: [0], 3: [0]}, 6)
        assert (n == 0).sum() == 2

    def test_bad_count(self):
        net = CoreNetwork(1)
        with pytest.raises(ValueError):
            configure_counter(net, 0, count=0)


class TestGate:
    def test_data_alone_blocked(self):
        net = CoreNetwork(1)
        configure_gate(net, 0, channels=8)
        t, g, n = run_with(net, {t_: [3] for t_ in range(5)}, 8)
        assert n.size == 0

    def test_control_alone_blocked(self):
        net = CoreNetwork(1)
        configure_gate(net, 0, channels=8)
        t, g, n = run_with(net, {t_: [64 + 3] for t_ in range(5)}, 8)
        assert n.size == 0

    def test_coincidence_passes(self):
        net = CoreNetwork(1)
        configure_gate(net, 0, channels=8)
        t, g, n = run_with(net, {2: [3, 64 + 3]}, 6)
        assert list(zip(t, n)) == [(2, 3)]

    def test_channels_do_not_crosstalk(self):
        net = CoreNetwork(1)
        configure_gate(net, 0, channels=8)
        t, g, n = run_with(net, {1: [2, 64 + 5]}, 5)
        assert n.size == 0
