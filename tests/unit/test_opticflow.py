"""Unit tests for the Reichardt-style motion detector."""

import numpy as np
import pytest

from repro.apps.opticflow import MotionDetector1D, moving_bar


class TestStimulus:
    def test_moving_bar_right(self):
        frames = moving_bar(8, ticks=4, direction="right")
        assert list(np.argmax(frames, axis=1)) == [0, 1, 2, 3]

    def test_moving_bar_left(self):
        frames = moving_bar(8, ticks=3, direction="left")
        assert list(np.argmax(frames, axis=1)) == [7, 6, 5]

    def test_one_pixel_per_frame(self):
        assert (moving_bar(16, 10, "right").sum(axis=1) == 1).all()


class TestDetector:
    def test_detects_rightward_motion(self):
        det = MotionDetector1D(n_pixels=16)
        frames = moving_bar(16, ticks=12, direction="right")
        assert det.detect(frames) == "right"

    def test_detects_leftward_motion(self):
        det = MotionDetector1D(n_pixels=16)
        frames = moving_bar(16, ticks=12, direction="left")
        assert det.detect(frames) == "left"

    def test_static_scene_is_none(self):
        det = MotionDetector1D(n_pixels=16)
        frames = np.zeros((10, 16), dtype=bool)
        assert det.detect(frames) == "none"

    def test_votes_direction_sensitive(self):
        det = MotionDetector1D(n_pixels=16)
        raster = det.present(moving_bar(16, 12, "right"))
        right, left = det.direction_votes(raster)
        assert right > left
        assert right > 0

    def test_speed_must_match_delay(self):
        # delay-2 detector prefers a bar moving one pixel per two ticks;
        # a fast bar gives weaker rightward evidence than a matched one.
        fast = MotionDetector1D(n_pixels=16, delay=1)
        raster = fast.present(moving_bar(16, 12, "right"))
        matched_votes = fast.direction_votes(raster)[0]
        assert matched_votes > 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            MotionDetector1D(n_pixels=1)
        with pytest.raises(ValueError):
            MotionDetector1D(n_pixels=100)

    def test_rejects_wrong_frame_width(self):
        det = MotionDetector1D(n_pixels=8)
        with pytest.raises(ValueError):
            det.present(np.zeros((5, 9), dtype=bool))
