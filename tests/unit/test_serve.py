"""Unit tests for repro.serve jobs, admission queue, and batcher."""

import pytest

from repro.errors import ConfigurationError, QueueFullError, TenantQuotaError
from repro.serve.batcher import Batcher, BatchPolicy
from repro.serve.jobs import DONE, REJECTED, Job, JobSpec, compatible
from repro.serve.queue import FairShareQueue, TenantQuota


def make_job(
    job_id,
    tenant="t",
    priority=4,
    ticks=20,
    cores=4,
    seed=0,
    submit_us=0.0,
    deadline_us=None,
):
    spec = JobSpec(
        tenant=tenant,
        cores=cores,
        ticks=ticks,
        priority=priority,
        seed=seed,
        deadline_us=deadline_us,
    )
    return Job(spec=spec, job_id=job_id, submit_us=submit_us)


class TestJobSpec:
    def test_valid_spec(self):
        spec = JobSpec(tenant="a", model="quickstart", cores=4, ticks=10)
        assert spec.batch_key == ("quickstart", 4, 0)
        assert spec.demand() == 40.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": ""},
            {"tenant": "a", "model": "bogus"},
            {"tenant": "a", "cores": 1},
            {"tenant": "a", "ticks": 0},
            {"tenant": "a", "priority": -1},
            {"tenant": "a", "priority": 10},
            {"tenant": "a", "deadline_us": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            JobSpec(**kwargs)

    def test_compatibility_predicate(self):
        a = JobSpec(tenant="a", cores=4, ticks=10, seed=1)
        b = JobSpec(tenant="b", cores=4, ticks=99, priority=0, seed=1)
        assert compatible(a, b)  # tenant/ticks/priority don't matter
        assert not compatible(a, JobSpec(tenant="a", cores=8, ticks=10, seed=1))
        assert not compatible(a, JobSpec(tenant="a", cores=4, ticks=10, seed=2))
        assert not compatible(
            a, JobSpec(tenant="a", model="macaque", cores=128, ticks=10, seed=1)
        )

    def test_deadline_accounting(self):
        job = make_job(0, deadline_us=100.0)
        job.status = DONE
        job.finish_us = 150.0
        assert job.latency_us == 150.0
        assert job.deadline_missed
        job.finish_us = 90.0
        assert not job.deadline_missed

    def test_rejected_job_with_deadline_counts_as_missed(self):
        job = make_job(0, deadline_us=100.0)
        job.status = REJECTED
        assert job.deadline_missed

    def test_no_deadline_never_missed(self):
        job = make_job(0)
        job.status = REJECTED
        assert not job.deadline_missed


class TestAdmission:
    def test_queue_full_rejection(self):
        q = FairShareQueue(capacity=2)
        q.submit(make_job(0))
        q.submit(make_job(1))
        with pytest.raises(QueueFullError, match="capacity=2"):
            q.submit(make_job(2))
        assert len(q) == 2

    def test_tenant_quota_rejection(self):
        q = FairShareQueue(
            capacity=10, quotas={"small": TenantQuota(max_queued=1)}
        )
        q.submit(make_job(0, tenant="small"))
        with pytest.raises(TenantQuotaError, match="'small'"):
            q.submit(make_job(1, tenant="small"))
        # Other tenants fall back to the default quota and still admit.
        q.submit(make_job(2, tenant="big"))
        assert q.queued_for("small") == 1
        assert q.queued_for("big") == 1

    def test_rejection_leaves_state_untouched(self):
        q = FairShareQueue(capacity=1)
        q.submit(make_job(0, tenant="a"))
        with pytest.raises(QueueFullError):
            q.submit(make_job(1, tenant="b"))
        assert q.queued_for("b") == 0
        job = q.pop()
        assert job.job_id == 0
        # After a pop there is room again.
        q.submit(make_job(2, tenant="b"))


class TestFairShare:
    def test_priority_dominates(self):
        q = FairShareQueue()
        q.submit(make_job(0, priority=5))
        q.submit(make_job(1, priority=0))
        assert q.pop().job_id == 1
        assert q.pop().job_id == 0

    def test_equal_priority_ties_break_by_submission_order(self):
        q = FairShareQueue()
        # Same tenant, same demand: identical virtual finish progression
        # would tie without the seq field.
        for i in range(5):
            q.submit(make_job(i, tenant=["a", "b"][i % 2]))
        order = [q.pop().job_id for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_weighted_tenant_drains_faster(self):
        q = FairShareQueue(quotas={"heavy": TenantQuota(weight=4.0)})
        # Interleave submissions; the weighted tenant accumulates virtual
        # finish time 4x slower, so its backlog drains first.
        for i in range(4):
            q.submit(make_job(2 * i, tenant="heavy"))
            q.submit(make_job(2 * i + 1, tenant="light"))
        order = [q.pop().spec.tenant for _ in range(8)]
        assert order.count("heavy") == 4
        # Weight 4 => heavy virtual finishes at 20/40/60/80 vs light's
        # 80/160/240/320: heavy's backlog drains up front, and at the
        # 80-vs-80 tie the earlier submission (light) wins by seq.
        assert order == [
            "heavy", "heavy", "heavy", "light",
            "heavy", "light", "light", "light",
        ]

    def test_drain_order_is_deterministic_across_rebuilds(self):
        def build():
            q = FairShareQueue(quotas={"b": TenantQuota(weight=2.0)})
            for i in range(12):
                q.submit(
                    make_job(
                        i,
                        tenant=["a", "b", "c"][i % 3],
                        priority=i % 2,
                        ticks=10 + i,
                    )
                )
            return [q.pop().job_id for _ in range(12)]

        assert build() == build()

    def test_pop_compatible_preserves_skipped_order(self):
        q = FairShareQueue()
        q.submit(make_job(0, seed=1))
        q.submit(make_job(1, seed=2))
        q.submit(make_job(2, seed=1))
        taken = q.pop_compatible(("quickstart", 4, 1), limit=8)
        assert [j.job_id for j in taken] == [0, 2]
        assert q.pop().job_id == 1

    def test_count_compatible(self):
        q = FairShareQueue()
        q.submit(make_job(0, seed=1))
        q.submit(make_job(1, seed=2))
        q.submit(make_job(2, seed=1))
        assert q.count_compatible(("quickstart", 4, 1)) == 2
        assert q.count_compatible(("quickstart", 4, 9)) == 0


class TestBatcher:
    def test_full_batch_launches_immediately(self):
        q = FairShareQueue()
        for i in range(3):
            q.submit(make_job(i, submit_us=100.0))
        b = Batcher(BatchPolicy(max_batch_size=3, max_batch_delay_us=1e6))
        assert b.ready_at(q, now_us=100.0) == 100.0

    def test_head_waits_for_delay_budget(self):
        q = FairShareQueue()
        q.submit(make_job(0, submit_us=100.0))
        b = Batcher(BatchPolicy(max_batch_size=4, max_batch_delay_us=500.0))
        assert b.ready_at(q, now_us=100.0) == 600.0
        assert b.ready_at(q, now_us=600.0) == 600.0
        assert b.ready_at(q, now_us=700.0) == 700.0

    def test_empty_queue_not_ready(self):
        b = Batcher()
        assert b.ready_at(FairShareQueue(), now_us=0.0) is None
        assert b.form(FairShareQueue(), now_us=0.0) is None

    def test_form_takes_only_compatible(self):
        q = FairShareQueue()
        q.submit(make_job(0, seed=1, ticks=10))
        q.submit(make_job(1, seed=2))
        q.submit(make_job(2, seed=1, ticks=30))
        batch = Batcher(BatchPolicy(max_batch_size=8)).form(q, now_us=50.0)
        assert [j.job_id for j in batch.jobs] == [0, 2]
        assert batch.key == ("quickstart", 4, 1)
        assert batch.max_ticks == 30
        assert batch.size == 2
        assert len(q) == 1

    def test_form_respects_max_batch_size(self):
        q = FairShareQueue()
        for i in range(5):
            q.submit(make_job(i))
        batch = Batcher(BatchPolicy(max_batch_size=2)).form(q, now_us=0.0)
        assert batch.size == 2
        assert len(q) == 3

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch_delay_us=-1.0)
