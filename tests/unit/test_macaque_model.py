"""Unit tests for the macaque model builder (§V)."""

import numpy as np
import pytest

from repro.arch.params import NUM_NEURONS
from repro.cocomac.model import (
    WHITE_FRACTION,
    build_macaque_coreobject,
    default_neuron_prototype,
)


@pytest.fixture(scope="module")
def model():
    return build_macaque_coreobject(total_cores=512, seed=3)


class TestStructure:
    def test_77_regions(self, model):
        assert model.n_regions == 77
        assert len(model.coreobject.regions) == 77

    def test_total_cores(self, model):
        assert model.total_cores == 512

    def test_matrix_diagonal_is_gray(self, model):
        counts = model.connection_counts
        for i, cls in enumerate(model.region_classes):
            if counts[i].sum() == 0:
                continue
            gray = counts[i, i] / counts[i].sum()
            expected_gray = 1.0 - WHITE_FRACTION[cls]
            # IPFP balancing shifts the exact split; it stays in the
            # neighbourhood of the prescribed ratio.
            assert abs(gray - expected_gray) < 0.35

    def test_white_matter_only_on_cocomac_edges(self, model):
        counts = model.connection_counts.copy()
        np.fill_diagonal(counts, 0)
        off_pattern = counts[model.binary_matrix == 0]
        assert (off_pattern == 0).all()

    def test_overall_white_fraction_near_prescription(self, model):
        # Mixture of 60% (cortical) and 80% (subcortical) prescriptions.
        assert 0.45 < model.white_matter_fraction < 0.85


class TestRealizability:
    def test_row_sums_within_neuron_capacity(self, model):
        out_degree = model.connection_counts.sum(axis=1)
        capacity = model.cores * NUM_NEURONS
        assert (out_degree <= capacity).all()

    def test_col_sums_within_axon_capacity(self, model):
        in_degree = model.connection_counts.sum(axis=0)
        capacity = model.cores * NUM_NEURONS
        assert (in_degree <= capacity).all()

    def test_coreobject_passes_capacity_validation(self, model):
        model.coreobject.validate_capacity()

    def test_balanced_matrix_marginals_equal(self, model):
        rows = model.balanced_matrix.sum(axis=1)
        cols = model.balanced_matrix.sum(axis=0)
        assert np.allclose(rows, cols, rtol=1e-6)


class TestCompiled:
    def test_compiles_and_simulates(self, macaque_small):
        from repro.core.config import CompassConfig
        from repro.core.simulator import Compass

        net = macaque_small.compiled.network
        sim = Compass(net, CompassConfig(n_processes=4))
        result = sim.run(100)
        assert result.total_spikes > 0

    def test_region_ranges_cover_network(self, macaque_small):
        cm = macaque_small.compiled
        spans = sorted(cm.region_ranges.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == cm.network.n_cores
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo


class TestNeuronPrototype:
    def test_self_driving(self):
        p = default_neuron_prototype("cortical")
        assert p.stochastic_leak and p.leak > 0

    def test_subcortical_higher_threshold(self):
        assert (
            default_neuron_prototype("thalamic").threshold
            > default_neuron_prototype("cortical").threshold
        )

    def test_deterministic_build(self):
        a = build_macaque_coreobject(128, seed=1)
        b = build_macaque_coreobject(128, seed=1)
        assert np.array_equal(a.connection_counts, b.connection_counts)
        assert np.array_equal(a.cores, b.cores)

    def test_seed_changes_model(self):
        a = build_macaque_coreobject(128, seed=1)
        b = build_macaque_coreobject(128, seed=2)
        assert not np.array_equal(a.connection_counts, b.connection_counts)
