"""Unit tests for the SimServer event loop, load generators, and report."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.serve.jobs import DONE, REJECTED, JobSpec
from repro.serve.loadgen import (
    ClosedLoopLoad,
    LatencyReport,
    build_report,
    open_loop_load,
)
from repro.serve.server import ServeConfig, ServeCostModel, SimServer


def spec(tenant="t", ticks=10, cores=4, priority=4, deadline_us=None, seed=0):
    return JobSpec(
        tenant=tenant,
        cores=cores,
        ticks=ticks,
        priority=priority,
        seed=seed,
        deadline_us=deadline_us,
    )


class TestServeConfig:
    def test_defaults_valid(self):
        cfg = ServeConfig()
        assert cfg.backend == "mpi"

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(backend="tcp")

    def test_pgas_with_faults_rejected(self):
        from repro.resilience.faults import FaultSchedule, RankCrash

        with pytest.raises(ConfigurationError, match="mpi backend"):
            ServeConfig(
                backend="pgas",
                fault_schedule=FaultSchedule([RankCrash(tick=1, rank=0)]),
            )

    def test_cost_model_validation(self):
        with pytest.raises(ConfigurationError):
            ServeCostModel(setup_us=0.0)
        with pytest.raises(ConfigurationError):
            ServeCostModel(spike_us=-1.0)


class TestSingleJob:
    def test_job_completes_with_charged_costs(self):
        server = SimServer(ServeConfig(workers=1))
        jid = server.submit(spec(ticks=10), at_us=0.0)
        server.run()
        job = server.jobs[jid]
        assert job.status == DONE
        assert job.wait_us == 0.0
        costs = server.config.costs
        assert job.latency_us >= costs.setup_us + 10 * costs.tick_us
        assert job.batch_size == 1

    def test_submit_in_the_past_rejected(self):
        server = SimServer()
        with pytest.raises(ConfigurationError):
            server.submit(spec(), at_us=-1.0)

    def test_jobs_queue_when_workers_busy(self):
        server = SimServer(ServeConfig(workers=1, max_batch_size=1))
        a = server.submit(spec(seed=1), at_us=0.0)
        b = server.submit(spec(seed=2), at_us=1.0)  # incompatible: no batch
        server.run()
        ja, jb = server.jobs[a], server.jobs[b]
        assert ja.status == DONE and jb.status == DONE
        # b had to wait for a's worker.
        assert jb.launch_us >= ja.finish_us
        assert jb.wait_us > 0


class TestBatching:
    def test_compatible_jobs_share_a_batch(self):
        server = SimServer(
            ServeConfig(workers=1, max_batch_size=4, max_batch_delay_us=1e4)
        )
        ids = [server.submit(spec(tenant=t, ticks=10 + i), at_us=float(i))
               for i, t in enumerate(("a", "b", "c"))]
        server.run()
        jobs = [server.jobs[i] for i in ids]
        assert len({j.batch_id for j in jobs}) == 1
        assert all(j.batch_size == 3 for j in jobs)
        assert len(server.batches) == 1
        assert server.batches[0].max_ticks == 12

    def test_short_job_finishes_before_long_one_in_same_batch(self):
        server = SimServer(
            ServeConfig(workers=1, max_batch_size=2, max_batch_delay_us=1e4)
        )
        short = server.submit(spec(ticks=5), at_us=0.0)
        long = server.submit(spec(ticks=40), at_us=1.0)
        server.run()
        assert server.jobs[short].finish_us < server.jobs[long].finish_us
        assert server.jobs[short].batch_id == server.jobs[long].batch_id

    def test_batch_delay_zero_means_no_waiting(self):
        server = SimServer(
            ServeConfig(workers=2, max_batch_size=8, max_batch_delay_us=0.0)
        )
        a = server.submit(spec(), at_us=0.0)
        server.submit(spec(), at_us=5000.0)
        server.run()
        # First job launched alone at t=0 rather than waiting.
        assert server.jobs[a].wait_us == 0.0
        assert len(server.batches) == 2

    def test_incompatible_jobs_never_batch(self):
        server = SimServer(
            ServeConfig(workers=2, max_batch_size=8, max_batch_delay_us=1e5)
        )
        server.submit(spec(seed=1), at_us=0.0)
        server.submit(spec(seed=2), at_us=0.0)
        server.run()
        assert len(server.batches) == 2
        assert all(b.size == 1 for b in server.batches)


class TestRejections:
    def test_overload_yields_typed_rejections(self):
        server = SimServer(ServeConfig(workers=1, queue_capacity=2))
        ids = [server.submit(spec(seed=i), at_us=0.0) for i in range(5)]
        server.run()
        statuses = [server.jobs[i].status for i in ids]
        # One launches immediately, two queue, the rest bounce.
        assert statuses.count(REJECTED) == 2
        rejected = [server.jobs[i] for i in ids if server.jobs[i].status == REJECTED]
        assert all(j.reject_reason == "QueueFullError" for j in rejected)

    def test_tenant_quota_rejection_reason(self):
        from repro.serve.queue import TenantQuota

        server = SimServer(
            ServeConfig(
                workers=1,
                quotas=(("greedy", TenantQuota(max_queued=1)),),
            )
        )
        ids = [
            server.submit(spec(tenant="greedy", seed=i), at_us=0.0)
            for i in range(4)
        ]
        server.run()
        reasons = [server.jobs[i].reject_reason for i in ids]
        assert "TenantQuotaError" in reasons


class TestMetricsAndTrace:
    def test_serve_metrics_populated(self):
        obs = Observability.off()
        server = SimServer(ServeConfig(workers=1), obs=obs)
        server.submit(spec(tenant="a"), at_us=0.0)
        server.submit(spec(tenant="b"), at_us=0.0)
        server.run()
        reg = obs.registry
        assert reg.get("serve_jobs_submitted_total").total() == 2
        assert reg.get("serve_jobs_completed_total").total() == 2
        assert reg.get("serve_batches_total").total() >= 1
        assert reg.get("serve_job_latency_us").count(-1) == 2
        # Per-tenant cells keyed by first-submission order.
        assert server.tenant_id("a") == 0
        assert server.tenant_id("b") == 1
        assert reg.get("serve_jobs_completed_total").value(0) == 1

    def test_trace_instants_emitted(self):
        obs = Observability.with_tracing()
        server = SimServer(ServeConfig(workers=1), obs=obs)
        server.submit(spec(), at_us=0.0)
        server.run()
        names = {e.name for e in obs.tracer.events}
        assert {"serve.submit", "serve.launch", "serve.done"} <= names


class TestLoadGenerators:
    def test_open_loop_arrivals_are_seeded(self):
        s1, s2 = SimServer(), SimServer()
        open_loop_load(s1, rate_per_s=100.0, jobs=10, seed=5, cores=4)
        open_loop_load(s2, rate_per_s=100.0, jobs=10, seed=5, cores=4)
        t1 = [s1.jobs[i].submit_us for i in sorted(s1.jobs)]
        t2 = [s2.jobs[i].submit_us for i in sorted(s2.jobs)]
        assert t1 == t2
        s3 = SimServer()
        open_loop_load(s3, rate_per_s=100.0, jobs=10, seed=6, cores=4)
        assert [s3.jobs[i].submit_us for i in sorted(s3.jobs)] != t1

    def test_closed_loop_keeps_population_fixed(self):
        server = SimServer(ServeConfig(workers=2))
        load = ClosedLoopLoad(
            server, clients=3, jobs_per_client=4, think_us=100.0, cores=4
        )
        load.start()
        server.run()
        assert len(load.job_ids) == 12
        assert all(server.jobs[i].status == DONE for i in load.job_ids)

    def test_closed_loop_continues_after_rejection(self):
        # Capacity 1 forces rejections; clients must still finish their
        # submission budget rather than stalling.
        server = SimServer(ServeConfig(workers=1, queue_capacity=1))
        load = ClosedLoopLoad(
            server, clients=4, jobs_per_client=3, think_us=0.0, cores=4
        )
        load.start()
        server.run()
        assert len(load.job_ids) == 12
        terminal = [server.jobs[i] for i in load.job_ids]
        assert all(j.status in (DONE, REJECTED) for j in terminal)


class TestLatencyReport:
    def _run(self):
        server = SimServer(
            ServeConfig(workers=2, max_batch_size=4, max_batch_delay_us=5e3)
        )
        open_loop_load(
            server, rate_per_s=150.0, jobs=25, seed=2, cores=4,
            deadline_us=60_000.0,
        )
        server.run()
        return build_report(server)

    def test_report_fields(self):
        report = self._run()
        assert report.jobs_submitted == 25
        assert report.jobs_completed + report.jobs_rejected == 25
        assert report.p50_us <= report.p95_us <= report.p99_us
        assert report.goodput_per_s > 0
        assert 0.0 <= report.miss_rate <= 1.0
        assert [t.tenant for t in report.tenants] == sorted(
            t.tenant for t in report.tenants
        )

    def test_deadline_miss_accounting(self):
        # An impossible deadline: every completed job misses it.
        server = SimServer(ServeConfig(workers=1))
        server.submit(spec(deadline_us=1.0), at_us=0.0)
        server.run()
        report = build_report(server)
        assert report.deadline_missed == 1
        assert report.miss_rate == 1.0
        assert report.goodput_per_s == 0.0

    def test_json_round_trip(self):
        report = self._run()
        clone = LatencyReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.format() == report.format()

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            LatencyReport.from_json('{"schema": 99, "tenants": []}')

    def test_report_byte_identical_across_runs(self):
        assert self._run().to_json() == self._run().to_json()
