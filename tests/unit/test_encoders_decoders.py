"""Unit tests for spike encoders and decoders."""

import numpy as np
import pytest

from repro.apps.decoders import (
    argmax_decode,
    counts_by_gid,
    raster_of_core,
    rates_from_counts,
    spike_counts,
)
from repro.apps.encoders import image_to_spikes, poisson_schedule, rate_encode
from repro.core.simulator import SpikeRecorder


class TestRateEncode:
    def test_rate_tracks_value(self):
        values = np.array([0.0, 0.5, 1.0])
        schedule = rate_encode(values, ticks=4000, max_rate=0.5, seed=1)
        counts = np.zeros(3)
        for axons in schedule.values():
            counts[axons] += 1
        assert counts[0] == 0
        assert counts[1] / 4000 == pytest.approx(0.25, abs=0.03)
        assert counts[2] / 4000 == pytest.approx(0.5, abs=0.03)

    def test_deterministic_given_seed(self):
        v = np.array([0.3, 0.7])
        a = rate_encode(v, 100, seed=5)
        b = rate_encode(v, 100, seed=5)
        assert set(a) == set(b)
        assert all(np.array_equal(a[t], b[t]) for t in a)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rate_encode(np.array([1.5]), 10)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rate_encode(np.ones((2, 2)), 10)


class TestPoisson:
    def test_rate(self):
        schedule = poisson_schedule(100, rate_hz=100.0, ticks=1000, seed=2)
        total = sum(a.size for a in schedule.values())
        # 100 axons x 0.1/tick x 1000 ticks = 10000 expected
        assert total == pytest.approx(10000, rel=0.1)

    def test_rejects_superunit_rate(self):
        with pytest.raises(ValueError):
            poisson_schedule(10, rate_hz=2000.0, ticks=10)


class TestImageToSpikes:
    def test_active_pixels_only(self):
        img = np.zeros((4, 4))
        img[1, 2] = 1
        img[3, 3] = 1
        schedule = image_to_spikes(img, repeats=2)
        assert set(schedule) == {0, 1}
        assert list(schedule[0]) == [6, 15]

    def test_start_tick_offset(self):
        img = np.ones((2, 2))
        schedule = image_to_spikes(img, repeats=1, start_tick=5)
        assert set(schedule) == {5}


class TestDecoders:
    def test_spike_counts(self):
        raster = np.zeros((5, 3), dtype=bool)
        raster[0, 1] = raster[2, 1] = raster[4, 2] = True
        assert list(spike_counts(raster)) == [0, 2, 1]

    def test_spike_counts_rejects_1d(self):
        with pytest.raises(ValueError):
            spike_counts(np.zeros(5))

    def test_rates(self):
        assert list(rates_from_counts(np.array([10]), ticks=1000)) == [10.0]
        with pytest.raises(ValueError):
            rates_from_counts(np.array([1]), 0)

    def test_argmax_ties_break_low(self):
        assert argmax_decode(np.array([3, 3, 1])) == 0

    def test_counts_by_gid(self):
        rec = SpikeRecorder()
        rec.record(0, np.array([0, 1, 1]), np.array([0, 0, 1]))
        rec.record(1, np.array([1]), np.array([5]))
        assert list(counts_by_gid(rec, 3)) == [1, 3, 0]

    def test_raster_of_core(self):
        rec = SpikeRecorder()
        rec.record(2, np.array([0, 1]), np.array([7, 9]))
        raster = raster_of_core(rec, gid=1, ticks=5, n_neurons=16)
        assert raster[2, 9]
        assert raster.sum() == 1
