"""Unit tests for the simulated PGAS layer."""

import pytest

from repro.errors import CommunicationError
from repro.runtime.pgas import PgasCluster


class TestPuts:
    def test_put_lands_in_destination_window(self):
        c = PgasCluster(3)
        c.endpoints[0].put(2, payload="spikes", nbytes=100)
        assert c.endpoints[2].read_window() == ["spikes"]

    def test_read_window_drains(self):
        c = PgasCluster(2)
        c.endpoints[0].put(1, "a", 1)
        c.endpoints[1].read_window()
        assert c.endpoints[1].read_window() == []

    def test_put_invalid_rank(self):
        c = PgasCluster(2)
        with pytest.raises(CommunicationError):
            c.endpoints[0].put(9, None, 0)

    def test_counters(self):
        c = PgasCluster(2)
        c.endpoints[0].put(1, "a", 10)
        c.endpoints[0].put(1, "b", 20)
        assert c.counters[0].puts == 2
        assert c.counters[0].bytes_put == 30

    def test_multiple_sources_accumulate(self):
        c = PgasCluster(3)
        c.endpoints[0].put(2, "a", 1)
        c.endpoints[1].put(2, "b", 1)
        assert sorted(c.endpoints[2].read_window()) == ["a", "b"]


class TestBarrier:
    def test_epoch_advances_when_all_arrive(self):
        c = PgasCluster(3)
        for r in range(3):
            assert c.epoch == 0
            c.endpoints[r].barrier()
        assert c.epoch == 1

    def test_double_arrival_raises(self):
        c = PgasCluster(2)
        c.endpoints[0].barrier()
        with pytest.raises(CommunicationError, match="twice"):
            c.endpoints[0].barrier()

    def test_barrier_counter(self):
        c = PgasCluster(2)
        for _ in range(3):
            c.endpoints[0].barrier()
            c.endpoints[1].barrier()
        assert c.counters[0].barriers == 3
        assert c.counters[1].barriers == 3
