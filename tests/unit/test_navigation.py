"""Unit tests for the closed-loop spiking navigator."""

import numpy as np
import pytest

from repro.apps.navigation import (
    ACTIONS,
    GridWorld,
    SpikingNavigator,
    navigate,
    render,
)


class TestGridWorld:
    def test_corridor_shape(self):
        w = GridWorld.corridor(length=20, width=7)
        assert w.grid.shape == (7, 20)
        assert w.grid[0].all() and w.grid[-1].all()
        assert not w.grid[w.y, w.x]

    def test_sense_open_space(self):
        grid = np.zeros((9, 9), dtype=bool)
        w = GridWorld(grid=grid, y=4, x=4, heading=1)
        assert (w.sense() == 0).all()

    def test_sense_wall_ahead(self):
        grid = np.zeros((5, 5), dtype=bool)
        grid[2, 4] = True
        w = GridWorld(grid=grid, y=2, x=2, heading=1)  # facing east
        left, front, right = w.sense()
        assert front > 0
        assert front > left and front > right

    def test_sense_closer_is_stronger(self):
        grid = np.zeros((5, 9), dtype=bool)
        w_far = GridWorld(grid=grid.copy(), y=2, x=1, heading=1)
        w_far.grid[2, 4] = True
        w_near = GridWorld(grid=grid.copy(), y=2, x=1, heading=1)
        w_near.grid[2, 2] = True
        assert w_near.sense()[1] > w_far.sense()[1]

    def test_act_moves_forward(self):
        grid = np.zeros((5, 5), dtype=bool)
        w = GridWorld(grid=grid, y=2, x=2, heading=1)
        w.act("straight")
        assert (w.y, w.x) == (2, 3)
        assert w.collisions == 0

    def test_act_turn_changes_heading(self):
        grid = np.zeros((5, 5), dtype=bool)
        w = GridWorld(grid=grid, y=2, x=2, heading=1)
        w.act("left")
        assert w.heading == 0  # now facing north, moved north
        assert (w.y, w.x) == (1, 2)

    def test_collision_counted(self):
        grid = np.zeros((3, 3), dtype=bool)
        grid[1, 2] = True
        w = GridWorld(grid=grid, y=1, x=1, heading=1)
        w.act("straight")
        assert w.collisions == 1
        assert (w.y, w.x) == (1, 1)


class TestNavigator:
    def test_open_space_goes_straight(self):
        nav = SpikingNavigator(seed=1)
        action = nav.decide(np.zeros(3), seed=0)
        assert action == "straight"

    def test_obstacle_ahead_forces_turn(self):
        nav = SpikingNavigator(seed=1)
        votes = [nav.decide(np.array([0.0, 1.0, 0.0]), seed=s) for s in range(5)]
        assert all(v in ("left", "right") for v in votes)

    def test_obstacle_left_avoids_left(self):
        nav = SpikingNavigator(seed=1)
        votes = [nav.decide(np.array([1.0, 0.0, 0.4]), seed=s) for s in range(5)]
        assert votes.count("left") == 0

    def test_actions_valid(self):
        nav = SpikingNavigator(seed=2)
        rng = np.random.default_rng(0)
        for s in range(5):
            action = nav.decide(rng.random(3), seed=s)
            assert action in ACTIONS


class TestClosedLoop:
    def test_navigates_corridor(self):
        world = navigate(max_steps=80, seed=3)
        # Reaches (or nearly reaches) the corridor end with few collisions.
        assert world.progress >= world.grid.shape[1] // 2
        assert world.collisions <= world.steps // 4

    def test_render(self):
        world = navigate(max_steps=10, seed=1)
        art = render(world)
        assert "#" in art
        assert any(m in art for m in "^>v<")
