"""Unit tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.runtime.mpi import VirtualMpiCluster


class TestPointToPoint:
    def test_isend_recv(self):
        c = VirtualMpiCluster(3)
        c.endpoints[0].isend(2, payload="data", nbytes=40)
        ep2 = c.endpoints[2]
        assert ep2.iprobe()
        assert ep2.get_count() == 40
        m = ep2.recv()
        assert m.payload == "data"
        assert m.source == 0

    def test_iprobe_empty(self):
        c = VirtualMpiCluster(2)
        assert not c.endpoints[1].iprobe()

    def test_get_count_without_message_raises(self):
        c = VirtualMpiCluster(2)
        with pytest.raises(CommunicationError):
            c.endpoints[1].get_count()

    def test_send_to_invalid_rank(self):
        c = VirtualMpiCluster(2)
        with pytest.raises(CommunicationError):
            c.endpoints[0].isend(5, payload=None, nbytes=0)

    def test_counters(self):
        c = VirtualMpiCluster(2)
        c.endpoints[0].isend(1, "a", 10)
        c.endpoints[0].isend(1, "b", 30)
        c.endpoints[1].recv()
        assert c.counters[0].messages_sent == 2
        assert c.counters[0].bytes_sent == 40
        assert c.counters[1].messages_received == 1
        assert c.counters[1].bytes_received == 10
        total = c.total_counters()
        assert total.messages_sent == 2
        assert c.pending_messages() == 1


class TestReduceScatter:
    def test_counts_sum_per_destination(self):
        c = VirtualMpiCluster(3)
        # rank r sends r messages to every destination.
        for r in range(3):
            c.endpoints[r].reduce_scatter(np.full(3, r, dtype=np.int64))
        results = [c.endpoints[r].reduce_scatter_fetch() for r in range(3)]
        assert results == [3, 3, 3]  # 0 + 1 + 2 per destination
        c.reduce_scatter_finish()

    def test_incomplete_collective_raises(self):
        c = VirtualMpiCluster(2)
        c.endpoints[0].reduce_scatter(np.zeros(2, dtype=np.int64))
        with pytest.raises(CommunicationError, match="incomplete"):
            c.endpoints[0].reduce_scatter_fetch()

    def test_double_contribution_raises(self):
        c = VirtualMpiCluster(2)
        c.endpoints[0].reduce_scatter(np.zeros(2, dtype=np.int64))
        with pytest.raises(CommunicationError, match="twice"):
            c.endpoints[0].reduce_scatter(np.zeros(2, dtype=np.int64))

    def test_wrong_shape_raises(self):
        c = VirtualMpiCluster(3)
        with pytest.raises(CommunicationError):
            c.endpoints[0].reduce_scatter(np.zeros(2, dtype=np.int64))

    def test_finish_resets_for_next_tick(self):
        c = VirtualMpiCluster(2)
        for tick in range(3):
            for r in range(2):
                c.endpoints[r].reduce_scatter(np.ones(2, dtype=np.int64))
            assert c.endpoints[0].reduce_scatter_fetch() == 2
            assert c.endpoints[1].reduce_scatter_fetch() == 2
            c.reduce_scatter_finish()

    def test_listing1_protocol(self):
        """The full Network-phase protocol: RS tells how many to receive."""
        c = VirtualMpiCluster(4)
        sends = {0: [1, 2], 1: [3], 2: [], 3: [0, 1, 2]}
        counts = np.zeros((4, 4), dtype=np.int64)
        for src, dests in sends.items():
            for d in dests:
                c.endpoints[src].isend(d, payload=(src, d), nbytes=20)
                counts[src, d] += 1
        for r in range(4):
            c.endpoints[r].reduce_scatter(counts[r])
        for r in range(4):
            expect = c.endpoints[r].reduce_scatter_fetch()
            got = 0
            while c.endpoints[r].iprobe():
                c.endpoints[r].recv()
                got += 1
            assert got == expect
        c.reduce_scatter_finish()
        assert c.pending_messages() == 0
