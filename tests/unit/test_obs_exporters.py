"""Unit tests for the Perfetto, Prometheus, and JSONL exporters."""

import json

import pytest

from repro.obs import (
    MetricRegistry,
    SpanTracer,
    first_divergence,
    iter_lines,
    read_event_log,
    render_textfile,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
    write_textfile,
)


def _driven_tracer():
    tr = SpanTracer()
    tr.begin_tick(0)
    tr.begin("compile", rank=-1, cat="compile")
    tr.instant("pcc.layout", rank=-1, phase="tick", cat="compile")
    tr.end(rank=-1, cat="compile")
    tr.begin_tick(1)
    tr.span("compute", rank=0, phase="compute", fired=3)
    tr.instant("mpi.send", rank=0, dst=1, nbytes=8)
    tr.span("sync", rank=0, phase="sync")
    tr.tick_summary(1, fired=3)
    return tr


class TestChromeTrace:
    def test_track_layout(self):
        trace = to_chrome_trace(_driven_tracer())
        events = trace["traceEvents"]
        # Compiler events live in pid 1; simulator in pid 0.
        compile_pids = {e["pid"] for e in events if e.get("cat") == "compile"}
        sim_pids = {e["pid"] for e in events if e.get("cat") == "sim"}
        assert compile_pids == {1}
        assert sim_pids == {0}
        # Cluster track is tid 0; rank 0 shifts to tid 1.
        cluster = [e for e in events if e["name"] == "tick"]
        assert cluster and all(e["tid"] == 0 for e in cluster)
        rank0 = [e for e in events if e["name"] == "compute"]
        assert rank0 and all(e["tid"] == 1 for e in rank0)

    def test_metadata_and_shape(self):
        trace = to_chrome_trace(_driven_tracer(), label="demo")
        events = trace["traceEvents"]
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert proc_names[0] == "demo simulator"
        assert proc_names[1] == "demo pcc compiler"
        x = next(e for e in events if e["ph"] == "X")
        assert x["dur"] > 0
        i = next(e for e in events if e["ph"] == "i")
        assert i["s"] == "t"

    def test_validator_accepts_own_output(self):
        assert validate_chrome_trace(to_chrome_trace(_driven_tracer())) == []

    @pytest.mark.parametrize(
        "obj, fragment",
        [
            ([], "top-level"),
            ({}, "traceEvents"),
            ({"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0, "name": "x"}]},
             "unknown phase"),
            ({"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "x",
                               "ts": 0}]}, "non-negative 'dur'"),
            ({"traceEvents": [{"ph": "E", "pid": 0, "tid": 0, "name": "x",
                               "ts": 0}]}, "without matching 'B'"),
            ({"traceEvents": [{"ph": "B", "pid": 0, "tid": 0, "name": "x",
                               "ts": 0}]}, "unclosed 'B'"),
        ],
    )
    def test_validator_rejects(self, obj, fragment):
        errors = validate_chrome_trace(obj)
        assert any(fragment in e for e in errors), errors

    def test_write_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(_driven_tracer(), tmp_path / "t.json")
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []

    def test_validator_flags_out_of_order_timestamp(self):
        trace = to_chrome_trace(_driven_tracer())
        events = trace["traceEvents"]
        # Swap the last two timed events; the sorted invariant breaks.
        events[-1], events[-2] = events[-2], events[-1]
        errors = validate_chrome_trace(trace)
        assert any("timestamp out of order" in e for e in errors), errors

    def test_validator_ignores_metadata_for_ordering(self):
        # M events carry no ts; interleaving them must not trip the check.
        trace = {
            "traceEvents": [
                {"ph": "i", "pid": 0, "tid": 0, "name": "a", "ts": 5.0,
                 "s": "t"},
                {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                 "args": {"name": "x"}},
                {"ph": "i", "pid": 0, "tid": 0, "name": "b", "ts": 6.0,
                 "s": "t"},
            ]
        }
        assert validate_chrome_trace(trace) == []

    def test_validator_reports_malformed_event_and_continues(self):
        trace = {
            "traceEvents": [
                "not an event",
                {"ph": "i", "tid": 0, "name": "", "ts": 1.0},
            ]
        }
        errors = validate_chrome_trace(trace)
        assert any("must be an object" in e for e in errors), errors
        assert any("missing integer 'pid'" in e for e in errors), errors
        assert any("missing event name" in e for e in errors), errors


class TestPrometheus:
    def _registry(self):
        reg = MetricRegistry()
        c = reg.counter("compass_fired_total", help="neurons fired")
        c.inc(0, 3)
        c.inc(1, 4)
        g = reg.gauge("compass_mailbox_depth")
        g.set(0, 2.5)
        h = reg.histogram("compass_msg_bytes", buckets=(8.0, 64.0))
        h.observe(0, 4.0)
        h.observe(0, 100.0)
        return reg

    def test_exposition_format(self):
        text = render_textfile(self._registry())
        assert "# HELP compass_fired_total neurons fired" in text
        assert "# TYPE compass_fired_total counter" in text
        assert 'compass_fired_total{rank="0"} 3' in text
        assert "compass_fired_total 7" in text  # cluster reduction
        assert "compass_mailbox_depth 2.5" in text
        assert 'compass_msg_bytes_bucket{le="+Inf"} 2' in text
        assert "compass_msg_bytes_count 2" in text
        assert text.endswith("\n")

    def test_render_is_deterministic(self):
        assert render_textfile(self._registry()) == render_textfile(self._registry())

    def test_write_textfile(self, tmp_path):
        path = write_textfile(self._registry(), tmp_path / "m.prom")
        assert path.read_text() == render_textfile(self._registry())


class TestJsonl:
    def test_roundtrip_and_byte_identity(self, tmp_path):
        a = write_event_log(_driven_tracer(), tmp_path / "a.jsonl")
        b = write_event_log(_driven_tracer(), tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()
        records = read_event_log(a)
        assert len(records) == len(_driven_tracer().events)
        assert records[0]["name"] == "compile"
        # seq counter must not leak into records (partition invariance).
        assert all("seq" not in r for r in records)

    def test_read_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_event_log(path)

    def test_first_divergence_none_when_identical(self):
        recs = [json.loads(line) for line in iter_lines(_driven_tracer())]
        assert first_divergence(recs, list(recs)) is None

    def test_first_divergence_localises_field(self):
        a = [json.loads(line) for line in iter_lines(_driven_tracer())]
        b = [dict(r) for r in a]
        b[3] = dict(b[3], args=dict(b[3]["args"], fired=99))
        div = first_divergence(a, b)
        assert div.index == 3
        assert "args" in div.describe()
        assert div.tick == a[3]["tick"]

    def test_first_divergence_prefix(self):
        a = [json.loads(line) for line in iter_lines(_driven_tracer())]
        div = first_divergence(a, a[:-1])
        assert div.index == len(a) - 1
        assert div.b is None
        assert "log B ends" in div.describe()

    def test_name_filter(self):
        a = [json.loads(line) for line in iter_lines(_driven_tracer())]
        # Different chatter, same tick summaries -> no divergence by name.
        b = [r for r in a if r["name"] != "mpi.send"]
        assert first_divergence(a, b) is not None
        assert first_divergence(a, b, name="tick") is None

    def test_read_rejects_truncated_file(self, tmp_path):
        """A log cut mid-record (crashed writer) fails loudly, not quietly."""
        full = write_event_log(_driven_tracer(), tmp_path / "full.jsonl")
        text = full.read_text()
        cut = tmp_path / "cut.jsonl"
        cut.write_text(text[: len(text) - 20])  # partial last object
        lastline = len(text.splitlines())
        with pytest.raises(ValueError, match=f"cut.jsonl:{lastline}"):
            read_event_log(cut)

    def test_divergence_on_truncated_log_is_prefix(self, tmp_path):
        """Truncation at a line boundary diverges as a clean prefix."""
        full = write_event_log(_driven_tracer(), tmp_path / "full.jsonl")
        lines = full.read_text().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-2]) + "\n")
        div = first_divergence(read_event_log(full), read_event_log(cut))
        assert div.index == len(lines) - 2
        assert div.b is None
        assert "log B ends" in div.describe()

    def test_first_divergence_on_malformed_record(self):
        """A record with a wrong shape (not a crash) still localises."""
        a = [json.loads(line) for line in iter_lines(_driven_tracer())]
        b = [dict(r) for r in a]
        del b[2]["rank"]  # malformed: field dropped by a buggy writer
        div = first_divergence(a, b)
        assert div.index == 2
        assert "rank" in div.describe()
