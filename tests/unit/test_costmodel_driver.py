"""Unit tests for the perf cost-model driver (phase_times_*)."""

import pytest

from repro.cocomac.model import build_macaque_coreobject
from repro.core.metrics import PhaseTimes
from repro.perf.costmodel import phase_times_mpi, phase_times_pgas, run_times
from repro.perf.traffic import CocomacTraffic
from repro.runtime.machine import BLUE_GENE_P, BLUE_GENE_Q, MachineConfig


@pytest.fixture(scope="module")
def summary():
    model = build_macaque_coreobject(2048 * 256, seed=0)
    return CocomacTraffic(model).summary(256)


class TestPhaseTimes:
    def test_all_phases_positive(self, summary):
        mc = MachineConfig(BLUE_GENE_Q, nodes=256, threads_per_proc=32)
        t = phase_times_mpi(summary, mc)
        assert t.synapse > 0 and t.neuron > 0 and t.network > 0

    def test_more_threads_faster_compute(self, summary):
        mc1 = MachineConfig(BLUE_GENE_Q, nodes=256, threads_per_proc=1)
        mc32 = MachineConfig(BLUE_GENE_Q, nodes=256, threads_per_proc=32)
        t1 = phase_times_mpi(summary, mc1)
        t32 = phase_times_mpi(summary, mc32)
        assert t32.neuron < t1.neuron
        assert t32.synapse < t1.synapse

    def test_pgas_network_cheaper_at_scale(self, summary):
        mc = MachineConfig(BLUE_GENE_P, nodes=256, procs_per_node=1,
                           threads_per_proc=4)
        mpi = phase_times_mpi(summary, mc)
        pgas = phase_times_pgas(summary, mc)
        assert pgas.network < mpi.network
        # Compute phases agree between backends.
        assert pgas.synapse == pytest.approx(mpi.synapse)

    def test_overlap_flag_changes_network_only(self, summary):
        mc = MachineConfig(BLUE_GENE_Q, nodes=256, threads_per_proc=32)
        a = phase_times_mpi(summary, mc, overlap=True)
        b = phase_times_mpi(summary, mc, overlap=False)
        assert b.network >= a.network
        assert b.neuron == a.neuron

    def test_multi_proc_per_node_shares_cache(self, summary):
        """More procs/node must not conjure cache locality from thin air."""
        one = MachineConfig(BLUE_GENE_Q, nodes=256, procs_per_node=1,
                            threads_per_proc=16)
        # Same node count, 4 procs/node -> 1024 ranks.
        model = build_macaque_coreobject(2048 * 256, seed=0)
        ts4 = CocomacTraffic(model).summary(1024)
        four = MachineConfig(BLUE_GENE_Q, nodes=256, procs_per_node=4,
                             threads_per_proc=4)
        t1 = phase_times_mpi(summary, one)
        t4 = phase_times_mpi(ts4, four)
        # Per-node compute work is identical; the 4-proc split may not be
        # more than ~40% faster via thread-model artefacts.
        node_compute_1 = t1.synapse + t1.neuron
        node_compute_4 = t4.synapse + t4.neuron
        assert node_compute_4 > 0.6 * node_compute_1


class TestRunTimes:
    def test_scaling(self):
        per_tick = PhaseTimes(0.001, 0.002, 0.003)
        total = run_times(per_tick, 500)
        assert total.synapse == pytest.approx(0.5)
        assert total.total == pytest.approx(3.0)
