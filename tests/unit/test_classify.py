"""Unit tests for the spiking template classifier."""

import numpy as np
import pytest

from repro.apps.classify import (
    DIGIT_GLYPHS,
    TemplateClassifier,
    glyph_to_array,
    noisy_glyph,
)


@pytest.fixture(scope="module")
def classifier():
    return TemplateClassifier(DIGIT_GLYPHS)


class TestGlyphs:
    def test_shapes(self):
        for glyph in DIGIT_GLYPHS.values():
            assert glyph_to_array(glyph).shape == (8, 8)

    def test_glyphs_distinct(self):
        arrays = [glyph_to_array(g) for g in DIGIT_GLYPHS.values()]
        for i in range(len(arrays)):
            for j in range(i + 1, len(arrays)):
                assert not np.array_equal(arrays[i], arrays[j])

    def test_noisy_glyph_flips_exact_count(self):
        clean = glyph_to_array(DIGIT_GLYPHS[0])
        noisy = noisy_glyph(0, flips=5, seed=3)
        assert (clean != noisy).sum() == 5


class TestClassification:
    def test_clean_glyphs_classified_correctly(self, classifier):
        for label in DIGIT_GLYPHS:
            img = glyph_to_array(DIGIT_GLYPHS[label])
            assert classifier.classify(img) == label

    def test_robust_to_small_noise(self, classifier):
        correct = 0
        cases = 0
        for label in DIGIT_GLYPHS:
            for seed in range(3):
                img = noisy_glyph(label, flips=3, seed=seed)
                correct += classifier.classify(img) == label
                cases += 1
        assert correct / cases >= 0.8

    def test_accuracy_helper(self, classifier):
        samples = [
            (glyph_to_array(DIGIT_GLYPHS[k]), k) for k in DIGIT_GLYPHS
        ]
        assert classifier.accuracy(samples) == 1.0

    def test_rejects_wrong_shape(self, classifier):
        with pytest.raises(ValueError):
            classifier.classify(np.zeros((4, 4)))

    def test_rejects_empty_templates(self):
        with pytest.raises(ValueError):
            TemplateClassifier({})

    def test_rejects_empty_accuracy(self, classifier):
        with pytest.raises(ValueError):
            classifier.accuracy([])
