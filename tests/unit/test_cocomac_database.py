"""Unit tests for the synthetic CoCoMac database."""

import networkx as nx

from repro.cocomac.database import (
    FULL_EDGES,
    FULL_REGIONS,
    ConnectivityDatabase,
    Region,
    synthetic_cocomac,
)


class TestPublishedStatistics:
    def test_region_count(self):
        # §V-B: 383 hierarchically organised regions.
        assert synthetic_cocomac().n_regions == FULL_REGIONS == 383

    def test_edge_count(self):
        # §V-B: 6,602 directed edges.
        assert synthetic_cocomac().n_edges == FULL_EDGES == 6602

    def test_classes_span_cortex_thalamus_basal_ganglia(self):
        db = synthetic_cocomac()
        classes = {r.region_class for r in db.regions}
        assert classes == {"cortical", "thalamic", "basal_ganglia"}

    def test_top_level_count(self):
        db = synthetic_cocomac()
        assert len(db.top_level()) == 102

    def test_deterministic_given_seed(self):
        a, b = synthetic_cocomac(5), synthetic_cocomac(5)
        assert a.edges == b.edges

    def test_different_seed_differs(self):
        assert synthetic_cocomac(1).edges != synthetic_cocomac(2).edges


class TestStructure:
    def test_no_self_loops(self):
        db = synthetic_cocomac()
        assert all(a != b for a, b in db.edges)

    def test_hierarchy_parents_valid(self):
        db = synthetic_cocomac()
        indices = {r.index for r in db.regions}
        for r in db.regions:
            assert r.parent == -1 or r.parent in indices

    def test_edges_only_between_reporting_regions(self):
        db = synthetic_cocomac()
        reporting = {r.index for r in db.regions if r.reports}
        for a, b in db.edges:
            assert a in reporting and b in reporting

    def test_children_of(self):
        db = synthetic_cocomac()
        some_parent = next(r for r in db.regions if r.reports and r.parent == -1)
        for child in db.children_of(some_parent.index):
            assert child.parent == some_parent.index

    def test_graph_view(self):
        db = synthetic_cocomac()
        g = db.graph()
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 383
        assert g.number_of_edges() == 6602

    def test_adjacency_matches_edges(self):
        db = ConnectivityDatabase(
            regions=[
                Region(0, "a", "cortical", -1, True),
                Region(1, "b", "cortical", -1, True),
            ],
            edges={(0, 1)},
        )
        m = db.adjacency()
        assert m[0, 1] == 1 and m[1, 0] == 0

    def test_degree_distribution_is_skewed(self):
        """Preferential attachment: hubs exist."""
        db = synthetic_cocomac()
        g = db.graph()
        degrees = sorted((d for _, d in g.degree()), reverse=True)
        top10 = sum(degrees[:10])
        assert top10 > 0.15 * 2 * db.n_edges
