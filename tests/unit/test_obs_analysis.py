"""Unit tests for repro.obs.analysis: critical path, flame, imbalance,
bench history, and the perf-regression gate."""

import json
import re
from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.obs import SpanTracer
from repro.obs.analysis import (
    analyze_report,
    append_history,
    critical_path,
    flame_table,
    fold_stacks,
    format_critical_report,
    format_folded,
    format_gate_report,
    format_imbalance_report,
    gate_results,
    imbalance_heatmap,
    invariant_section,
    load_bench_results,
    load_events,
    load_history,
    merge_folded,
    parse_folded,
    record_from_bench,
    require_file,
)
from repro.obs.analysis.critical import INVARIANT_MARKER, span_cost
from repro.obs.analysis.regress import failures, is_gated


def _tracer(ticks=3, ranks=2, skew_rank=1):
    """A hand-driven tracer shaped like the simulator's event stream.

    ``skew_rank`` gets double the compute work so the binding rank is
    known; sync/network keep fixed per-rank attributes.
    """
    tr = SpanTracer()
    for tick in range(ticks):
        tr.begin_tick(tick)
        for rank in range(ranks):
            axons = 10 * (2 if rank == skew_rank else 1)
            fired = 4 * (2 if rank == skew_rank else 1)
            tr.span("compute", rank=rank, phase="compute", tick=tick,
                    active_axons=axons, fired=fired, local_spikes=2,
                    remote_spikes=1)
            tr.span("synapse", rank=rank, phase="synapse", tick=tick,
                    active_axons=axons)
            tr.span("neuron", rank=rank, phase="neuron", tick=tick,
                    fired=fired, messages=1)
            tr.span("sync", rank=rank, phase="sync", tick=tick,
                    sent=1, expected=1)
            tr.instant("mailbox.deliver", rank=rank, phase="network",
                       tick=tick, nbytes=64)
            tr.span("network", rank=rank, phase="network", tick=tick,
                    messages=1, spikes_received=3, bytes_received=64,
                    local_delivered=2)
        tr.tick_summary(tick, fired=12 * (tick + 1), spikes=18,
                        neurons=512, active_axons=30)
    return tr


class TestCriticalPath:
    def test_binding_rank_and_phase(self):
        cp = critical_path(load_events(_tracer()))
        assert len(cp.ticks) == 3
        for t in cp.ticks:
            assert t.phase == "compute"  # compute work dominates
            assert t.rank == 1  # the skewed rank binds
        assert cp.binding_phase == "compute"

    def test_tick_cost_is_sum_of_phase_maxima(self):
        cp = critical_path(load_events(_tracer()))
        t = cp.ticks[0]
        assert t.cost == sum(c for _, _, c in t.phases)
        phases = [p for p, _, _ in t.phases]
        assert phases == ["compute", "sync", "network"]

    def test_tie_breaks_to_lowest_rank(self):
        cp = critical_path(load_events(_tracer(skew_rank=-1)))  # no skew
        assert all(t.rank == 0 for t in cp.ticks)

    def test_span_cost_weights(self):
        assert span_cost("compute", {"active_axons": 3, "fired": 2,
                                     "remote_spikes": 1}) == 1 + 3 + 8 + 2
        assert span_cost("sync", {"sent": 2, "expected": 5}) == 8
        assert span_cost("network", {"messages": 2, "spikes_received": 3,
                                     "local_delivered": 4}) == 1 + 32 + 7

    def test_cluster_totals_from_tick_summaries(self):
        cp = critical_path(load_events(_tracer()))
        totals = dict((m, (total, mx)) for m, total, mx in cp.cluster_totals)
        assert totals["fired"] == (12 + 24 + 36, 36)
        assert totals["neurons"] == (3 * 512, 512)

    def test_report_is_deterministic_and_sectioned(self):
        events = load_events(_tracer())
        a = format_critical_report(critical_path(events))
        b = format_critical_report(critical_path(list(events)))
        assert a == b
        assert INVARIANT_MARKER in a
        assert invariant_section(a).startswith(INVARIANT_MARKER)

    def test_empty_stream_yields_empty_path(self):
        cp = critical_path([])
        assert cp.ticks == ()
        assert cp.binding_phase == "none"
        assert "critical-path report" in format_critical_report(cp)


class TestFlame:
    def test_leaf_spans_weighted_by_work(self):
        folded = fold_stacks(load_events(_tracer(ticks=1, ranks=1,
                                                 skew_rank=-1)))
        # synapse cost = 1 + active_axons (10).
        assert folded["rank 0;compute;synapse"] == 11
        # network self excludes the instant child, counted separately.
        assert folded["rank 0;network;mailbox.deliver"] == 1
        assert "rank 0;compute" not in folded  # interior-only frame

    def test_cluster_subtree_carries_tick_totals(self):
        folded = fold_stacks(load_events(_tracer()))
        assert folded["cluster;tick;fired"] == 72
        assert folded["cluster;tick;neurons"] == 3 * 512

    def test_begin_end_frames_nest(self):
        tr = SpanTracer()
        tr.begin("compile", rank=-1, cat="compile")
        tr.instant("pcc.layout", rank=-1, phase="tick", cat="compile")
        tr.begin("wire", rank=-1, cat="compile")
        tr.end(rank=-1, cat="compile")
        tr.end(rank=-1, cat="compile")
        folded = fold_stacks(load_events(tr))
        assert folded["cluster;compile;pcc.layout"] == 1
        assert folded["cluster;compile;wire"] == 1
        assert "cluster;compile" not in folded  # had inner events

    def test_folded_text_sorted_and_stable(self):
        events = load_events(_tracer())
        text = format_folded(events)
        assert text == format_folded(list(events))
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert all(" " in line for line in lines)

    def test_flame_table_totals_include_children(self):
        events = load_events(_tracer(ticks=1, ranks=1, skew_rank=-1))
        table = flame_table(events)
        assert "frame" in table and "total%" in table
        # The rank root aggregates all its leaves (self 0, total = sum).
        folded = fold_stacks(events)
        rank_total = sum(w for p, w in folded.items() if p.startswith("rank 0"))
        match = re.search(r"^\s*rank 0\s+0\s+(\d+)", table, re.M)
        assert match, table
        assert int(match.group(1)) == rank_total

    def test_omp_thread_spans_excluded(self):
        tr = _tracer(ticks=1, ranks=1)
        tr.span("omp-thread", rank=0, phase="compute", tick=0, cat="threads",
                core_lo=0, core_hi=8)
        folded = fold_stacks(load_events(tr))
        assert not any("omp-thread" in key for key in folded)


class TestParseMergeFolded:
    def test_round_trips_formatted_output(self):
        events = load_events(_tracer())
        assert parse_folded(format_folded(events)) == fold_stacks(events)

    def test_duplicate_paths_accumulate(self):
        assert parse_folded("a;b 2\na;b 3\n") == {"a;b": 5}

    def test_empty_input_raises(self):
        with pytest.raises(AnalysisError, match="empty"):
            parse_folded("")

    def test_blank_line_raises_with_lineno(self):
        with pytest.raises(AnalysisError, match="line 2"):
            parse_folded("a;b 1\n\na;c 1\n")

    def test_missing_weight_raises(self):
        with pytest.raises(AnalysisError, match="expected 'stack weight'"):
            parse_folded("just-a-path\n")

    def test_non_integer_weight_raises(self):
        with pytest.raises(AnalysisError, match="not an integer"):
            parse_folded("a;b lots\n")

    def test_negative_weight_raises(self):
        with pytest.raises(AnalysisError, match="negative"):
            parse_folded("a;b -3\n")

    def test_merge_keeps_host_and_span_roots_disjoint(self):
        span_folded = fold_stacks(load_events(_tracer(ticks=1, ranks=1,
                                                      skew_rank=-1)))
        host_folded = {"host;repro.core.simulator:step": 40,
                       "host;repro.arch.coreblock:integrate": 9}
        merged = merge_folded(span_folded, host_folded)
        assert merged["host;repro.core.simulator:step"] == 40
        assert merged["rank 0;compute;synapse"] == 11
        roots = {path.split(";")[0] for path in merged}
        assert {"host", "rank 0", "cluster"} <= roots

    def test_merge_sums_shared_paths(self):
        assert merge_folded({"a;b": 1}, {"a;b": 2}, {"c": 4}) == {
            "a;b": 3, "c": 4,
        }


class TestImbalance:
    def test_rows_keyed_by_phase_metric(self):
        rows = imbalance_heatmap(load_events(_tracer()))
        sections = [r.section for r in rows]
        assert "compute/active_axons" in sections
        assert "sync/sent" in sections
        assert sections == sorted(sections)

    def test_max_over_mean_values(self):
        rows = imbalance_heatmap(load_events(_tracer()))
        by_section = {r.section: r for r in rows}
        # axons: [10, 20] -> max/mean = 20/15.
        for tick, ratio in by_section["compute/active_axons"].ticks:
            assert ratio == pytest.approx(20 / 15)
        # sync perfectly balanced.
        for tick, ratio in by_section["sync/sent"].ticks:
            assert ratio == 1.0

    def test_hot_tick_flagged(self):
        tr = _tracer(ticks=8, ranks=2, skew_rank=-1)
        tr.begin_tick(8)
        tr.span("compute", rank=0, phase="compute", tick=8,
                active_axons=100, fired=0, local_spikes=0, remote_spikes=0)
        tr.span("compute", rank=1, phase="compute", tick=8,
                active_axons=1, fired=0, local_spikes=0, remote_spikes=0)
        rows = imbalance_heatmap(load_events(tr))
        row = {r.section: r for r in rows}["compute/active_axons"]
        assert row.hot_ticks == (8,)
        assert row.worst[0] == 8

    def test_report_renders(self):
        report = format_imbalance_report(
            imbalance_heatmap(load_events(_tracer()))
        )
        assert "per-tick imbalance" in report
        assert "compute/fired" in report


class TestAnalyzeReport:
    def test_invariant_section_is_trailing(self):
        report = analyze_report(load_events(_tracer()))
        assert report.endswith(invariant_section(report))
        assert "per-tick imbalance" in report
        assert "who bounded the run" in report


class TestLoadEvents:
    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such event log"):
            load_events(tmp_path / "nope.jsonl")

    def test_empty_file_raises_typed_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(AnalysisError, match="empty"):
            load_events(empty)

    def test_blank_log_raises(self, tmp_path):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n")
        with pytest.raises(AnalysisError, match="no records"):
            load_events(blank)

    def test_require_file_accepts_real_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("{}\n")
        assert require_file(path, "event log") == path


def _bench_payload(name="tick_throughput", mean=0.1, derived=None,
                   fingerprint="abc123def456"):
    return {
        "schema": 2,
        "name": name,
        "sha": "deadbee",
        "version": "0.1.0",
        "fingerprint": fingerprint,
        "params": {"cores": 128},
        "samples": [mean],
        "stats": {"n": 1, "min": mean, "max": mean, "mean": mean,
                  "stddev": 0.0},
        "derived": dict(derived or {}),
    }


class TestHistory:
    def test_record_extracts_metrics(self):
        rec = record_from_bench(
            _bench_payload(derived={"s_per_tick_disabled": 0.002,
                                    "label": "not-a-number"})
        )
        assert rec["name"] == "tick_throughput"
        assert rec["sha"] == "deadbee"
        assert rec["fingerprint"] == "abc123def456"
        assert rec["metrics"] == {"time_s": 0.1, "s_per_tick_disabled": 0.002}

    def test_record_requires_name(self):
        with pytest.raises(AnalysisError):
            record_from_bench({"stats": {}})

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        rec = record_from_bench(_bench_payload())
        append_history(path, [rec])
        append_history(path, [rec])
        records = load_history(path)
        assert len(records) == 2
        assert records[0] == records[1] == rec

    def test_load_missing_history_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="missing"):
            load_history(tmp_path / "none.jsonl")
        assert load_history(tmp_path / "none.jsonl", allow_missing=True) == []

    def test_load_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"name": "x", "metrics": {}}\nnot json\n')
        with pytest.raises(AnalysisError, match="hist.jsonl:2"):
            load_history(path)

    def test_load_bench_results_requires_dir_with_results(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such results"):
            load_bench_results(tmp_path / "missing")
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(AnalysisError, match="no BENCH"):
            load_bench_results(empty)
        (empty / "BENCH_x.json").write_text(
            json.dumps(_bench_payload(name="x"))
        )
        assert [p["name"] for p in load_bench_results(empty)] == ["x"]


class TestGate:
    def _history(self, *means, derived_key="s_per_tick_disabled",
                 derived_scale=0.02):
        return [
            record_from_bench(
                _bench_payload(mean=m,
                               derived={derived_key: m * derived_scale})
            )
            for m in means
        ]

    def test_identical_result_passes(self):
        history = self._history(0.1)
        verdicts = gate_results([_bench_payload(
            mean=0.1, derived={"s_per_tick_disabled": 0.002})], history)
        assert failures(verdicts) == []

    def test_20_percent_regression_fails_and_names_offender(self):
        history = self._history(0.1)
        bad = _bench_payload(mean=0.12,
                             derived={"s_per_tick_disabled": 0.0024})
        verdicts = gate_results([bad], history)
        offenders = failures(verdicts)
        assert offenders, "20% regression must fail the gate"
        assert {(v.bench, v.metric) for v in offenders} == {
            ("tick_throughput", "time_s"),
            ("tick_throughput", "s_per_tick_disabled"),
        }
        report = format_gate_report(verdicts)
        assert "FAILED" in report
        assert "tick_throughput/time_s" in report

    def test_long_history_uses_mad_band(self):
        history = self._history(0.100, 0.101, 0.099, 0.100, 0.102)
        # 10% above median: inside rel_tol floor (15%), so ok even though
        # the MAD band alone (4 * 1.4826 * 0.001) would flag it.
        ok = gate_results([_bench_payload(mean=0.110)], history)
        assert failures(ok) == []
        bad = gate_results([_bench_payload(mean=0.120)], history)
        assert failures(bad)

    def test_fingerprint_mismatch_means_no_history(self):
        history = self._history(0.1)
        changed = _bench_payload(mean=0.5, fingerprint="ffffffffffff")
        verdicts = gate_results([changed], history)
        assert failures(verdicts) == []
        gated = [v for v in verdicts if v.gated and v.metric == "time_s"]
        assert gated[0].n_history == 0
        assert "no history" in gated[0].reason

    def test_improvement_passes(self):
        history = self._history(0.1)
        verdicts = gate_results([_bench_payload(mean=0.05)], history)
        assert failures(verdicts) == []

    def test_untracked_metrics_not_gated(self):
        assert is_gated("time_s")
        assert is_gated("s_per_tick_enabled")
        assert is_gated("interval_10_total_overhead_s")
        assert not is_gated("speedup_8_racks")
        assert not is_gated("mean_rate_hz")

    def test_memory_and_host_cost_metrics_gated_uniformly(self):
        # Satellite of the profiling PR: every mem_* and *_nbytes metric
        # gates lower-is-better, as does host interpreter cost per work
        # unit — regardless of which bench emitted it.
        assert is_gated("mem_peak_nbytes")
        assert is_gated("peak_state_nbytes")
        assert is_gated("checkpoint_nbytes")
        assert is_gated("mem_current_nbytes")
        assert is_gated("host_ns_per_work_unit")

    def test_synthetic_memory_regression_fails_by_name(self):
        history = [
            record_from_bench(
                _bench_payload(mean=0.1,
                               derived={"mem_peak_nbytes": 1_000_000.0})
            )
        ]
        grown = _bench_payload(mean=0.1,
                               derived={"mem_peak_nbytes": 1_600_000.0})
        offenders = failures(gate_results([grown], history))
        assert {(v.bench, v.metric) for v in offenders} == {
            ("tick_throughput", "mem_peak_nbytes"),
        }
        report = format_gate_report(gate_results([grown], history))
        assert "tick_throughput/mem_peak_nbytes" in report
        assert "FAILED" in report

    RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

    def test_gate_passes_on_committed_repo_history(self):
        """The committed BENCH results gate cleanly against the committed
        bench history (the acceptance criterion CI relies on)."""
        results = load_bench_results(self.RESULTS_DIR)
        history = load_history(self.RESULTS_DIR / "bench_history.jsonl")
        verdicts = gate_results(results, history)
        assert failures(verdicts) == [], format_gate_report(verdicts)

    def test_synthetic_regression_on_committed_history_fails(self):
        results = load_bench_results(self.RESULTS_DIR)
        history = load_history(self.RESULTS_DIR / "bench_history.jsonl")
        bumped = []
        for payload in results:
            if payload["name"] != "tick_throughput":
                continue
            payload = json.loads(json.dumps(payload))  # deep copy
            payload["stats"]["mean"] *= 1.2
            for key in payload["derived"]:
                if key.startswith("s_per_tick"):
                    payload["derived"][key] *= 1.2
            bumped.append(payload)
        assert bumped, "committed results must include tick_throughput"
        offenders = failures(gate_results(bumped, history))
        assert offenders
        assert all(v.bench == "tick_throughput" for v in offenders)
