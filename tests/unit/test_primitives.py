"""Unit tests for functional core primitives."""

import numpy as np
import pytest

from repro.apps.primitives import (
    configure_majority,
    configure_relay,
    configure_splitter,
    configure_wta,
)
from repro.arch.network import CoreNetwork
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


def run_single_core(net: CoreNetwork, injections: dict[int, list[int]], ticks: int):
    sim = Compass(net, CompassConfig(record_spikes=True))
    for tick, axons in injections.items():
        for a in axons:
            sim.inject(0, a, tick)
    sim.run(ticks)
    return sim.recorder.to_arrays()


class TestRelay:
    def test_one_to_one(self):
        net = CoreNetwork(1)
        configure_relay(net, 0)
        t, g, n = run_single_core(net, {0: [3, 100]}, 3)
        assert set(zip(t, n)) == {(0, 3), (0, 100)}


class TestSplitter:
    def test_fanout(self):
        net = CoreNetwork(1)
        configure_splitter(net, 0, fanout=4)
        t, g, n = run_single_core(net, {0: [2]}, 2)
        assert set(n) == {8, 9, 10, 11}

    def test_bad_fanout(self):
        net = CoreNetwork(1)
        with pytest.raises(ValueError):
            configure_splitter(net, 0, fanout=0)


class TestMajority:
    def test_quorum_met(self):
        net = CoreNetwork(1)
        configure_majority(net, 0, group=4, quorum=3)
        # neuron 1 watches axons 4..7; 3 of them spike -> fires
        t, g, n = run_single_core(net, {0: [4, 5, 6]}, 2)
        assert set(n) == {1}

    def test_quorum_not_met(self):
        net = CoreNetwork(1)
        configure_majority(net, 0, group=4, quorum=3)
        t, g, n = run_single_core(net, {0: [4, 5]}, 2)
        assert n.size == 0

    def test_bad_quorum(self):
        net = CoreNetwork(1)
        with pytest.raises(ValueError):
            configure_majority(net, 0, group=4, quorum=5)

    def test_no_potential_carryover_between_presentations(self):
        net = CoreNetwork(1)
        configure_majority(net, 0, group=4, quorum=3)
        # two sub-quorum presentations must not add up (floor=0, reset)...
        # they do accumulate within the membrane unless a leak clears it;
        # quorum cores rely on same-tick coincidence, so present in one tick.
        t, g, n = run_single_core(net, {0: [4, 5], 1: [6]}, 3)
        # accumulation across ticks is real TrueNorth behaviour: the
        # membrane integrates. 2 + 1 events reach threshold 3 at tick 1.
        assert set(t[n == 1]) == {1}


class TestWta:
    def test_strongest_channel_wins(self):
        net = CoreNetwork(1)
        configure_wta(net, 0, n_channels=4, threshold=2)
        sim = Compass(net, CompassConfig(record_spikes=True))
        # channel 2 driven twice per tick (excite axon 2); others once.
        for tick in range(4):
            sim.inject(0, 2, tick)
        sim.run(6)
        t, g, n = sim.recorder.to_arrays()
        assert 2 in set(n)
        assert set(n) <= {2}

    def test_too_many_channels(self):
        net = CoreNetwork(1)
        with pytest.raises(ValueError):
            configure_wta(net, 0, n_channels=200)
