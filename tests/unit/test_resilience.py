"""Unit tests for repro.resilience: faults, detection, recovery, report.

The load-bearing property throughout: recovery preserves the bit-
determinism contract — a faulted-and-recovered run produces the same
spike raster as an uninterrupted run of the same seed (the integration
suite covers the macaque-scale version of this claim).
"""

import numpy as np
import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.errors import (
    MessageCorruptionError,
    RankFailureError,
    RecoveryExhaustedError,
)
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultSchedule,
    HeartbeatConfig,
    HeartbeatMonitor,
    LinkDegrade,
    MessageCorruption,
    MessageDrop,
    MessageDuplicate,
    RankCrash,
    RecoveryPolicy,
    ResilientRunner,
    StragglerThread,
    spike_digest,
)

TICKS = 24


@pytest.fixture(scope="module")
def net():
    return build_quickstart_network(n_cores=4, seed=3)


@pytest.fixture(scope="module")
def factory(net):
    cfg = CompassConfig(n_processes=2, record_spikes=True)

    def make():
        return Compass(net, cfg)

    return make


@pytest.fixture(scope="module")
def clean_digest(factory):
    return spike_digest(factory().run(TICKS).spikes)


class TestFaultSchedule:
    def test_events_sorted_canonically(self):
        s = FaultSchedule(
            [RankCrash(tick=9, rank=0), MessageDrop(tick=2, source=1, dest=0)]
        )
        assert [e.tick for e in s] == [2, 9]

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(seed=11, ticks=50, n_ranks=4, crashes=2, drops=3)
        b = FaultSchedule.random(seed=11, ticks=50, n_ranks=4, crashes=2, drops=3)
        assert a.events == b.events
        c = FaultSchedule.random(seed=12, ticks=50, n_ranks=4, crashes=2, drops=3)
        assert a.events != c.events

    def test_rejects_negative_tick(self):
        with pytest.raises(ValueError, match="negative tick"):
            FaultSchedule([RankCrash(tick=-1, rank=0)])

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSchedule([LinkDegrade(tick=0, duration=0, dim=0, factor=2.0)])
        with pytest.raises(ValueError, match="factor"):
            FaultSchedule([StragglerThread(tick=0, duration=2, rank=0, factor=0.5)])


class TestClusterPrimitives:
    def test_fail_and_revive_rank(self, net):
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.cluster.fail_rank(1)
        assert sim.cluster.dead == {1}
        with pytest.raises(RankFailureError):
            sim.step()
        sim.cluster.revive_rank(1)
        sim.cluster.reset_communication()
        assert sim.cluster.dead == set()

    def test_mailbox_purge(self, net):
        sim = Compass(net, CompassConfig(n_processes=2))
        ep = sim.cluster.endpoints[0]
        ep.isend(1, b"keep", 4)
        ep.isend(1, b"drop", 4)
        removed = sim.cluster.mailboxes[1].purge(lambda m: m.payload == b"drop")
        assert removed == 1
        assert len(sim.cluster.mailboxes[1]) == 1

    def test_corruption_detected_by_checksum(self, net):
        sched = FaultSchedule([MessageCorruption(tick=0, source=0, dest=1)])
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.cluster.injector = FaultInjector(sched)
        with pytest.raises(MessageCorruptionError, match="checksum"):
            for _ in range(TICKS):
                sim.cluster.injector.begin_tick(sim.cluster, sim.tick)
                sim.step()


class TestRecoveryDigests:
    @pytest.mark.parametrize("kind", ["restart", "spare"])
    def test_crash_recovery_is_bit_exact(self, factory, clean_digest, kind):
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([RankCrash(tick=7, rank=1)]),
            checkpoint_interval=5,
            policy=RecoveryPolicy(kind=kind),
        )
        result = runner.run(TICKS)
        assert spike_digest(result.spikes) == clean_digest
        assert len(runner.report.failures) == 1
        assert runner.report.lost_ticks == 2  # crash at 7, checkpoint at 5
        assert result.metrics.ticks == TICKS

    @pytest.mark.parametrize(
        "event",
        [
            MessageDrop(tick=6, source=0, dest=1),
            MessageCorruption(tick=6, source=1, dest=0),
        ],
        ids=["drop", "corrupt"],
    )
    def test_message_fault_recovery_is_bit_exact(self, factory, clean_digest, event):
        runner = ResilientRunner(
            factory, schedule=FaultSchedule([event]), checkpoint_interval=5
        )
        result = runner.run(TICKS)
        assert spike_digest(result.spikes) == clean_digest
        assert len(runner.report.failures) == 1

    def test_duplicate_absorbed_without_rollback(self, factory, clean_digest):
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([MessageDuplicate(tick=6, source=0, dest=1)]),
            checkpoint_interval=5,
        )
        result = runner.run(TICKS)
        assert spike_digest(result.spikes) == clean_digest
        # OR-idempotent delivery + transport dedup: no recovery needed.
        assert runner.report.failures == []
        assert runner.injector.duplicated == 1
        assert runner.report.duplicates_discarded == 1

    def test_metrics_match_uninterrupted_run(self, factory):
        clean = factory().run(TICKS)
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([RankCrash(tick=7, rank=0)]),
            checkpoint_interval=5,
        )
        result = runner.run(TICKS)
        assert result.metrics.total_fired == clean.metrics.total_fired
        assert result.metrics.total_messages == clean.metrics.total_messages
        assert result.metrics.ticks == clean.metrics.ticks
        assert result.metrics.overhead_s > 0

    def test_same_schedule_same_digest(self, factory):
        sched = FaultSchedule.random(seed=5, ticks=TICKS, n_ranks=2, crashes=1, drops=1)
        a = ResilientRunner(factory, schedule=sched, checkpoint_interval=6).run(TICKS)
        b = ResilientRunner(factory, schedule=sched, checkpoint_interval=6).run(TICKS)
        assert spike_digest(a.spikes) == spike_digest(b.spikes)


class TestRecoveryPolicy:
    def test_exhaustion_raises(self, factory):
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([RankCrash(tick=3, rank=0)]),
            checkpoint_interval=5,
            policy=RecoveryPolicy(max_retries=0),
        )
        with pytest.raises(RecoveryExhaustedError):
            runner.run(10)

    def test_backoff_doubles(self):
        p = RecoveryPolicy(kind="restart", backoff_base_s=0.5)
        assert p.wait_s(1) == 0.5
        assert p.wait_s(2) == 1.0
        assert p.wait_s(3) == 2.0

    def test_spare_wait_is_flat(self):
        p = RecoveryPolicy(kind="spare", spare_takeover_s=0.05)
        assert p.wait_s(1) == p.wait_s(3) == 0.05

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            RecoveryPolicy(kind="reboot")

    def test_refuses_sanitized_simulator(self, net):
        def make():
            return Compass(net, CompassConfig(n_processes=2), sanitize=True)

        with pytest.raises(ValueError, match="sanitizer"):
            ResilientRunner(make)


class TestHeartbeat:
    def test_declares_after_miss_threshold(self):
        mon = HeartbeatMonitor(2, HeartbeatConfig(miss_threshold=3))
        assert mon.observe_tick(0, [0]) == []
        assert mon.observe_tick(1, [0]) == []
        (failure,) = mon.observe_tick(2, [0])
        assert failure.rank == 1
        assert failure.crash_tick == 0
        assert failure.detected_tick == 2

    def test_resumed_rank_is_forgiven(self):
        mon = HeartbeatMonitor(2, HeartbeatConfig(miss_threshold=3))
        mon.observe_tick(0, [0])
        mon.observe_tick(1, [0, 1])  # back before the threshold
        assert mon.observe_tick(2, [0]) == []

    def test_reset_after_recovery(self):
        mon = HeartbeatMonitor(1, HeartbeatConfig(miss_threshold=1))
        assert mon.observe_tick(0, []) != []
        mon.reset(0)
        assert mon.observe_tick(1, [0]) == []
        assert mon.observe_tick(2, []) != []

    def test_detection_latency_scales_with_tick_time(self):
        cfg = HeartbeatConfig(miss_threshold=3)
        assert cfg.detection_latency_ticks == 3
        slow = cfg.detection_latency_s(4, mean_tick_s=0.1)
        fast = cfg.detection_latency_s(4, mean_tick_s=0.0)
        assert slow > fast > 0


class TestTimingFaults:
    def test_timing_faults_charge_overhead_not_spikes(self, net):
        cfg = CompassConfig.for_blue_gene_q(nodes=2, record_spikes=True)

        def make():
            return Compass(net, cfg)

        clean = make().run(TICKS)
        sched = FaultSchedule(
            [
                LinkDegrade(tick=4, duration=3, dim=0, factor=4.0),
                StragglerThread(tick=8, duration=2, rank=1, factor=3.0),
            ]
        )
        runner = ResilientRunner(make, schedule=sched, checkpoint_interval=10)
        result = runner.run(TICKS)
        assert spike_digest(result.spikes) == spike_digest(clean.spikes)
        assert runner.report.degraded_extra_s > 0
        assert runner.report.straggler_extra_s > 0
        assert result.metrics.simulated.total > clean.metrics.simulated.total

    def test_straggler_factor_is_team_bound(self):
        inj = FaultInjector(
            FaultSchedule([StragglerThread(tick=0, duration=5, rank=1, factor=3.0)])
        )
        # Static partition: one slow thread drags the whole team.
        assert inj.compute_factor(2, rank=1, n_threads=4) == 3.0
        assert inj.compute_factor(2, rank=0, n_threads=4) == 1.0
        assert inj.compute_factor(7, rank=1, n_threads=4) == 1.0  # window over
        assert inj.max_straggler_factor(2, n_ranks=2, n_threads=4) == 3.0

    def test_network_factor_uses_crossing_fraction(self):
        from repro.runtime.torus import TorusTopology

        inj = FaultInjector(
            FaultSchedule([LinkDegrade(tick=0, duration=5, dim=0, factor=3.0)])
        )
        topo = TorusTopology((4, 2))
        expected = 1.0 + (1.0 - 1.0 / 4) * 2.0
        assert inj.network_factor(2, topo) == pytest.approx(expected)
        assert inj.network_factor(9, topo) == 1.0  # window over
        # Without a topology the whole phase scales by the raw factor.
        assert inj.network_factor(2, None) == pytest.approx(3.0)


class TestReport:
    def test_summary_fields(self, factory):
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([RankCrash(tick=7, rank=1)]),
            checkpoint_interval=5,
            costs=CheckpointCostModel(alpha_s=0.01),
        )
        runner.run(TICKS)
        s = runner.report.summary()
        assert s["failures"] == 1
        assert s["lost_ticks"] == 2
        assert s["checkpoints"] == runner.report.n_checkpoints > 0
        assert s["time_to_recover_s"] > 0
        assert s["total_overhead_s"] >= s["checkpoint_overhead_s"]

    def test_format_mentions_key_quantities(self, factory):
        runner = ResilientRunner(
            factory,
            schedule=FaultSchedule([RankCrash(tick=7, rank=1)]),
            checkpoint_interval=5,
        )
        runner.run(TICKS)
        text = runner.report.format()
        assert "checkpoint overhead" in text
        assert "lost ticks" in text
        assert "time to recover" in text
        assert "RankFailureError" in text

    def test_overhead_fraction(self):
        from repro.resilience.report import RecoveryReport

        r = RecoveryReport(checkpoint_interval=5, policy="restart")
        r.note_checkpoint(5, 0.5)
        assert r.overhead_fraction(10.0) == pytest.approx(0.05)
        assert r.overhead_fraction(0.0) == 0.0


class TestLintClean:
    def test_resilience_package_lints_clean(self):
        from pathlib import Path

        import repro.resilience
        from repro.check.lint import run_lint

        pkg = Path(repro.resilience.__file__).parent
        report = run_lint([pkg])
        assert report.passed, report.format()


class TestRecorderRollback:
    def test_truncate_removes_tail(self, net):
        sim = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        sim.run(10)
        t, _, _ = sim.recorder.to_arrays()
        before = t.size
        removed = sim.recorder.truncate(6)
        t2, _, _ = sim.recorder.to_arrays()
        assert removed == before - t2.size
        assert t2.size == (t < 6).sum()
        assert t2.max() < 6

    def test_metrics_rollback_recomputes_totals(self, net):
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.run(10)
        full_fired = sim.metrics.total_fired
        sim.metrics.rollback_to(6)
        assert sim.metrics.ticks == 6
        assert sim.metrics.total_fired == sum(
            tm.fired for tm in sim.metrics.per_tick
        )
        assert sim.metrics.total_fired <= full_fired
        assert all(tm.tick < 6 for tm in sim.metrics.per_tick)
