"""Unit tests for axon delay buffers."""

import numpy as np
import pytest

from repro.arch.axon import AxonBuffers
from repro.arch.params import DELAY_SLOTS, MAX_DELAY


def schedule_one(buf: AxonBuffers, core: int, axon: int, delay: int, tick: int):
    buf.schedule(np.array([core]), np.array([axon]), np.array([delay]), tick)


class TestScheduling:
    def test_delay_one_arrives_next_tick(self):
        buf = AxonBuffers(1, 8)
        schedule_one(buf, 0, 3, 1, tick=0)
        assert not buf.collect(0).any()
        active = buf.collect(1)
        assert active[0, 3]
        assert active.sum() == 1

    def test_delay_max_arrives_at_max(self):
        buf = AxonBuffers(1, 8)
        schedule_one(buf, 0, 0, MAX_DELAY, tick=5)
        for t in range(6, 5 + MAX_DELAY):
            assert not buf.collect(t).any()
        assert buf.collect(5 + MAX_DELAY)[0, 0]

    def test_collect_clears(self):
        buf = AxonBuffers(1, 4)
        schedule_one(buf, 0, 1, 1, tick=0)
        assert buf.collect(1).any()
        assert not buf.collect(1).any()

    def test_duplicate_deliveries_merge(self):
        # 1-bit buffer entries: two spikes to the same (core, axon, tick)
        # are one spike — exactly the hardware semantics.
        buf = AxonBuffers(1, 4)
        buf.schedule(np.array([0, 0]), np.array([2, 2]), np.array([1, 1]), 0)
        assert buf.collect(1).sum() == 1

    def test_rejects_zero_delay(self):
        buf = AxonBuffers(1, 4)
        with pytest.raises(ValueError):
            schedule_one(buf, 0, 0, 0, tick=0)

    def test_rejects_over_max_delay(self):
        buf = AxonBuffers(1, 4)
        with pytest.raises(ValueError):
            schedule_one(buf, 0, 0, MAX_DELAY + 1, tick=0)

    def test_empty_schedule_is_noop(self):
        buf = AxonBuffers(2, 4)
        buf.schedule(np.array([]), np.array([]), np.array([]), 0)
        assert buf.occupancy() == 0

    def test_multi_core_independent(self):
        buf = AxonBuffers(3, 4)
        buf.schedule(np.array([0, 2]), np.array([1, 3]), np.array([1, 2]), 0)
        a1 = buf.collect(1)
        assert a1[0, 1] and a1.sum() == 1
        a2 = buf.collect(2)
        assert a2[2, 3] and a2.sum() == 1


class TestCircularReuse:
    def test_slot_reuse_after_full_cycle(self):
        buf = AxonBuffers(1, 2)
        schedule_one(buf, 0, 0, 1, tick=0)
        assert buf.collect(1)[0, 0]
        # Same slot index, DELAY_SLOTS later.
        schedule_one(buf, 0, 0, 1, tick=DELAY_SLOTS)
        assert buf.collect(1 + DELAY_SLOTS)[0, 0]

    def test_long_run_no_leakage(self):
        buf = AxonBuffers(1, 4)
        for t in range(100):
            schedule_one(buf, 0, t % 4, 1 + t % MAX_DELAY, t)
            buf.collect(t)
        # occupancy bounded by slots x axons
        assert buf.occupancy() <= DELAY_SLOTS * 4

    def test_peek_is_non_destructive(self):
        buf = AxonBuffers(1, 4)
        schedule_one(buf, 0, 2, 3, tick=0)
        assert buf.peek(3)[0, 2]
        assert buf.peek(3)[0, 2]
        assert buf.collect(3)[0, 2]

    def test_clone_independent(self):
        buf = AxonBuffers(1, 4)
        schedule_one(buf, 0, 1, 2, tick=0)
        c = buf.clone()
        buf.collect(2)
        assert c.peek(2)[0, 1]
