"""Unit tests for CoreBlock: the vectorised per-process core group."""

import numpy as np
import pytest

from repro.arch.coreblock import CoreBlock
from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork, NeuronTarget
from repro.arch.params import NeuronParameters


def relay_network(n_cores: int = 4) -> CoreNetwork:
    net = CoreNetwork(n_cores, seed=3)
    for gid in range(n_cores):
        net.set_crossbar(gid, Crossbar.identity())
        net.set_neurons(
            gid, NeuronParameters(weights=(1, 0, 0, 0), threshold=1, floor=0)
        )
        for j in range(net.num_neurons):
            net.connect(gid, j, NeuronTarget((gid + 1) % n_cores, j))
    return net


class TestConstruction:
    def test_slicing(self):
        net = relay_network(6)
        block = CoreBlock(net, 2, 5)
        assert block.n_cores == 3
        assert list(block.gids) == [2, 3, 4]

    def test_rejects_bad_range(self):
        net = relay_network(4)
        with pytest.raises(ValueError):
            CoreBlock(net, 2, 2)
        with pytest.raises(ValueError):
            CoreBlock(net, 0, 9)

    def test_owns(self):
        net = relay_network(6)
        block = CoreBlock(net, 2, 5)
        assert block.owns(2) and block.owns(4)
        assert not block.owns(1) and not block.owns(5)

    def test_block_copies_do_not_alias_network(self):
        net = relay_network(2)
        block = CoreBlock(net, 0, 2)
        block.crossbars[...] = 0
        assert net.synapse_count == 2 * 256


class TestPhases:
    def test_synapse_phase_counts(self):
        net = relay_network(2)
        block = CoreBlock(net, 0, 2)
        block.buffers.schedule(np.array([0]), np.array([5]), np.array([1]), 0)
        counts = block.synapse_phase(1)
        assert counts[0, 5, 0] == 1
        assert counts.sum() == 1
        assert block.last_active_axons == 1

    def test_neuron_phase_fires_relay(self):
        net = relay_network(2)
        block = CoreBlock(net, 0, 2)
        block.buffers.schedule(np.array([1]), np.array([9]), np.array([1]), 0)
        counts = block.synapse_phase(1)
        fired = block.neuron_phase(counts)
        assert fired[1, 9] and fired.sum() == 1

    def test_outgoing_routing(self):
        net = relay_network(3)
        block = CoreBlock(net, 0, 3)
        fired = np.zeros((3, 256), dtype=bool)
        fired[2, 7] = True
        out = block.outgoing(fired)
        assert out.count == 1
        assert out.src_gid[0] == 2
        assert out.tgt_gid[0] == 0  # ring wraps
        assert out.tgt_axon[0] == 7

    def test_outgoing_drops_unconnected(self):
        net = CoreNetwork(1)
        block = CoreBlock(net, 0, 1)
        fired = np.ones((1, 256), dtype=bool)
        assert block.outgoing(fired).count == 0

    def test_deliver_rejects_foreign_gids(self):
        net = relay_network(4)
        block = CoreBlock(net, 0, 2)
        with pytest.raises(ValueError):
            block.deliver(np.array([3]), np.array([0]), np.array([1]), 0)

    def test_deliver_schedules_into_buffers(self):
        net = relay_network(4)
        block = CoreBlock(net, 2, 4)
        block.deliver(np.array([3]), np.array([11]), np.array([2]), tick=5)
        active = block.buffers.collect(7)
        assert active[1, 11]  # gid 3 is local index 1


class TestSnapshot:
    def test_snapshot_restore_round_trip(self):
        net = relay_network(2)
        block = CoreBlock(net, 0, 2)
        block.buffers.schedule(np.array([0]), np.array([1]), np.array([3]), 0)
        block.state.potential[0, 0] = 42
        snap = block.snapshot()
        block.state.potential[0, 0] = 0
        block.buffers.pending[...] = False
        block.restore(snap)
        assert block.state.potential[0, 0] == 42
        assert block.buffers.peek(3)[0, 1]
