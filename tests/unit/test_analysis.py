"""Unit tests for spike-train analysis tools."""

import math

import numpy as np
import pytest

from repro.analysis.raster import ascii_raster, raster_matrix
from repro.analysis.stats import (
    fano_factor,
    interspike_intervals,
    isi_cv,
    population_rate,
    region_rates,
    spike_train_stats,
    synchrony_index,
)
from repro.core.simulator import SpikeRecorder


def recorder_from(spikes):
    """Build a recorder from (tick, gid, neuron) triples."""
    rec = SpikeRecorder()
    for t, g, n in spikes:
        rec.record(t, np.array([g]), np.array([n]))
    return rec


class TestIsi:
    def test_single_neuron_intervals(self):
        rec = recorder_from([(0, 0, 0), (3, 0, 0), (7, 0, 0)])
        assert list(interspike_intervals(rec)) == [3, 4]

    def test_intervals_not_mixed_across_neurons(self):
        rec = recorder_from([(0, 0, 0), (1, 0, 1), (10, 0, 0)])
        assert sorted(interspike_intervals(rec)) == [10]

    def test_intervals_not_mixed_across_cores(self):
        rec = recorder_from([(0, 0, 0), (2, 1, 0), (6, 0, 0)])
        assert sorted(interspike_intervals(rec)) == [6]

    def test_empty(self):
        assert interspike_intervals(SpikeRecorder()).size == 0

    def test_cv_clockwork_is_zero(self):
        rec = recorder_from([(t, 0, 0) for t in range(0, 50, 5)])
        assert isi_cv(rec) == pytest.approx(0.0)

    def test_cv_nan_when_insufficient(self):
        rec = recorder_from([(0, 0, 0)])
        assert math.isnan(isi_cv(rec))

    def test_cv_poisson_near_one(self):
        rng = np.random.default_rng(0)
        ticks = np.cumsum(rng.geometric(0.05, size=400))
        rec = recorder_from([(int(t), 0, 0) for t in ticks])
        assert 0.8 < isi_cv(rec) < 1.2


class TestRates:
    def test_population_rate(self):
        rec = recorder_from([(0, 0, 0), (0, 0, 1), (2, 0, 0)])
        rate = population_rate(rec, n_neurons=4, ticks=3)
        assert list(rate) == [500.0, 0.0, 250.0]

    def test_region_rates(self):
        rec = recorder_from([(0, 0, 0), (0, 3, 0), (1, 3, 1)])
        rates = region_rates(
            rec, {"A": (0, 2), "B": (2, 4)}, ticks=10, neurons_per_core=256
        )
        assert rates["A"] == pytest.approx(1 / (2 * 256) / 0.01)
        assert rates["B"] == pytest.approx(2 / (2 * 256) / 0.01)

    def test_fano_poissonish_near_one(self):
        rng = np.random.default_rng(1)
        spikes = [(int(t), 0, 0) for t in np.sort(rng.integers(0, 1000, size=500))]
        rec = recorder_from(spikes)
        assert 0.5 < fano_factor(rec, window=50, ticks=1000) < 2.0

    def test_fano_rejects_bad_window(self):
        with pytest.raises(ValueError):
            fano_factor(SpikeRecorder(), window=0, ticks=10)

    def test_synchrony_bursty_exceeds_asynchronous(self):
        burst = recorder_from([(5, 0, n) for n in range(50)])
        rng = np.random.default_rng(2)
        spread = recorder_from(
            [(int(rng.integers(0, 50)), 0, n) for n in range(50)]
        )
        assert synchrony_index(burst, 50, 50) > synchrony_index(spread, 50, 50)


class TestSummary:
    def test_spike_train_stats(self):
        rec = recorder_from([(0, 0, 0), (5, 0, 0), (1, 0, 1)])
        s = spike_train_stats(rec, n_neurons=4, ticks=10)
        assert s.total_spikes == 3
        assert s.active_fraction == pytest.approx(0.5)
        assert s.mean_rate_hz == pytest.approx(3 / 4 / 0.01)


class TestRaster:
    def test_raster_matrix(self):
        rec = recorder_from([(2, 1, 7), (3, 0, 1)])
        m = raster_matrix(rec, gid=1, ticks=5, n_neurons=16)
        assert m[2, 7] and m.sum() == 1

    def test_ascii_raster_marks(self):
        rec = recorder_from([(0, 0, 3), (2, 0, 3)])
        text = ascii_raster(rec, gid=0, ticks=4, n_neurons=8)
        assert "n003 |.|." in text

    def test_ascii_raster_empty(self):
        assert "no spikes" in ascii_raster(SpikeRecorder(), 0, 4)

    def test_ascii_raster_skips_silent(self):
        rec = recorder_from([(0, 0, 5)])
        text = ascii_raster(rec, gid=0, ticks=2, n_neurons=8)
        assert "n005" in text and "n004" not in text
