"""Unit tests for the PGAS-backend Compass simulator."""

import numpy as np

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass


class TestPgasBackend:
    def test_runs_and_spikes(self):
        net = build_quickstart_network()
        sim = PgasCompass(net, CompassConfig(n_processes=2))
        result = sim.run(32)
        assert result.total_spikes > 0

    def test_put_counters_track_messages(self):
        net = build_quickstart_network()
        sim = PgasCompass(net, CompassConfig(n_processes=4))
        sim.run(16)
        puts = sum(c.puts for c in sim.cluster.counters)
        assert puts == sim.metrics.total_messages
        assert puts > 0

    def test_barrier_once_per_tick(self):
        net = build_quickstart_network()
        sim = PgasCompass(net, CompassConfig(n_processes=2))
        sim.run(10)
        assert sim.cluster.epoch == 10

    def test_windows_drained_each_tick(self):
        net = build_quickstart_network()
        sim = PgasCompass(net, CompassConfig(n_processes=2))
        sim.run(10)
        assert all(len(w) == 0 for w in sim.cluster.windows)

    def test_identical_raster_to_mpi_backend(self):
        """§VII: PGAS is a communication change, not a semantic one."""
        net = build_quickstart_network()
        mpi = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        pgas = PgasCompass(net, CompassConfig(n_processes=2, record_spikes=True))
        mpi.run(48)
        pgas.run(48)
        for a, b in zip(mpi.recorder.to_arrays(), pgas.recorder.to_arrays()):
            assert np.array_equal(a, b)

    def test_simulated_network_time_cheaper_than_mpi_at_scale(self):
        net = build_quickstart_network(n_cores=8)
        cfg_kwargs = dict(nodes=8, procs_per_node=1, threads_per_proc=4)
        from repro.core.config import CompassConfig as CC
        from repro.runtime.machine import BLUE_GENE_P, MachineConfig

        mc = MachineConfig(BLUE_GENE_P, **cfg_kwargs)
        mpi = Compass(net, CC(n_processes=8, threads_per_process=4, machine=mc))
        pgas = PgasCompass(net, CC(n_processes=8, threads_per_process=4, machine=mc))
        mpi.run(32)
        pgas.run(32)
        assert pgas.metrics.simulated.network < mpi.metrics.simulated.network
