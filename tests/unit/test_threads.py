"""Unit tests for the thread timing model and core partitioning."""

import numpy as np
import pytest

from repro.runtime.threads import (
    amdahl_speedup,
    effective_threads,
    load_imbalance,
    partition_cores,
)


class TestEffectiveThreads:
    def test_linear_up_to_core_count(self):
        # Modulo the small false-sharing penalty, <= cores is ~linear.
        assert effective_threads(8, 16, false_sharing=0.0) == 8.0

    def test_smt_gives_fractional_benefit(self):
        base = effective_threads(16, 16, false_sharing=0.0)
        smt = effective_threads(32, 16, false_sharing=0.0)
        assert base < smt < 2 * base

    def test_false_sharing_penalty(self):
        clean = effective_threads(16, 16, false_sharing=0.0)
        dirty = effective_threads(16, 16, false_sharing=0.05)
        assert dirty < clean

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            effective_threads(0, 16)


class TestAmdahl:
    def test_no_serial_fraction_is_linear(self):
        assert amdahl_speedup(8, 0.0) == pytest.approx(8.0)

    def test_all_serial_is_one(self):
        assert amdahl_speedup(100, 1.0) == pytest.approx(1.0)

    def test_classic_limit(self):
        # 5% serial caps speed-up at 20x.
        assert amdahl_speedup(1e9, 0.05) == pytest.approx(20.0, rel=1e-6)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)


class TestPartitionCores:
    def test_covers_all_cores_once(self):
        parts = partition_cores(100, 7)
        seen = [i for p in parts for i in p]
        assert seen == list(range(100))

    def test_balanced_within_one(self):
        parts = partition_cores(100, 7)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_cores(self):
        parts = partition_cores(3, 8)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 3
        assert max(sizes) == 1

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            partition_cores(10, 0)


class TestLoadImbalance:
    def test_uniform_costs_balanced(self):
        assert load_imbalance(np.ones(64), 8) == pytest.approx(1.0)

    def test_skewed_costs_imbalanced(self):
        costs = np.ones(64)
        costs[:8] = 100.0
        assert load_imbalance(costs, 8) > 2.0

    def test_zero_costs(self):
        assert load_imbalance(np.zeros(16), 4) == 1.0


class TestStraggler:
    """Static-partition straggler model used by the resilience subsystem."""

    def test_one_straggler_bounds_the_team(self):
        from repro.runtime.threads import straggler_team_factor

        assert straggler_team_factor(32, 3.0) == pytest.approx(3.0)
        assert straggler_team_factor(32, 1.0) == pytest.approx(1.0)

    def test_no_stragglers_is_unity(self):
        from repro.runtime.threads import straggler_team_factor

        assert straggler_team_factor(8, 5.0, n_stragglers=0) == 1.0

    def test_idle_fraction(self):
        from repro.runtime.threads import straggler_idle_fraction

        # 2 threads, one 2x slower: the healthy thread idles 1/4 of the time.
        assert straggler_idle_fraction(2, 2.0) == pytest.approx(0.25)
        assert straggler_idle_fraction(4, 1.0) == 0.0

    def test_validation(self):
        from repro.runtime.threads import straggler_team_factor

        with pytest.raises(ValueError):
            straggler_team_factor(0, 2.0)
        with pytest.raises(ValueError):
            straggler_team_factor(4, 0.5)
