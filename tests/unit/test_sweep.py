"""Unit tests for CSV experiment exports."""

import csv
import io

import pytest

from repro.perf.sweep import (
    EXPORTERS,
    export_all,
    realtime_csv,
    strong_scaling_csv,
    thread_scaling_csv,
    weak_scaling_csv,
)


def parse(text: str) -> list[dict]:
    return list(csv.DictReader(io.StringIO(text)))


class TestExporters:
    def test_weak_scaling_rows(self):
        rows = parse(weak_scaling_csv())
        assert len(rows) == 5
        assert float(rows[0]["racks"]) == 1.0
        assert float(rows[-1]["slowdown_x"]) > 300

    def test_strong_scaling_rows(self):
        rows = parse(strong_scaling_csv())
        assert float(rows[0]["speedup_x"]) == 1.0
        assert float(rows[-1]["speedup_x"]) > 5

    def test_thread_scaling_contains_both_series(self):
        rows = parse(thread_scaling_csv())
        series = {r["series"] for r in rows}
        assert series == {"fig6", "tradeoff"}

    def test_realtime_rows(self):
        rows = parse(realtime_csv())
        backends = {r["backend"] for r in rows}
        assert backends == {"mpi", "pgas"}
        rt = [r for r in rows if r["realtime"] == "1"]
        assert rt and all(r["backend"] == "pgas" for r in rt)

    def test_export_all(self, tmp_path):
        paths = export_all(tmp_path / "csv")
        assert {p.stem for p in paths} == set(EXPORTERS)
        for p in paths:
            assert p.exists()
            assert len(parse(p.read_text())) > 0
