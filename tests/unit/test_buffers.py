"""Unit tests for spike aggregation buffers."""

import numpy as np

from repro.core.buffers import LocalBuffer, RemoteSendBuffers


class TestLocalBuffer:
    def test_push_drain(self):
        buf = LocalBuffer()
        buf.push(np.array([1, 2]), np.array([10, 20], dtype=np.int32), np.array([1, 2], dtype=np.int32))
        buf.push(np.array([3]), np.array([30], dtype=np.int32), np.array([3], dtype=np.int32))
        assert buf.count == 3
        g, a, d = buf.drain()
        assert list(g) == [1, 2, 3]
        assert list(a) == [10, 20, 30]
        assert list(d) == [1, 2, 3]
        assert buf.count == 0

    def test_empty_drain(self):
        g, a, d = LocalBuffer().drain()
        assert g.size == a.size == d.size == 0

    def test_empty_push_ignored(self):
        buf = LocalBuffer()
        buf.push(np.array([], dtype=np.int64), np.array([], dtype=np.int32), np.array([], dtype=np.int32))
        assert buf.count == 0


class TestRemoteSendBuffers:
    def test_aggregation_one_message_per_destination(self):
        bufs = RemoteSendBuffers(4, own_rank=0)
        dests = np.array([1, 2, 1, 3, 1])
        bufs.push(
            dests,
            np.arange(5, dtype=np.int64),
            np.arange(5, dtype=np.int32),
            np.ones(5, dtype=np.int32),
        )
        msgs = bufs.flush(tick=7)
        assert set(msgs) == {1, 2, 3}
        assert msgs[1].count == 3
        assert msgs[2].count == 1
        # spikes for rank 1 kept their payloads
        assert sorted(msgs[1].tgt_gid) == [0, 2, 4]
        assert (msgs[1].tick == 7).all()

    def test_flush_resets(self):
        bufs = RemoteSendBuffers(2, own_rank=0)
        bufs.push(
            np.array([1]), np.array([5], dtype=np.int64),
            np.array([6], dtype=np.int32), np.array([1], dtype=np.int32),
        )
        assert bufs.flush(0)
        assert bufs.flush(1) == {}

    def test_send_counts(self):
        bufs = RemoteSendBuffers(3, own_rank=0)
        bufs.push(
            np.array([2, 2]), np.zeros(2, dtype=np.int64),
            np.zeros(2, dtype=np.int32), np.ones(2, dtype=np.int32),
        )
        assert list(bufs.send_counts()) == [0, 0, 1]

    def test_empty_push(self):
        bufs = RemoteSendBuffers(2, own_rank=0)
        bufs.push(np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                  np.array([], dtype=np.int32), np.array([], dtype=np.int32))
        assert bufs.flush(0) == {}

    def test_ordering_preserved_within_destination(self):
        bufs = RemoteSendBuffers(2, own_rank=0)
        bufs.push(
            np.array([1, 1]), np.array([10, 11], dtype=np.int64),
            np.array([0, 1], dtype=np.int32), np.array([1, 1], dtype=np.int32),
        )
        msg = bufs.flush(0)[1]
        assert list(msg.tgt_gid) == [10, 11]
