"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec


@pytest.fixture()
def coreobject_file(tmp_path):
    obj = CoreObject(
        "cli-test",
        regions=[RegionSpec("A", 2), RegionSpec("B", 2)],
        connections=[ConnectionSpec("A", "B", 64)],
        seed=1,
    )
    path = tmp_path / "model.json"
    obj.to_json(path)
    return path


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "256 axons x 256 neurons" in out
        assert "BlueGene/Q" in out and "BlueGene/P" in out
        assert "serve backends: mpi, pgas" in out
        assert "shard fleet: consistent-hash ring over 4 shards x 64 vnodes" in out
        assert "spill=1" in out and "hot_depth=32" in out


class TestCompile:
    def test_compile_and_verify(self, coreobject_file, capsys):
        assert main(["compile", str(coreobject_file), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "compiled 'cli-test'" in out
        assert "PASS" in out

    def test_compile_to_file_then_run(self, coreobject_file, tmp_path, capsys):
        model_path = tmp_path / "explicit.npz"
        assert main(["compile", str(coreobject_file), "-o", str(model_path)]) == 0
        assert model_path.exists()
        assert main(["run", str(model_path), "--ticks", "10", "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "ran 10 ticks" in out


class TestRun:
    def test_run_quickstart(self, capsys):
        assert main(["run", "quickstart", "--ticks", "30", "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "spikes" in out and "(mpi)" in out

    def test_run_pgas(self, capsys):
        assert main(["run", "quickstart", "--ticks", "20", "--pgas"]) == 0
        assert "(pgas)" in capsys.readouterr().out

    def test_run_with_stats(self, capsys):
        assert main(["run", "quickstart", "--ticks", "60", "--stats"]) == 0
        assert "isi_cv" in capsys.readouterr().out

    def test_run_with_profile(self, capsys):
        assert main(
            ["run", "quickstart", "--ticks", "40", "--processes", "2", "--profile"]
        ) == 0
        assert "per-rank load profile" in capsys.readouterr().out

    def test_run_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.spk"
        assert main(
            ["run", "quickstart", "--ticks", "40", "--stats", "--trace", str(trace)]
        ) == 0
        assert trace.exists()
        from repro.core.trace import read_trace

        t, g, n = read_trace(trace)
        assert t.size > 0

    def test_trace_requires_stats(self, capsys, tmp_path):
        # Rejected at parse time (before any simulation), as a usage error.
        with pytest.raises(SystemExit) as exc:
            main(
                ["run", "quickstart", "--ticks", "10",
                 "--trace", str(tmp_path / "x.spk")]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "--trace requires --stats" in err


class TestExec:
    def test_exec_info(self, capsys):
        assert main(["exec", "info"]) == 0
        out = capsys.readouterr().out
        assert "execution backends" in out
        for name in ("sequential", "pgas", "pool", "pool-mpi"):
            assert name in out
        assert "host:" in out

    def test_exec_run_in_process_backend(self, capsys):
        assert main(
            ["exec", "run", "quickstart", "--ticks", "20",
             "--processes", "2", "--backend", "pgas"]
        ) == 0
        assert "(pgas)" in capsys.readouterr().out

    def test_exec_run_rejects_profile_on_pool(self, capsys):
        # Rejected before any worker is spawned.
        assert main(
            ["exec", "run", "quickstart", "--ticks", "10",
             "--backend", "pool", "--profile"]
        ) == 2
        err = capsys.readouterr().err
        assert "--profile needs in-process rank state" in err


class TestObs:
    def test_obs_trace_writes_valid_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        rc = main(
            ["obs", "trace", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--out", str(out), "--jsonl", str(jsonl)]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "traced 5 ticks" in captured
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert jsonl.exists()

    def test_obs_trace_with_fault_emits_resilience_instants(self, tmp_path):
        jsonl = tmp_path / "events.jsonl"
        rc = main(
            ["obs", "trace", "--model", "quickstart", "--cores", "8",
             "--ticks", "10", "--crash-at", "4:1",
             "--out", str(tmp_path / "t.json"), "--jsonl", str(jsonl)]
        )
        assert rc == 0
        names = {json.loads(line)["name"] for line in jsonl.read_text().splitlines()}
        assert "fault.rank_crash" in names
        assert "fault.detected" in names

    def test_obs_metrics_stdout(self, capsys):
        rc = main(["obs", "metrics", "--model", "quickstart", "--cores", "8",
                   "--ticks", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE compass_fired_total counter" in out

    def test_obs_diff_identical_and_divergent(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["obs", "trace", "--model", "quickstart", "--cores", "8",
                "--ticks", "5", "--out", str(tmp_path / "t.json")]
        assert main(argv + ["--jsonl", str(a)]) == 0
        assert main(argv + ["--jsonl", str(b)]) == 0
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

        # Different seed -> behavioural divergence, localised.
        c = tmp_path / "c.jsonl"
        assert main(argv + ["--jsonl", str(c), "--seed", "99"]) == 0
        assert main(["obs", "diff", str(a), str(c)]) == 1
        assert "divergen" in capsys.readouterr().out

    def test_obs_diff_unreadable_log_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        rc = main(["obs", "diff", str(bad), str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestObsAnalysis:
    """The trace-analytics subcommands: obs analyze | flame | gate."""

    @pytest.fixture(scope="class")
    def events_log(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("obs-analysis")
        path = base / "events.jsonl"
        rc = main(
            ["obs", "trace", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--out", str(base / "trace.json"),
             "--jsonl", str(path)]
        )
        assert rc == 0
        return path

    @staticmethod
    def _bench_dir(tmp_path, mean=0.1):
        """A results dir with one schema-2 tick_throughput payload."""
        results = tmp_path / "results"
        results.mkdir(exist_ok=True)
        payload = {
            "schema": 2,
            "name": "tick_throughput",
            "sha": "deadbee",
            "version": "0.0.0",
            "fingerprint": "abc123def456",
            "params": {"cores": 128, "ticks": 50},
            "samples": [mean],
            "stats": {"n": 1, "min": mean, "max": mean, "mean": mean,
                      "stddev": 0.0},
            "derived": {"s_per_tick_disabled": mean / 50},
        }
        (results / "BENCH_tick_throughput.json").write_text(
            json.dumps(payload)
        )
        return results

    def test_analyze_stdout(self, events_log, capsys):
        assert main(["obs", "analyze", str(events_log)]) == 0
        out = capsys.readouterr().out
        assert "who bounded the run" in out
        assert "per-tick imbalance" in out
        assert "cluster totals (partition-invariant)" in out

    def test_analyze_writes_report(self, events_log, tmp_path, capsys):
        report = tmp_path / "analysis.txt"
        assert main(
            ["obs", "analyze", str(events_log), "--out", str(report)]
        ) == 0
        assert "wrote analysis report" in capsys.readouterr().out
        assert "who bounded the run" in report.read_text()

    def test_analyze_missing_file_is_usage_error(self, capsys, tmp_path):
        rc = main(["obs", "analyze", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no such event log" in err

    def test_analyze_empty_file_is_usage_error(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["obs", "analyze", str(empty)])
        assert rc == 2
        assert "empty" in capsys.readouterr().err

    def test_flame_table_and_folded(self, events_log, tmp_path, capsys):
        folded = tmp_path / "flame.folded"
        assert main(
            ["obs", "flame", str(events_log), "--folded", str(folded)]
        ) == 0
        out = capsys.readouterr().out
        assert "flame self/total" in out
        lines = folded.read_text().splitlines()
        assert lines and lines == sorted(lines)
        assert any(line.startswith("cluster;tick;") for line in lines)

    def test_flame_missing_file_is_usage_error(self, capsys, tmp_path):
        rc = main(["obs", "flame", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "no such event log" in capsys.readouterr().err

    def test_flame_rejects_nonpositive_limit(self, events_log, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "flame", str(events_log), "--limit", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_gate_bless_then_pass(self, tmp_path, capsys):
        results = self._bench_dir(tmp_path)
        history = tmp_path / "hist.jsonl"
        assert main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history), "--bless"]
        ) == 0
        out = capsys.readouterr().out
        assert "blessed 1 bench result(s)" in out
        assert "perf gate passed" in out
        # The blessed baseline now gates cleanly without --bless.
        assert main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history)]
        ) == 0

    def test_gate_fails_on_synthetic_regression(self, tmp_path, capsys):
        results = self._bench_dir(tmp_path, mean=0.1)
        history = tmp_path / "hist.jsonl"
        assert main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history), "--bless"]
        ) == 0
        capsys.readouterr()
        # 20% slower than the blessed baseline: the gate must fail and
        # name the offending bench + metric.
        self._bench_dir(tmp_path, mean=0.12)
        rc = main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "perf gate FAILED" in out
        assert "REGRESSION: tick_throughput/time_s" in out

    def test_gate_report_only_never_fails_exit(self, tmp_path, capsys):
        results = self._bench_dir(tmp_path, mean=0.1)
        history = tmp_path / "hist.jsonl"
        assert main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history), "--bless"]
        ) == 0
        self._bench_dir(tmp_path, mean=0.2)
        rc = main(
            ["obs", "gate", "--results", str(results),
             "--history", str(history), "--report-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "report-only" in out and "not enforced" in out

    def test_gate_missing_history_is_usage_error(self, tmp_path, capsys):
        results = self._bench_dir(tmp_path)
        rc = main(
            ["obs", "gate", "--results", str(results),
             "--history", str(tmp_path / "none.jsonl")]
        )
        assert rc == 2
        assert "--bless" in capsys.readouterr().err

    def test_gate_missing_results_dir_is_usage_error(self, tmp_path, capsys):
        rc = main(["obs", "gate", "--results", str(tmp_path / "nowhere")])
        assert rc == 2
        assert "no such results directory" in capsys.readouterr().err


class TestObsProf:
    """The host-profiling subcommands: obs prof | why."""

    def test_prof_writes_report_folded_and_memory(self, tmp_path, capsys):
        folded = tmp_path / "host.folded"
        mem = tmp_path / "mem.json"
        out = tmp_path / "prof.txt"
        rc = main(
            ["obs", "prof", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--processes", "2", "--hz", "499",
             "--folded", str(folded), "--mem-out", str(mem),
             "--out", str(out)]
        )
        assert rc == 0
        assert "profiled 5 ticks" in capsys.readouterr().out
        report = out.read_text()
        assert "host-cost divergence" in report
        assert "host memory report" in report
        payload = json.loads(mem.read_text())
        assert payload["schema"] == 1 and payload["peak_nbytes"] > 0
        assert folded.exists()

    def test_prof_merges_span_stacks_into_folded(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(
            ["obs", "trace", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--out", str(tmp_path / "t.json"),
             "--jsonl", str(events)]
        ) == 0
        folded = tmp_path / "merged.folded"
        rc = main(
            ["obs", "prof", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--no-memory", "--folded", str(folded),
             "--spans", str(events), "--out", str(tmp_path / "r.txt")]
        )
        assert rc == 0
        from repro.obs.analysis import parse_folded

        merged = parse_folded(folded.read_text())
        roots = {path.split(";")[0] for path in merged}
        assert "rank 0" in roots  # simulated work-unit stacks merged in
        capsys.readouterr()

    def test_prof_pgas_backend(self, tmp_path, capsys):
        rc = main(
            ["obs", "prof", "--model", "quickstart", "--cores", "8",
             "--ticks", "5", "--pgas", "--no-sampler", "--no-memory"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(pgas)" in out and "divergence hotspot" in out

    @staticmethod
    def _bench_file(path, name, mem_peak, time_s=0.1):
        payload = {
            "schema": 4,
            "name": name,
            "fingerprint": "fp1",
            "params": {},
            "stats": {"n": 1, "mean": time_s},
            "derived": {"mem_peak_nbytes": mem_peak},
        }
        path.write_text(json.dumps(payload))
        return path

    def test_why_names_injected_memory_regression(self, tmp_path, capsys):
        old = self._bench_file(tmp_path / "old.json", "tick", 1000.0)
        new = self._bench_file(tmp_path / "new.json", "tick", 2500.0)
        out = tmp_path / "why.txt"
        rc = main(["obs", "why", str(old), str(new), "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "root cause: tick / mem_peak_nbytes" in text
        assert "root cause: tick / mem_peak_nbytes" in out.read_text()

    def test_why_fail_on_regression_exits_1(self, tmp_path, capsys):
        old = self._bench_file(tmp_path / "old.json", "tick", 1000.0)
        new = self._bench_file(tmp_path / "new.json", "tick", 2500.0)
        assert main(["obs", "why", str(old), str(new),
                     "--fail-on-regression"]) == 1
        capsys.readouterr()
        # Identical runs pass even with enforcement on.
        assert main(["obs", "why", str(old), str(old),
                     "--fail-on-regression"]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_why_history_mode(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        lines = [
            {"name": "tick", "fingerprint": "f",
             "metrics": {"time_s": 0.10}},
            {"name": "tick", "fingerprint": "f",
             "metrics": {"time_s": 0.25}},
        ]
        history.write_text("".join(json.dumps(r) + "\n" for r in lines))
        rc = main(["obs", "why", "--history", str(history)])
        assert rc == 0
        assert "root cause: tick / time_s" in capsys.readouterr().out

    def test_why_operands_and_history_conflict(self, tmp_path, capsys):
        old = self._bench_file(tmp_path / "old.json", "tick", 1.0)
        rc = main(["obs", "why", str(old), str(old),
                   "--history", str(tmp_path / "h.jsonl")])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_why_requires_two_operands(self, tmp_path, capsys):
        rc = main(["obs", "why", str(tmp_path / "only-old.json")])
        assert rc == 2
        assert "OLD and NEW" in capsys.readouterr().err

    def test_why_mixed_kinds_is_usage_error(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path / "b.json", "tick", 1.0)
        trace = tmp_path / "events.jsonl"
        trace.write_text('{"name": "tick", "ph": "X", "rank": -1}\n')
        rc = main(["obs", "why", str(bench), str(trace)])
        assert rc == 2
        assert "both sides" in capsys.readouterr().err


class TestMacaque:
    def test_macaque_small(self, capsys):
        assert main(["macaque", "--cores", "77", "--ticks", "30"]) == 0
        out = capsys.readouterr().out
        assert "77 regions" in out


class TestCheck:
    def test_lint_repo_is_clean(self, capsys):
        assert main(["check", "lint"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_lint_flags_violations_with_rule_ids(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["check", "lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out and "1 violation(s)" in out

    def test_lint_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f(acc=[]):\n    return time.time()\n")
        assert main(["check", "lint", str(bad), "--rule", "DET104"]) == 1
        out = capsys.readouterr().out
        assert "DET104" in out and "DET101" not in out

    def test_races_quickstart_clean(self, capsys):
        assert main(["check", "races", "--ticks", "20", "--processes", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 races detected" in out
        assert "sanitized ticks" in out

    def test_model_check_valid_coreobject(self, coreobject_file, capsys):
        assert main(["check", "model", str(coreobject_file)]) == 0
        out = capsys.readouterr().out
        assert "model check passed" in out
        assert "[ipfp_balance]" in out

    def test_lint_missing_path_is_usage_error(self, capsys, tmp_path):
        assert main(["check", "lint", str(tmp_path / "absent.py")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["check", "lint", str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.check.lint"
        assert doc["findings"][0]["rule"] == "DET101"

    def test_lint_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["check", "lint", str(bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "DET101"

    def test_races_json_format(self, capsys):
        assert (
            main(
                ["check", "races", "--ticks", "5", "--processes", "2",
                 "--threads", "2", "--format", "json"]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.check.races"
        assert doc["findings"] == []
        assert doc["summary"]["ticks"] == 5


class TestCheckFlow:
    TAINTED = "import time\n\ndef f(mb):\n    mb.send(0, time.time())\n"

    def test_repo_clean_against_committed_baseline(self, capsys):
        from pathlib import Path

        import repro

        baseline = Path(repro.__file__).parent / "check" / "flow_baseline.json"
        assert main(["check", "flow", "--baseline", str(baseline)]) == 0
        assert "0 new flow finding(s)" in capsys.readouterr().out

    def test_finding_without_baseline_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.TAINTED)
        assert main(["check", "flow", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FLOW201" in out and "mailbox send" in out

    def test_bless_then_gate_passes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.TAINTED)
        baseline = tmp_path / "baseline.json"
        assert (
            main(["check", "flow", str(bad), "--baseline", str(baseline),
                  "--bless"])
            == 0
        )
        assert "blessed 1 finding(s)" in capsys.readouterr().out
        assert (
            main(["check", "flow", str(bad), "--baseline", str(baseline)]) == 0
        )
        assert "(1 baselined)" in capsys.readouterr().out

    def test_bless_requires_baseline(self, capsys):
        assert main(["check", "flow", "--bless"]) == 2
        assert "--bless requires --baseline" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.TAINTED)
        assert (
            main(["check", "flow", str(bad), "--baseline",
                  str(tmp_path / "absent.json")])
            == 2
        )
        assert "flow baseline not found" in capsys.readouterr().err

    def test_sarif_format_and_out_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.TAINTED)
        out_file = tmp_path / "flow.sarif"
        assert (
            main(["check", "flow", str(bad), "--format", "sarif", "--out",
                  str(out_file)])
            == 1
        )
        stdout = capsys.readouterr().out
        assert f"wrote sarif report: {out_file}" in stdout
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "FLOW201"
        assert result["baselineState"] == "new"
        assert result["codeFlows"]

    def test_json_output_byte_identical(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.TAINTED)
        main(["check", "flow", str(bad), "--format", "json"])
        first = capsys.readouterr().out
        main(["check", "flow", str(bad), "--format", "json"])
        assert capsys.readouterr().out == first


class TestFigures:
    @pytest.mark.parametrize(
        "name", ["fig4a", "fig4b", "fig5", "fig6", "fig7", "headline"]
    )
    def test_single_figure(self, capsys, name):
        assert main(["figures", name]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_csv_export(self, capsys, tmp_path):
        out = tmp_path / "csv"
        assert main(["figures", "--csv", str(out)]) == 0
        assert (out / "fig4.csv").exists()
        assert (out / "fig7.csv").exists()


class TestExport:
    def test_export_cocomac(self, capsys, tmp_path):
        out = tmp_path / "export"
        assert main(["export", str(out), "--cores", "128"]) == 0
        assert (out / "reduced_graph.graphml").exists()
        assert (out / "regions.csv").exists()
        assert (out / "coreobject.json").exists()


class TestResilience:
    def test_inject_with_verify(self, capsys):
        assert main(
            [
                "resilience", "inject",
                "--ticks", "30", "--interval", "10",
                "--crash-at", "12:1", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1 crash(es)" in out
        assert "spike digest:" in out
        assert "MATCH" in out

    def test_inject_spare_policy(self, capsys):
        assert main(
            [
                "resilience", "inject",
                "--ticks", "30", "--policy", "spare",
                "--crash-at", "12:0", "--drop-at", "20:0:1", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "policy=spare" in out
        assert "2 recovery(ies)" in out
        assert "MATCH" in out

    def test_report_prints_overhead_table(self, capsys):
        assert main(
            ["resilience", "report", "--ticks", "30", "--crash-at", "12:1"]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint overhead" in out
        assert "lost ticks" in out
        assert "time to recover" in out
        assert "per-failure breakdown" in out

    def test_bad_crash_spec_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["resilience", "inject", "--crash-at", "12"])
        assert exc.value.code == 2
        assert "TICK:RANK" in capsys.readouterr().err


class TestServe:
    RUN = [
        "serve", "run", "--mode", "open", "--jobs", "12", "--rate", "150",
        "--cores", "4", "--max-batch", "4", "--batch-delay-us", "5000",
        "--deadline-us", "200000", "--seed", "9",
    ]

    def test_run_open_loop_prints_report(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "jobs: submitted=12" in out
        assert "latency: p50=" in out
        assert "tenant" in out

    def test_run_json_round_trips_through_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(self.RUN + ["--json", str(path)]) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert main(["serve", "report", str(path)]) == 0
        reprinted = capsys.readouterr().out
        # The pretty-printed report is embedded in the run output.
        assert reprinted.strip() in first

    def test_run_is_reproducible(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.RUN + ["--json", str(a)]) == 0
        assert main(self.RUN + ["--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_run_cross_layout_identical(self, capsys, tmp_path):
        one, four = tmp_path / "p1.json", tmp_path / "p4.json"
        assert main(self.RUN + ["--processes", "1", "--json", str(one)]) == 0
        assert main(self.RUN + ["--processes", "4", "--json", str(four)]) == 0
        capsys.readouterr()
        assert one.read_bytes() == four.read_bytes()

    def test_run_closed_loop(self, capsys):
        assert main(
            ["serve", "run", "--mode", "closed", "--clients", "3",
             "--jobs-per-client", "2", "--cores", "4", "--seed", "1"]
        ) == 0
        assert "jobs: submitted=6" in capsys.readouterr().out

    def test_run_with_crash_reports_retries(self, capsys):
        assert main(
            ["serve", "run", "--mode", "open", "--jobs", "4", "--cores", "4",
             "--processes", "2", "--crash-at", "5:1", "--ticks-lo", "10",
             "--ticks-hi", "20"]
        ) == 0
        assert "retries=1" in capsys.readouterr().out

    def test_submit_single_job(self, capsys):
        assert main(
            ["serve", "submit", "--tenant", "alice", "--ticks", "15",
             "--cores", "4", "--deadline-us", "500000"]
        ) == 0
        out = capsys.readouterr().out
        assert "job 0 done" in out
        assert "deadline=met" in out

    def test_pgas_with_crash_is_clean_error(self, capsys):
        assert main(
            ["serve", "submit", "--pgas", "--cores", "4", "--crash-at", "5:1"]
        ) == 2
        assert "mpi backend" in capsys.readouterr().err

    def test_report_missing_file_is_clean_error(self, capsys, tmp_path):
        assert main(["serve", "report", str(tmp_path / "nope.json")]) == 2


class TestShard:
    RUN = [
        "shard", "run", "--shards", "3", "--tenants", "40", "--jobs", "60",
        "--rate", "300", "--cores", "4", "--max-batch", "4",
        "--batch-delay-us", "5000", "--deadline-us", "500000", "--seed", "9",
    ]

    def test_run_prints_fleet_report(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "offered=60 routed=60" in out
        assert "fleet report" in out
        assert "shards: 3" in out
        assert "routing_digest:" in out
        assert "peak_state_nbytes:" in out

    def test_run_json_round_trips_through_report(self, capsys, tmp_path):
        path = tmp_path / "fleet.json"
        assert main(self.RUN + ["--json", str(path)]) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert main(["shard", "report", str(path)]) == 0
        reprinted = capsys.readouterr().out
        assert reprinted.strip() in first

    def test_run_is_reproducible(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = self.RUN + ["--autoscale", "--hot-fraction", "0.3",
                           "--hot-tenants", "2"]
        assert main(argv + ["--json", str(a)]) == 0
        assert main(argv + ["--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_run_cross_layout_identical(self, capsys, tmp_path):
        one, four = tmp_path / "p1.json", tmp_path / "p4.json"
        assert main(self.RUN + ["--processes", "1", "--json", str(one)]) == 0
        assert main(self.RUN + ["--processes", "4", "--json", str(four)]) == 0
        capsys.readouterr()
        assert one.read_bytes() == four.read_bytes()

    def test_run_with_crash_on_fault_shard(self, capsys):
        assert main(
            ["shard", "run", "--shards", "2", "--tenants", "10", "--jobs", "8",
             "--rate", "200", "--cores", "4", "--processes", "2",
             "--crash-at", "5:1", "--fault-shard", "1",
             "--ticks-lo", "10", "--ticks-hi", "20"]
        ) == 0
        assert "retries=1" in capsys.readouterr().out

    def test_invalid_spill_is_clean_error(self, capsys):
        assert main(
            ["shard", "run", "--shards", "2", "--spill", "5", "--jobs", "4"]
        ) == 2
        assert "spill" in capsys.readouterr().err

    def test_report_missing_file_is_clean_error(self, capsys, tmp_path):
        assert main(["shard", "report", str(tmp_path / "nope.json")]) == 2


class TestArgumentValidation:
    """Invalid counts must produce a clean usage error, never a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "quickstart", "--ticks", "-5"],
            ["run", "quickstart", "--ticks", "abc"],
            ["run", "quickstart", "--processes", "0"],
            ["macaque", "--cores", "-1"],
            ["check", "races", "--threads", "0"],
            ["resilience", "inject", "--interval", "0"],
        ],
    )
    def test_invalid_count_is_usage_error(self, capsys, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "integer" in err

    def test_missing_model_file_is_clean_error(self, capsys):
        assert main(["run", "no-such-model.npz"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_repro_error_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"regions": []}')  # valid JSON, not a CoreObject
        assert main(["compile", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
