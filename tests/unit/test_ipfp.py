"""Unit tests for IPFP / Sinkhorn–Knopp matrix balancing."""

import numpy as np
import pytest

from repro.compiler.ipfp import balance_matrix, round_preserving_sums
from repro.errors import CompilationError


class TestBalance:
    def test_doubly_stochastic(self):
        rng = np.random.default_rng(0)
        m = rng.random((6, 6)) + 0.05
        r = balance_matrix(m, np.ones(6), np.ones(6))
        assert np.allclose(r.matrix.sum(axis=1), 1.0, atol=1e-8)
        assert np.allclose(r.matrix.sum(axis=0), 1.0, atol=1e-8)
        assert r.converged

    def test_arbitrary_marginals(self):
        rng = np.random.default_rng(1)
        m = rng.random((4, 5)) + 0.01
        rows = np.array([1.0, 2.0, 3.0, 4.0])
        cols = np.array([2.0, 2.0, 2.0, 2.0, 2.0])
        r = balance_matrix(m, rows, cols)
        assert np.allclose(r.matrix.sum(axis=1), rows, rtol=1e-8)
        assert np.allclose(r.matrix.sum(axis=0), cols, rtol=1e-8)

    def test_scaling_is_diagonal(self):
        """The result must be D1 @ M @ D2 for positive diagonals."""
        rng = np.random.default_rng(2)
        m = rng.random((5, 5)) + 0.1
        r = balance_matrix(m, np.ones(5), np.ones(5))
        reconstructed = np.diag(r.row_scale) @ m @ np.diag(r.col_scale)
        assert np.allclose(reconstructed, r.matrix, rtol=1e-6)

    def test_preserves_zero_pattern(self):
        m = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        r = balance_matrix(m, np.ones(3), np.ones(3))
        assert np.array_equal(r.matrix == 0, m == 0)

    def test_inconsistent_targets_rejected(self):
        with pytest.raises(CompilationError, match="inconsistent"):
            balance_matrix(np.ones((2, 2)), np.array([1.0, 1.0]), np.array([3.0, 3.0]))

    def test_zero_row_with_positive_target_rejected(self):
        m = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(CompilationError, match="zero row/column"):
            balance_matrix(m, np.ones(2), np.ones(2))

    def test_negative_input_rejected(self):
        with pytest.raises(CompilationError):
            balance_matrix(np.array([[-1.0]]), np.ones(1), np.ones(1))

    def test_non_2d_rejected(self):
        with pytest.raises(CompilationError):
            balance_matrix(np.ones(4), np.ones(4), np.ones(4))

    def test_infeasible_pattern_fails_to_converge(self):
        # A block-diagonal zero pattern cannot satisfy cross-block targets.
        m = np.array([[1.0, 0.0], [0.0, 1.0]])
        # Feasible trivially: diag scaling. Use a pattern that cannot move
        # mass where targets need it.
        m2 = np.array([[1.0, 1.0], [0.0, 1.0]])
        rows = np.array([10.0, 1.0])
        cols = np.array([10.0, 1.0])
        # col 0 can only be fed by row 0, but row 0 must total 10 with
        # col 1 receiving 1 at most from row 1... this is feasible; use a
        # genuinely infeasible one:
        m3 = np.array([[0.0, 1.0], [1.0, 1.0]])
        rows3 = np.array([5.0, 1.0])
        cols3 = np.array([5.0, 1.0])
        # row 0 only reaches col 1 (target 1) but must place 5.
        with pytest.raises(CompilationError, match="IPFP"):
            balance_matrix(m3, rows3, cols3, max_iterations=500)
        del m, m2, rows, cols


class TestRounding:
    def test_row_sums_preserved(self):
        rng = np.random.default_rng(3)
        m = rng.random((5, 5)) * 10
        targets = m.sum(axis=1).round()
        balanced = balance_matrix(m, targets, np.full(5, targets.sum() / 5))
        out = round_preserving_sums(balanced.matrix, targets)
        assert np.array_equal(out.sum(axis=1), targets.astype(np.int64))

    def test_integer_output(self):
        m = np.array([[0.4, 0.6], [1.3, 0.7]])
        out = round_preserving_sums(m, np.array([1, 2]))
        assert out.dtype == np.int64
        assert list(out.sum(axis=1)) == [1, 2]

    def test_zero_entries_stay_zero_when_possible(self):
        m = np.array([[2.5, 0.0, 2.5]])
        out = round_preserving_sums(m, np.array([5]))
        assert out[0, 1] == 0
        assert out.sum() == 5

    def test_column_overshoot_bounded_by_rows(self):
        """Each column exceeds its float sum by at most the row count."""
        rng = np.random.default_rng(4)
        m = rng.random((20, 20)) * 3
        targets = np.ceil(m.sum(axis=1))
        out = round_preserving_sums(m, targets)
        assert (out.sum(axis=0) <= m.sum(axis=0) + 20).all()
