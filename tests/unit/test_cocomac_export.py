"""Unit tests for database/model exports."""

import csv
import io

import networkx as nx
import pytest

from repro.cocomac.database import synthetic_cocomac
from repro.cocomac.export import (
    adjacency_csv,
    export_model,
    from_graphml,
    region_table_csv,
    to_graphml,
)
from repro.cocomac.model import build_macaque_coreobject
from repro.cocomac.reduction import reduce_database


@pytest.fixture(scope="module")
def reduced():
    return reduce_database(synthetic_cocomac())


@pytest.fixture(scope="module")
def model():
    return build_macaque_coreobject(256, seed=2)


class TestGraphml:
    def test_round_trip_structure(self, reduced, tmp_path_factory):
        path = tmp_path_factory.mktemp("gm") / "g.graphml"
        to_graphml(reduced, path)
        g = from_graphml(path)
        assert g.number_of_nodes() == reduced.n_regions
        assert g.number_of_edges() == reduced.n_edges

    def test_node_metadata_preserved(self, reduced, tmp_path_factory):
        path = tmp_path_factory.mktemp("gm2") / "g.graphml"
        to_graphml(reduced, path)
        g = from_graphml(path)
        some = reduced.regions[0]
        assert g.nodes[some.index]["name"] == some.name
        assert g.nodes[some.index]["region_class"] == some.region_class


class TestCsv:
    def test_adjacency_shape(self, reduced):
        rows = list(csv.reader(io.StringIO(adjacency_csv(reduced))))
        assert len(rows) == reduced.n_regions + 1
        assert len(rows[0]) == reduced.n_regions + 1

    def test_adjacency_entries_match_edges(self, reduced):
        rows = list(csv.reader(io.StringIO(adjacency_csv(reduced))))
        total = sum(int(v) for row in rows[1:] for v in row[1:])
        assert total == reduced.n_edges

    def test_region_table(self, model):
        rows = list(csv.DictReader(io.StringIO(region_table_csv(model))))
        assert len(rows) == model.n_regions
        assert sum(int(r["cores"]) for r in rows) == model.total_cores
        imputed = sum(int(r["imputed"]) for r in rows)
        assert imputed == 13  # 5 cortical + 8 thalamic

    def test_gray_fraction_column_in_range(self, model):
        rows = list(csv.DictReader(io.StringIO(region_table_csv(model))))
        for r in rows:
            assert 0.0 <= float(r["gray_fraction"]) <= 1.0


class TestExportModel:
    def test_writes_everything(self, model, tmp_path):
        paths = export_model(model, tmp_path / "export")
        names = {p.name for p in paths}
        assert {"reduced_graph.graphml", "adjacency.csv", "regions.csv",
                "coreobject.json"} <= names
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_coreobject_export_reloads(self, model, tmp_path):
        from repro.compiler.coreobject import CoreObject

        export_model(model, tmp_path / "e2")
        obj = CoreObject.from_json(tmp_path / "e2" / "coreobject.json")
        assert obj.n_cores == model.total_cores
