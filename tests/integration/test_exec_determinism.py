"""Byte-identity guarantees of the host-parallel execution backends.

The adapter contract (docs/execution.md) promises that for one network,
layout, and input schedule, every backend produces byte-identical spike
digests, observability event logs, and metric renderings — the host
worker count is pure mechanism.  These tests pin that promise against
the sequential reference:

* pool (PGAS windows) at 1 and 4 workers vs the in-process ``pgas``
  backend, spike digest + JSONL event-log bytes + registry textfile
  (each pool flavor replays its in-process twin's instrumentation);
* pool (pickled-mailbox MPI flavor) at 4 workers vs sequential;
* spike digests agree across *all* backends regardless of flavor;
* a mid-run host worker crash recovered by the resilience driver lands
  on the clean-run digest;
* the CLI drives the pool end to end and reports host utilization.

Pool runs spawn real processes, so configurations here stay small; the
throughput story lives in ``benchmarks/bench_host_parallel.py``.
"""

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.cli import main
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.exec import ExecLayout, ProcessPoolAdapter, make_adapter
from repro.obs import Observability, render_textfile, write_event_log
from repro.resilience import ResilientRunner, spike_digest

TICKS = 20
N_CORES = 16
N_PROCESSES = 8


def _net():
    return build_quickstart_network(n_cores=N_CORES, seed=11)


def _layout(workers=1):
    return ExecLayout(
        n_processes=N_PROCESSES, record_spikes=True, workers=workers
    )


def _run(backend, workers=1, ticks=TICKS):
    obs = Observability.with_tracing()
    with make_adapter(backend, obs=obs) as sim:
        sim.prepare(_net(), _layout(workers))
        result = sim.run(ticks)
    return result, obs


@pytest.fixture(scope="module")
def sequential_run():
    return _run("sequential")


@pytest.fixture(scope="module")
def pgas_run():
    return _run("pgas")


class TestPoolByteIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_pgas_windows_match_in_process_pgas(
        self, pgas_run, workers, tmp_path
    ):
        ref_res, ref_obs = pgas_run
        pool_res, pool_obs = _run("pool", workers=workers)
        assert pool_res.total_spikes == ref_res.total_spikes
        assert spike_digest(pool_res.spikes) == spike_digest(ref_res.spikes)
        a = write_event_log(ref_obs.tracer, tmp_path / "pgas.jsonl")
        b = write_event_log(pool_obs.tracer, tmp_path / f"pool{workers}.jsonl")
        assert a.read_bytes() == b.read_bytes()
        assert render_textfile(pool_obs.registry) == render_textfile(
            ref_obs.registry
        )

    def test_mpi_mailboxes_match_sequential(self, sequential_run, tmp_path):
        seq_res, seq_obs = sequential_run
        pool_res, pool_obs = _run("pool-mpi", workers=4)
        assert spike_digest(pool_res.spikes) == spike_digest(seq_res.spikes)
        a = write_event_log(seq_obs.tracer, tmp_path / "seq.jsonl")
        b = write_event_log(pool_obs.tracer, tmp_path / "mpi.jsonl")
        assert a.read_bytes() == b.read_bytes()
        assert render_textfile(pool_obs.registry) == render_textfile(
            seq_obs.registry
        )

    def test_digest_agrees_across_flavors(self, sequential_run, pgas_run):
        seq_res, _ = sequential_run
        pgas_res, _ = pgas_run
        assert spike_digest(seq_res.spikes) == spike_digest(pgas_res.spikes)


class TestMacaqueDigest:
    def test_pool_matches_sequential_on_macaque(self):
        from repro.cocomac.model import build_macaque_model

        def net():
            return build_macaque_model(total_cores=77, seed=3).compiled.network

        seq = Compass(
            net(), CompassConfig(n_processes=4, record_spikes=True)
        ).run(10)
        with make_adapter("pool") as sim:
            sim.prepare(
                net(),
                ExecLayout(n_processes=4, record_spikes=True, workers=4),
            )
            pool = sim.run(10)
        assert pool.total_spikes == seq.total_spikes
        assert spike_digest(pool.spikes) == spike_digest(seq.spikes)


class TestWorkerCrashRecovery:
    def test_recovery_lands_on_clean_digest(self):
        clean = Compass(
            _net(), CompassConfig(n_processes=N_PROCESSES, record_spikes=True)
        ).run(30)

        def factory():
            return ProcessPoolAdapter(flavor="pgas", workers=4).prepare(
                _net(), _layout(workers=4)
            )

        runner = ResilientRunner(factory, checkpoint_interval=5)
        runner.sim.inject_worker_crash(12, worker=1)
        try:
            result = runner.run(30)
        finally:
            runner.sim.teardown()

        assert spike_digest(result.spikes) == spike_digest(clean.spikes)
        kinds = [f.kind for f in runner.report.failures]
        assert kinds == ["WorkerCrashError"]


class TestExecCli:
    def test_exec_run_pool_reports_utilization(self, capsys):
        assert main(
            ["exec", "run", "quickstart", "--ticks", "10",
             "--processes", "4", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "(pool)" in out
        assert "core utilization" in out
