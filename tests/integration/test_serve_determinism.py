"""End-to-end determinism of the serving layer.

Two acceptance properties from the serving design:

1. **Fixed layout, repeated runs**: a seeded closed-loop load on the
   macaque model — including an injected rank crash routed through the
   resilience layer — completes every job and produces a byte-identical
   latency report on every run.
2. **Cross-layout**: for a fault-free load, the report is byte-identical
   between 1-process and 4-process virtual clusters, because run cost is
   charged only from partition-invariant quantities (ticks and per-tick
   fired counts).
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultSchedule, RankCrash
from repro.serve.jobs import DONE
from repro.serve.loadgen import ClosedLoopLoad, build_report, open_loop_load
from repro.serve.server import ServeConfig, SimServer

MACAQUE_CORES = 128
MACAQUE_SEED = 7


def _closed_loop_with_crash():
    server = SimServer(
        ServeConfig(
            workers=2,
            processes=4,
            max_batch_size=4,
            max_batch_delay_us=10_000.0,
            fault_schedule=FaultSchedule([RankCrash(tick=5, rank=1)]),
            checkpoint_interval=5,
        )
    )
    load = ClosedLoopLoad(
        server,
        clients=3,
        jobs_per_client=3,
        think_us=2_000.0,
        model="macaque",
        cores=MACAQUE_CORES,
        model_seed=MACAQUE_SEED,
        ticks_lo=8,
        ticks_hi=16,
        deadline_us=2_000_000.0,
        seed=21,
    )
    load.start()
    server.run()
    return server, load


class TestClosedLoopMacaqueWithCrash:
    @pytest.fixture(scope="class")
    def first_run(self):
        return _closed_loop_with_crash()

    def test_all_jobs_complete(self, first_run):
        server, load = first_run
        assert len(load.job_ids) == 9
        assert all(server.jobs[i].status == DONE for i in load.job_ids)

    def test_crash_was_recovered_and_charged(self, first_run):
        server, _ = first_run
        retried = [b for b in server.batches if b.retries > 0]
        assert len(retried) == 1
        assert retried[0].overhead_us > 0.0
        # The recovery overhead lands on every job of the faulted batch.
        for jid in retried[0].job_ids:
            assert server.jobs[jid].overhead_us == retried[0].overhead_us

    def test_report_reproducible_at_fixed_layout(self, first_run):
        server, _ = first_run
        again, _ = _closed_loop_with_crash()
        assert build_report(again).to_json() == build_report(server).to_json()


class TestCrossLayoutByteIdentity:
    def _report(self, processes: int) -> str:
        server = SimServer(
            ServeConfig(
                workers=2,
                processes=processes,
                max_batch_size=4,
                max_batch_delay_us=5_000.0,
            )
        )
        open_loop_load(
            server,
            rate_per_s=100.0,
            jobs=12,
            model="macaque",
            cores=MACAQUE_CORES,
            model_seed=MACAQUE_SEED,
            ticks_lo=8,
            ticks_hi=16,
            deadline_us=2_000_000.0,
            seed=3,
        )
        server.run()
        return build_report(server).to_json()

    def test_1_vs_4_rank_reports_identical(self):
        assert self._report(1) == self._report(4)
