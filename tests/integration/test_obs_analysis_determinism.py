"""Determinism and partition invariance of the trace analytics.

The acceptance contract for ``repro.obs.analysis`` (docs/perf_analysis.md):
on a traced macaque run, the analyze report and the folded flame output
are byte-identical across two same-seed runs, and the partition-invariant
sections — the cluster-totals tail of the report and the ``cluster;…``
flame subtree — are additionally identical between 1-rank and 4-rank
layouts of the same network.
"""

import pytest

from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.obs import Observability
from repro.obs.analysis import (
    analyze_report,
    critical_path,
    format_folded,
    invariant_section,
    load_events,
)
from repro.obs.analysis.critical import PHASE_ORDER
from repro.obs.analysis.flame import fold_stacks, folded_lines
from repro.obs.analysis.imbalance import imbalance_heatmap

# The leak-driven macaque model is silent until ~tick 54; run long enough
# that real spike traffic (and therefore real imbalance) is in the trace.
TICKS = 100


def _traced_events(network, n_processes):
    obs = Observability.with_tracing()
    sim = Compass(network, CompassConfig(n_processes=n_processes), obs=obs)
    sim.run(TICKS)
    return load_events(obs.tracer)


@pytest.fixture(scope="module")
def events_r1(macaque_small):
    return _traced_events(macaque_small.compiled.network, 1)


@pytest.fixture(scope="module")
def events_r4(macaque_small):
    return _traced_events(macaque_small.compiled.network, 4)


@pytest.fixture(scope="module")
def events_r4_rerun(macaque_small):
    """A second, independent same-seed 4-rank run."""
    return _traced_events(macaque_small.compiled.network, 4)


class TestByteIdentity:
    def test_analyze_report_identical_across_runs(self, events_r4,
                                                  events_r4_rerun):
        assert analyze_report(events_r4) == analyze_report(events_r4_rerun)

    def test_folded_flame_identical_across_runs(self, events_r4,
                                                events_r4_rerun):
        a = format_folded(events_r4)
        assert a == format_folded(events_r4_rerun)
        assert a  # a macaque run is never an empty flame


class TestPartitionInvariance:
    def test_invariant_report_section_matches_across_layouts(
        self, events_r1, events_r4
    ):
        report_1 = analyze_report(events_r1)
        report_4 = analyze_report(events_r4)
        # Full reports legitimately differ (they name ranks) ...
        assert report_1 != report_4
        # ... but the partition-invariant tail is identical.
        tail_1 = invariant_section(report_1)
        tail_4 = invariant_section(report_4)
        assert tail_1
        assert tail_1 == tail_4

    def test_cluster_flame_subtree_matches_across_layouts(
        self, events_r1, events_r4
    ):
        lines_1 = folded_lines(fold_stacks(events_r1))
        lines_4 = folded_lines(fold_stacks(events_r4))
        cluster_1 = [ln for ln in lines_1 if ln.startswith("cluster;")]
        cluster_4 = [ln for ln in lines_4 if ln.startswith("cluster;")]
        assert cluster_1
        assert cluster_1 == cluster_4
        # The rank-keyed subtrees differ by construction.
        assert lines_1 != lines_4

    def test_imbalance_sections_are_partition_invariant_names(
        self, events_r1, events_r4
    ):
        rows_1 = {r.section for r in imbalance_heatmap(events_r1)}
        rows_4 = {r.section for r in imbalance_heatmap(events_r4)}
        # Same row keys (phase/metric, never rank ids) in both layouts.
        assert rows_1 == rows_4
        assert all("/" in s and "rank" not in s for s in rows_4)


class TestCriticalPathShape:
    def test_macaque_run_names_every_phase(self, events_r4):
        cp = critical_path(events_r4)
        assert len(cp.ticks) == TICKS
        assert {p for p, _ in cp.phase_cost} == set(PHASE_ORDER)
        # Every tick's binding rank is a real rank of the 4-way layout.
        assert all(0 <= t.rank < 4 for t in cp.ticks)
        # Cluster totals carry the invariant per-tick summary metrics.
        metrics = {m for m, _, _ in cp.cluster_totals}
        assert {"fired", "spikes", "neurons", "active_axons"} <= metrics
