"""Calibration anchors: model values vs the paper's reported numbers.

These are the quantitative reproduction targets of EXPERIMENTS.md.  The
tolerances are deliberately loose (the substrate is a model, not the
authors' Blue Gene), but tight enough that a regression in the cost model
or the traffic model fails loudly.
"""

import pytest

from repro.perf.headline import headline_summary
from repro.perf.realtime import max_realtime_cores, realtime_series
from repro.perf.strong_scaling import strong_scaling_series
from repro.perf.thread_scaling import procs_threads_tradeoff, thread_scaling_series
from repro.perf.weak_scaling import weak_scaling_series


@pytest.fixture(scope="module")
def weak():
    return weak_scaling_series()


@pytest.fixture(scope="module")
def strong():
    return strong_scaling_series()


class TestFig4aWeakScaling:
    def test_total_band(self, weak):
        # Paper: ~165 s at 1 rack rising to 194 s at 16 racks.
        assert weak[0].times.total == pytest.approx(165, rel=0.15)
        assert weak[-1].times.total == pytest.approx(194, rel=0.15)

    def test_near_constant(self, weak):
        totals = [p.times.total for p in weak]
        assert max(totals) / min(totals) < 1.25

    def test_growth_is_in_network_phase(self, weak):
        d_total = weak[-1].times.total - weak[0].times.total
        d_network = weak[-1].times.network - weak[0].times.network
        assert d_network / d_total > 0.7

    def test_headline_slowdown(self, weak):
        # Paper: 388x slower than real time at 256M cores.
        assert weak[-1].slowdown == pytest.approx(388, rel=0.15)


class TestFig4bTraffic:
    def test_spikes_per_tick(self, weak):
        # Paper: ~22M white-matter spikes/tick at the largest point.
        assert weak[-1].spikes_per_tick == pytest.approx(22e6, rel=0.25)

    def test_bytes_per_tick_below_link_bandwidth(self, weak):
        # Paper: 0.44 GB/tick, "well below the 5D torus link bandwidth".
        assert weak[-1].bytes_per_tick == pytest.approx(0.44e9, rel=0.25)
        assert weak[-1].bytes_per_tick < 2e9

    def test_message_count_sublinear_in_model_size(self, weak):
        growth = weak[-1].messages_per_tick / weak[0].messages_per_tick
        size_growth = weak[-1].cores / weak[0].cores
        # per-process message rate grows sub-linearly (§VI-B)
        per_proc_growth = (weak[-1].messages_per_tick / weak[-1].nodes) / (
            weak[0].messages_per_tick / weak[0].nodes
        )
        assert per_proc_growth < size_growth
        assert growth > 1.0


class TestFig5StrongScaling:
    def test_baseline_324s(self, strong):
        assert strong[0].times.total == pytest.approx(324, rel=0.1)

    def test_8rack_speedup(self, strong):
        p8 = next(p for p in strong if p.racks == 8)
        # Paper: 6.9x (47 s).
        assert p8.speedup == pytest.approx(6.9, rel=0.2)
        assert p8.times.total == pytest.approx(47, rel=0.25)

    def test_16rack_speedup(self, strong):
        p16 = next(p for p in strong if p.racks == 16)
        # Paper: 8.8x (37 s).  Sub-linear: well below the 16x capacity.
        assert 7.0 < p16.speedup < 13.0
        assert p16.times.total == pytest.approx(37, rel=0.3)

    def test_scaling_inhibited_by_communication(self, strong):
        p16 = next(p for p in strong if p.racks == 16)
        assert p16.times.network / p16.times.total > 0.3


class TestFig6ThreadScaling:
    def test_speedup_band_at_32_threads(self):
        series = thread_scaling_series()
        s32 = series[-1].speedup_total
        # "excellent multi-threaded scaling ... not quite perfect"
        assert 10.0 < s32 < 28.0

    def test_tradeoff_near_equal(self):
        points = procs_threads_tradeoff()
        one_wide = next(p for p in points if p.procs_per_node == 1)
        many_narrow = next(p for p in points if p.procs_per_node == 16)
        ratio = one_wide.times.total / many_narrow.times.total
        # §VI-D: "yielded little change in performance"
        assert 0.8 < ratio < 1.25


class TestFig7Realtime:
    def test_pgas_realtime_81k_at_four_racks(self):
        series = realtime_series()
        four = {p.backend: p for p in series if p.racks == 4}
        assert four["pgas"].seconds == pytest.approx(1.0, rel=0.3)
        assert four["pgas"].realtime

    def test_mpi_ratio(self):
        series = realtime_series()
        four = {p.backend: p for p in series if p.racks == 4}
        ratio = four["mpi"].seconds / four["pgas"].seconds
        # Paper: 2.1x.
        assert ratio == pytest.approx(2.1, rel=0.35)

    def test_realtime_frontier(self):
        assert max_realtime_cores("pgas", racks=4) == pytest.approx(81920, rel=0.3)


class TestHeadline:
    def test_summary_against_paper(self):
        s = headline_summary()
        paper, model = s["paper"], s["model"]
        # The paper reports binary core counts (2**28) with decimal labels
        # ("256M", "65B"); allow that rounding.
        assert model["cores"] == pytest.approx(paper["cores"], rel=0.1)
        assert model["neurons"] == pytest.approx(paper["neurons"], rel=0.1)
        assert model["synapses"] == pytest.approx(paper["synapses"], rel=0.1)
        assert model["mean_rate_hz"] == pytest.approx(paper["mean_rate_hz"], rel=0.01)
        assert model["slowdown"] == pytest.approx(paper["slowdown"], rel=0.15)
