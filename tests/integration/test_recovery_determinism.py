"""Recovery determinism at model scale (the PR's acceptance criterion).

A macaque run that crashes mid-flight and recovers from a coordinated
checkpoint must produce the *identical* spike-raster digest as the same
run with no fault — across rank counts and both recovery policies.  This
is the unhappy-path extension of the paper's one-to-one spike
correspondence claim.
"""

import pytest

from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.resilience import (
    FaultSchedule,
    RankCrash,
    RecoveryPolicy,
    ResilientRunner,
    spike_digest,
)

TICKS = 40
CRASH_TICK = 23
INTERVAL = 10


def _factory(net, n_ranks):
    cfg = CompassConfig(n_processes=n_ranks, record_spikes=True)

    def make():
        return Compass(net, cfg)

    return make


@pytest.mark.parametrize("n_ranks", [1, 4])
@pytest.mark.parametrize("policy", ["restart", "spare"])
def test_crash_recovery_digest_matches_clean_run(macaque_small, n_ranks, policy):
    net = macaque_small.compiled.network
    make = _factory(net, n_ranks)

    clean = make().run(TICKS)
    digest = spike_digest(clean.spikes)

    runner = ResilientRunner(
        make,
        schedule=FaultSchedule([RankCrash(tick=CRASH_TICK, rank=n_ranks - 1)]),
        checkpoint_interval=INTERVAL,
        policy=RecoveryPolicy(kind=policy),
    )
    result = runner.run(TICKS)

    assert spike_digest(result.spikes) == digest
    assert len(runner.report.failures) == 1
    assert runner.report.lost_ticks == CRASH_TICK - (CRASH_TICK // INTERVAL) * INTERVAL
    # Event counters must also match the uninterrupted run exactly.
    assert result.metrics.total_fired == clean.metrics.total_fired
    assert result.metrics.total_remote_spikes == clean.metrics.total_remote_spikes


def test_two_faults_with_random_schedule(macaque_small):
    net = macaque_small.compiled.network
    make = _factory(net, 4)

    digest = spike_digest(make().run(TICKS).spikes)
    sched = FaultSchedule.random(
        seed=2, ticks=TICKS, n_ranks=4, crashes=1, drops=1
    )
    runner = ResilientRunner(make, schedule=sched, checkpoint_interval=INTERVAL)
    result = runner.run(TICKS)
    assert spike_digest(result.spikes) == digest
