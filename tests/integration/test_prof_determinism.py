"""Isolation contract of the host-profiling layer (repro.obs.prof).

Profiling measures the host — stack samples, tracemalloc bytes, phase
nanoseconds — so its output varies run to run.  The contract is that
none of it is rank-visible: with profiling enabled, every deterministic
artifact (spike digests, JSONL event logs, the metric registry's
rendered textfile, recovery digests) stays byte-identical to an
unprofiled run.  DET111 enforces the static side of this; these tests
enforce the observable side.
"""

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.obs import Observability, write_event_log, render_textfile
from repro.resilience import (
    FaultSchedule,
    RankCrash,
    RecoveryPolicy,
    ResilientRunner,
    spike_digest,
)

TICKS = 30
N_CORES = 16


def _run(n_processes, obs, seed=11, ticks=TICKS, pgas=False):
    net = build_quickstart_network(n_cores=N_CORES, seed=seed)
    cfg = CompassConfig(n_processes=n_processes, record_spikes=True)
    if pgas:
        from repro.core.pgas_simulator import PgasCompass

        sim = PgasCompass(net, cfg, obs=obs)
    else:
        sim = Compass(net, cfg, obs=obs)
    with obs.prof if obs.profiling else _null_ctx():
        result = sim.run(ticks)
    return result, obs


class _null_ctx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


def _profiled_obs():
    return Observability.with_profiling(hz=499.0, tracing=True)


class TestProfiledDigestsMatchUnprofiled:
    def test_event_log_byte_identical(self, tmp_path):
        _, obs_plain = _run(4, Observability.with_tracing())
        _, obs_prof = _run(4, _profiled_obs())
        # Profiling genuinely ran: phase rows accumulated host cost.
        assert obs_prof.prof.rows()
        assert obs_prof.prof.total_work_units > 0
        a = write_event_log(obs_plain.tracer, tmp_path / "plain.jsonl")
        b = write_event_log(obs_prof.tracer, tmp_path / "prof.jsonl")
        assert a.read_bytes() == b.read_bytes()
        # Host stacks live only under the profiler's own "host" root —
        # never in the deterministic event stream.
        assert all(key.split(";")[0] == "host"
                   for key in obs_prof.prof.folded())
        assert b"host;" not in b.read_bytes()

    def test_spike_digest_and_registry_identical(self):
        res_plain, obs_plain = _run(4, Observability.with_tracing())
        res_prof, obs_prof = _run(4, _profiled_obs())
        assert spike_digest(res_plain.spikes) == spike_digest(res_prof.spikes)
        assert render_textfile(obs_plain.registry) == render_textfile(
            obs_prof.registry
        )

    def test_pgas_backend_digest_identical(self):
        res_plain, _ = _run(2, Observability.off(), pgas=True)
        res_prof, obs_prof = _run(2, Observability.with_profiling(hz=499.0),
                                  pgas=True)
        assert obs_prof.prof.rows()
        assert spike_digest(res_plain.spikes) == spike_digest(res_prof.spikes)


class TestPartitionInvarianceWithProfiling:
    def test_1_vs_4_rank_digests_match(self):
        res_1, obs_1 = _run(1, _profiled_obs())
        res_4, obs_4 = _run(4, _profiled_obs())
        assert spike_digest(res_1.spikes) == spike_digest(res_4.spikes)
        # Host profiles legitimately differ across layouts (that is the
        # point of the divergence report); the simulation must not.
        assert obs_1.prof.rows() and obs_4.prof.rows()


class TestRecoveryWithProfiling:
    def test_recovery_digest_matches_clean_run(self):
        def factory(obs):
            net = build_quickstart_network(n_cores=N_CORES, seed=11)
            cfg = CompassConfig(n_processes=4, record_spikes=True)
            return lambda: Compass(net, cfg, obs=obs)

        clean = factory(Observability.off())().run(TICKS)

        prof_obs = Observability.with_profiling(hz=499.0)
        runner = ResilientRunner(
            factory(prof_obs),
            schedule=FaultSchedule([RankCrash(tick=17, rank=1)]),
            checkpoint_interval=5,
            policy=RecoveryPolicy(kind="restart"),
        )
        with prof_obs.prof:
            result = runner.run(TICKS)
        assert spike_digest(result.spikes) == spike_digest(clean.spikes)
        assert prof_obs.prof.rows()
