"""The docs/tutorial.md walkthrough must actually work.

This test executes the tutorial's sound-localisation example verbatim in
spirit: a coincidence-detector bank recovers the interaural lag.
"""

import numpy as np
import pytest

from repro.arch.builder import NetworkBuilder
from repro.arch.params import NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


@pytest.fixture(scope="module")
def localiser():
    builder = NetworkBuilder(seed=7)
    detector = np.zeros((256, 256), dtype=bool)
    for d in range(8):
        detector[d, d] = True
        detector[8, d] = True
    coincidence = NeuronParameters(
        weights=(2, 0, 0, 0), leak=-2, threshold=2, floor=0
    )
    pop = builder.add_population(
        "detectors", 1, neuron=coincidence, crossbar=detector
    )
    builder.reserve_inputs(pop, 8)
    builder.reserve_inputs(pop, 1)
    network, _, (left_port, right_port) = builder.build()
    return network, left_port, right_port


def present(localiser, lag: int, ticks: int = 24, period: int = 4):
    network, left_port, right_port = localiser
    sim = Compass(network, CompassConfig(record_spikes=True))
    for t in range(0, ticks - 8, period):
        sim.attach_schedule(right_port.schedule_for({t: np.array([0])}))
        for d in range(8):
            arrival = t - lag + d
            if arrival >= 0:
                sim.attach_schedule(
                    left_port.schedule_for({arrival: np.array([d])})
                )
    sim.run(ticks)
    return sim


@pytest.mark.parametrize("true_lag", [2, 5, 7])
def test_tutorial_recovers_interaural_lag(localiser, true_lag):
    sim = present(localiser, true_lag)
    _, _, neurons = sim.recorder.to_arrays()
    votes = np.bincount(neurons, minlength=8)[:8]
    assert int(np.argmax(votes)) == true_lag
    # Only the tuned detector accumulates repeated coincidences.
    assert votes[true_lag] >= 3


def test_lone_ear_silent(localiser):
    network, left_port, right_port = localiser
    sim = Compass(network, CompassConfig(record_spikes=True))
    sim.attach_schedule(right_port.schedule_for({t: np.array([0]) for t in range(10)}))
    sim.run(14)
    assert sim.recorder.count == 0
