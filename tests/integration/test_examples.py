"""Every example script must run cleanly — they are the public quickstart."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    # Deliverable: at least a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "FAIL" not in result.stdout


def test_quickstart_reports_invariance():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "partition invariance" in result.stdout
    assert "OK" in result.stdout
