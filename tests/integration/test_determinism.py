"""Determinism regression: identical spike-raster digests across runs.

The whole determinism-sanitizer subsystem exists to protect one
observable property: a Compass run is a pure function of (model, ticks)
— not of rank count, repetition, or instrumentation.  These tests pin
that property on the macaque model with sha256 digests of the recorded
raster, so any future nondeterminism fails loudly and bisectably.
"""

import hashlib

from repro.cocomac.model import build_macaque_model
from repro.core.config import CompassConfig
from repro.core.simulator import Compass

TICKS = 60


def raster_digest(net, n_processes, ticks=TICKS, sanitize=False):
    cfg = CompassConfig(n_processes=n_processes, record_spikes=True)
    sim = Compass(net, cfg, sanitize=sanitize)
    sim.run(ticks)
    h = hashlib.sha256()
    for arr in sim.recorder.to_arrays():
        h.update(arr.tobytes())
    return h.hexdigest()


class TestMacaqueDeterminism:
    def test_repeat_runs_identical(self, macaque_small):
        net = macaque_small.compiled.network
        assert raster_digest(net, 1) == raster_digest(net, 1)

    def test_rank_counts_identical(self, macaque_small):
        net = macaque_small.compiled.network
        assert raster_digest(net, 1) == raster_digest(net, 4)

    def test_sanitizer_does_not_perturb_raster(self, macaque_small):
        net = macaque_small.compiled.network
        assert raster_digest(net, 4) == raster_digest(net, 4, sanitize=True)

    def test_rebuilt_model_identical(self, macaque_small):
        """Compilation itself is deterministic: building the same model
        from the same seed yields a digest-identical run."""
        rebuilt = build_macaque_model(total_cores=128, seed=7)
        assert raster_digest(macaque_small.compiled.network, 4) == raster_digest(
            rebuilt.compiled.network, 4
        )
