"""Region-aligned partitioning reduces MPI traffic — the PCC's purpose.

§IV: the PCC "works to minimize MPI message counts within the Compass
main simulation loop by assigning TrueNorth cores in the same functional
region to as few Compass processes as necessary.  This minimization
enables Compass to use faster shared memory communication to handle most
intra-region spiking."  Here we compile a gray-matter-heavy four-region
model and run it under (a) the region-aligned partition the compiler
proposes and (b) a deliberately misaligned partition; functional results
must agree while the aligned run keeps far more traffic in shared memory.
"""

import numpy as np
import pytest

from repro.arch.params import NeuronParameters
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.pcc import ParallelCompassCompiler
from repro.core.config import CompassConfig
from repro.core.partition import Partition
from repro.core.simulator import Compass

RANKS = 4
TICKS = 200


def lively_neuron() -> NeuronParameters:
    return NeuronParameters(
        weights=(1, -1, 0, 0), leak=8, stochastic_leak=True, threshold=2,
        floor=-8,
    )


@pytest.fixture(scope="module")
def compiled():
    regions = [
        RegionSpec(
            f"R{i}", 8, neuron=lively_neuron(), crossbar_density=0.05,
            axon_type_fractions=(0.45, 0.55, 0.0, 0.0),
        )
        for i in range(4)
    ]
    connections = []
    for i in range(4):
        # Heavy gray matter, light white matter (ring).
        connections.append(ConnectionSpec(f"R{i}", f"R{i}", 1600))
        connections.append(ConnectionSpec(f"R{i}", f"R{(i + 1) % 4}", 200))
    obj = CoreObject("aligned-demo", regions=regions, connections=connections, seed=3)
    return ParallelCompassCompiler().compile(obj)


@pytest.fixture(scope="module")
def runs(compiled):
    net = compiled.network
    aligned_part = compiled.partition_for(RANKS)
    aligned = Compass(
        net, CompassConfig(n_processes=RANKS, record_spikes=True), aligned_part
    )
    aligned.run(TICKS)

    # Misaligned: boundaries shifted half a region off the region edges.
    starts = np.array([0, 4, 12, 20, 32])
    misaligned = Compass(
        net,
        CompassConfig(n_processes=RANKS, record_spikes=True),
        Partition.from_boundaries(starts),
    )
    misaligned.run(TICKS)
    return aligned, misaligned


class TestRegionAlignment:
    def test_aligned_partition_matches_regions(self, compiled):
        part = compiled.partition_for(RANKS)
        bounds = [part.range_of_rank(r) for r in range(RANKS)]
        assert bounds == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_functional_result_identical(self, runs):
        aligned, misaligned = runs
        for a, b in zip(
            aligned.recorder.to_arrays(), misaligned.recorder.to_arrays()
        ):
            assert np.array_equal(a, b)

    def test_aligned_partition_sends_fewer_remote_spikes(self, runs):
        aligned, misaligned = runs
        assert aligned.metrics.total_fired > 0
        assert (
            aligned.metrics.total_remote_spikes
            < 0.7 * misaligned.metrics.total_remote_spikes
        )

    def test_aligned_partition_keeps_more_traffic_local(self, runs):
        aligned, misaligned = runs
        routed_a = aligned.metrics.total_local_spikes + aligned.metrics.total_remote_spikes
        routed_m = (
            misaligned.metrics.total_local_spikes
            + misaligned.metrics.total_remote_spikes
        )
        local_frac_aligned = aligned.metrics.total_local_spikes / routed_a
        local_frac_mis = misaligned.metrics.total_local_spikes / routed_m
        assert local_frac_aligned > local_frac_mis

    def test_partition_validation(self, compiled):
        net = compiled.network
        with pytest.raises(ValueError, match="ranks"):
            Compass(
                net, CompassConfig(n_processes=2), compiled.partition_for(RANKS)
            )
        with pytest.raises(ValueError, match="covers"):
            Compass(
                net, CompassConfig(n_processes=2), Partition(net.n_cores + 5, 2)
            )
