"""End-to-end determinism of the sharded fleet tier.

The acceptance properties for the shard subsystem:

1. **Fixed layout, repeated runs**: a seeded open-loop fleet load —
   with autoscaling enabled and a rank crash injected on one shard —
   produces a byte-identical ``FleetReport`` JSON, an identical routing
   digest, and an identical scale-decision log on every run.
2. **Cross-layout**: the report is byte-identical between 1-process and
   4-process per-shard backends, because run cost is charged only from
   partition-invariant quantities (ticks and per-tick fired counts) and
   ``state_nbytes`` counts rank-local arrays whose total is
   layout-invariant.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultSchedule, RankCrash
from repro.serve.server import ServeConfig
from repro.shard.autoscale import AutoscalePolicy
from repro.shard.fleet import build_fleet_report
from repro.shard.loadgen import fleet_open_loop
from repro.shard.router import FleetConfig, ShardRouter


def _run_fleet(processes: int = 2, crash: bool = False):
    schedule = FaultSchedule([RankCrash(tick=5, rank=1)]) if crash else None
    router = ShardRouter(
        FleetConfig(
            shards=3,
            spill=1,
            hot_depth=8,
            serve=ServeConfig(
                workers=1,
                processes=processes,
                max_batch_size=4,
                max_batch_delay_us=5_000.0,
                keep_records=False,
                fault_schedule=schedule,
                checkpoint_interval=5,
            ),
            autoscale=AutoscalePolicy(max_workers=3),
            fault_shard=1 if crash else -1,
        )
    )
    fleet_open_loop(
        router,
        rate_per_s=400.0,
        jobs=120,
        tenants=40,
        cores=4,
        ticks_lo=10,
        ticks_hi=30,
        deadline_us=1_000_000.0,
        seed=13,
        hot_fraction=0.25,
        hot_tenants=3,
    )
    router.run()
    return router


class TestFixedLayoutRepeatedRuns:
    @pytest.fixture(scope="class")
    def first_run(self):
        return _run_fleet(crash=True)

    def test_crash_was_retried_on_the_fault_shard_only(self, first_run):
        report = build_fleet_report(first_run)
        assert report.retries == 1
        assert [s.shard for s in report.shards if s.retries] == [1]

    def test_autoscaler_acted(self, first_run):
        assert first_run.scale_log
        assert any(d.action == "grow" for d in first_run.scale_log)

    def test_report_and_digest_reproducible(self, first_run):
        again = _run_fleet(crash=True)
        assert again.routing_digest == first_run.routing_digest
        assert [d.digest_token() for d in again.scale_log] == [
            d.digest_token() for d in first_run.scale_log
        ]
        assert (
            build_fleet_report(again).to_json()
            == build_fleet_report(first_run).to_json()
        )


class TestCrossLayoutByteIdentity:
    def test_1_vs_4_rank_fleet_reports_identical(self):
        one = _run_fleet(processes=1)
        four = _run_fleet(processes=4)
        assert one.routing_digest == four.routing_digest
        assert (
            build_fleet_report(one).to_json()
            == build_fleet_report(four).to_json()
        )
