"""End-to-end: database → reduction → atlas → IPFP → PCC → Compass run."""

import numpy as np
import pytest

from repro.cocomac.model import build_macaque_model
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


class TestEndToEnd:
    def test_full_pipeline(self, macaque_small):
        model = macaque_small
        assert model.n_regions == 77
        cm = model.compiled
        net = cm.network
        assert net.n_cores == model.total_cores

        sim = Compass(net, CompassConfig(n_processes=8))
        result = sim.run(200)
        assert result.total_spikes > 0
        # White matter flows: some spikes must cross processes.
        assert sim.metrics.total_remote_spikes > 0
        assert sim.metrics.total_messages > 0

    def test_messages_are_aggregated(self, macaque_small):
        """Per tick, at most one message per ordered process pair (§III)."""
        net = macaque_small.compiled.network
        sim = Compass(net, CompassConfig(n_processes=8))
        sim.run(100)
        for tm in sim.metrics.per_tick:
            assert tm.messages <= 8 * 7

    def test_gray_matter_stays_regional(self, macaque_small):
        """Intra-region connections target the same region's cores."""
        cm = macaque_small.compiled
        net = cm.network
        for name, (lo, hi) in cm.region_ranges.items():
            src = net.target_gid[lo:hi]
            connected = src >= 0
            targets = src[connected]
            # At least some targets stay inside the region (gray matter).
            inside = ((targets >= lo) & (targets < hi)).sum()
            if (hi - lo) >= 2:
                assert inside > 0

    def test_compile_metrics_populated(self, macaque_small):
        m = macaque_small.compiled.metrics
        assert m.wall_seconds > 0
        assert m.exchange_messages > 0
        assert m.white_matter_connections > 0
        assert m.gray_matter_connections > 0

    def test_injection_perturbs_dynamics(self, macaque_small):
        net = macaque_small.compiled.network
        a = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        b = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        for axon in range(64):
            b.inject(0, axon, tick=0)
        a.run(50)
        b.run(50)
        ta, _, _ = a.recorder.to_arrays()
        tb, _, _ = b.recorder.to_arrays()
        assert ta.size != tb.size or not np.array_equal(ta, tb)

    def test_larger_build_scales(self):
        model = build_macaque_model(total_cores=256, seed=11)
        assert model.total_cores == 256
        assert model.compiled.network.n_cores == 256
