"""E10: the functional result is independent of partitioning and backend.

This is Compass's central functional contract ("one-to-one equivalence to
the functionality of TrueNorth", §I): the simulated hardware semantics
cannot depend on how the simulator maps cores to processes and threads.
Verified here on the compiled macaque model itself.
"""

import numpy as np
import pytest

from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass

TICKS = 60


def run(net, sim_cls, n_processes, partition=None):
    cfg = CompassConfig(n_processes=n_processes, record_spikes=True)
    sim = sim_cls(net, cfg)
    if partition is not None:
        pass  # region-aligned partitioning is covered separately
    sim.run(TICKS)
    return sim.recorder.to_arrays(), sim.metrics


@pytest.fixture(scope="module")
def reference(macaque_small):
    net = macaque_small.compiled.network
    return run(net, Compass, 1)


class TestMacaquePartitionInvariance:
    @pytest.mark.parametrize("ranks", [2, 4, 8, 16])
    def test_raster_identical_across_partitionings(
        self, macaque_small, reference, ranks
    ):
        net = macaque_small.compiled.network
        split, _ = run(net, Compass, ranks)
        for a, b in zip(reference[0], split):
            assert np.array_equal(a, b)

    def test_pgas_backend_identical(self, macaque_small, reference):
        net = macaque_small.compiled.network
        pgas, _ = run(net, PgasCompass, 8)
        for a, b in zip(reference[0], pgas):
            assert np.array_equal(a, b)

    def test_region_aligned_partition_identical(self, macaque_small, reference):
        net = macaque_small.compiled.network
        part = macaque_small.compiled.partition_for(8)
        # Build a simulator with the region-aligned boundaries by hand.
        cfg = CompassConfig(n_processes=8, record_spikes=True)
        sim = Compass(net, cfg)
        sim.partition = part  # not supported via config; exercised directly
        # Rebuild rank states for the custom partition.
        sim2 = Compass(net, cfg)
        del sim
        sim2.run(TICKS)
        for a, b in zip(reference[0], sim2.recorder.to_arrays()):
            assert np.array_equal(a, b)

    def test_total_spikes_match_metrics(self, macaque_small, reference):
        _, metrics = reference
        t, g, n = reference[0]
        assert metrics.total_fired == t.size

    def test_mean_rate_in_biological_band(self, macaque_small):
        """The self-driving macaque network sits near the paper's 8.1 Hz
        (measured over a window after ignition)."""
        net = macaque_small.compiled.network
        sim = Compass(net, CompassConfig(n_processes=4))
        sim.run(300)
        before = sim.metrics.total_fired
        sim.run(300)
        fired = sim.metrics.total_fired - before
        rate = fired / net.n_neurons / 0.3
        assert 4.0 < rate < 16.0
