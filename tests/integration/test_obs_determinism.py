"""Determinism guarantees of the observability layer.

Three contracts from docs/observability.md:

* repeated runs of one configuration produce byte-identical JSONL logs;
* the cluster-track ``tick`` summary subset is partition-invariant —
  identical across different rank counts for the same network and seed
  (alongside the spike digest, the existing cross-layout oracle);
* after a crash + recovery, the registry's ``compass_*`` instruments
  render identically to a fault-free run (checkpointed rollback).
"""

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.obs import (
    Observability,
    first_divergence,
    read_event_log,
    render_textfile,
    write_event_log,
)
from repro.resilience import (
    FaultSchedule,
    RankCrash,
    RecoveryPolicy,
    ResilientRunner,
    spike_digest,
)

TICKS = 30
N_CORES = 16


def _traced_run(n_processes, seed=11, ticks=TICKS):
    net = build_quickstart_network(n_cores=N_CORES, seed=seed)
    obs = Observability.with_tracing()
    sim = Compass(
        net, CompassConfig(n_processes=n_processes, record_spikes=True), obs=obs
    )
    result = sim.run(ticks)
    return result, obs


class TestByteIdentity:
    def test_repeated_runs_identical_jsonl(self, tmp_path):
        _, obs_a = _traced_run(4)
        _, obs_b = _traced_run(4)
        a = write_event_log(obs_a.tracer, tmp_path / "a.jsonl")
        b = write_event_log(obs_b.tracer, tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_repeated_runs_identical_metrics(self):
        res_a, obs_a = _traced_run(4)
        res_b, obs_b = _traced_run(4)
        assert render_textfile(obs_a.registry) == render_textfile(obs_b.registry)
        assert spike_digest(res_a.spikes) == spike_digest(res_b.spikes)


class TestPartitionInvariance:
    def test_tick_subset_matches_across_rank_counts(self, tmp_path):
        res_1, obs_1 = _traced_run(1)
        res_4, obs_4 = _traced_run(4)
        # The full logs differ (more ranks, more per-rank spans) ...
        a = read_event_log(write_event_log(obs_1.tracer, tmp_path / "r1.jsonl"))
        b = read_event_log(write_event_log(obs_4.tracer, tmp_path / "r4.jsonl"))
        assert first_divergence(a, b) is not None
        # ... but the cluster-track tick summaries are identical, as is
        # the spike digest — the two partition-invariant oracles.
        assert first_divergence(a, b, name="tick") is None
        assert spike_digest(res_1.spikes) == spike_digest(res_4.spikes)
        ticks = [r for r in a if r["name"] == "tick"]
        assert len(ticks) == TICKS
        assert all(r["rank"] == -1 for r in ticks)


class TestRecoveryMetrics:
    def test_registry_matches_clean_run_after_recovery(self):
        def factory(obs):
            net = build_quickstart_network(n_cores=N_CORES, seed=11)
            cfg = CompassConfig(n_processes=4, record_spikes=True)
            return lambda: Compass(net, cfg, obs=obs)

        clean_obs = Observability.off()
        clean = factory(clean_obs)().run(TICKS)

        faulty_obs = Observability.off()
        runner = ResilientRunner(
            factory(faulty_obs),
            schedule=FaultSchedule([RankCrash(tick=17, rank=1)]),
            checkpoint_interval=5,
            policy=RecoveryPolicy(kind="restart"),
        )
        result = runner.run(TICKS)

        assert spike_digest(result.spikes) == spike_digest(clean.spikes)
        # compass_* instruments roll back with the checkpoint, so the
        # recovered run's simulator counters match the clean run's.
        clean_text = render_textfile(clean_obs.registry)
        faulty_lines = [
            line
            for line in render_textfile(faulty_obs.registry).splitlines()
            if line.startswith(("compass_", "# TYPE compass_", "# HELP compass_"))
        ]
        clean_lines = [
            line
            for line in clean_text.splitlines()
            if line.startswith(("compass_", "# TYPE compass_", "# HELP compass_"))
        ]
        assert faulty_lines == clean_lines
        # Resilience meta-counters survive the rollback monotonically.
        assert faulty_obs.registry.counter(
            "resilience_checkpoints_total"
        ).total() > 0
