"""End-to-end determinism of the live-telemetry tier.

The acceptance properties for ``repro.obs.live``:

1. **Fixed layout, repeated runs**: a seeded open-loop fleet load with
   streaming telemetry enabled produces byte-identical rollup and alert
   record streams (canonical ``json.dumps(..., sort_keys=True)`` lines)
   on every run, and the alerts actually fire *and* resolve.
2. **Cross-layout**: the streams are byte-identical between 1-process
   and 4-process per-shard backends — every telemetry input is a
   partition-invariant simulated quantity.
3. **Causality**: with tracing on, any routed job's full causal chain
   (route → queue → batch → run → done) reconstructs from the event
   log alone, and the emitted Chrome trace passes flow validation.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability
from repro.obs.jsonl import event_record, first_divergence
from repro.obs.live import SLO, BurnRateRule, TelemetryConfig
from repro.obs.live.journey import find_traces, reconstruct_journey
from repro.obs.perfetto import to_chrome_trace, validate_chrome_trace
from repro.serve.server import ServeConfig
from repro.shard.fleet import build_fleet_report
from repro.shard.loadgen import fleet_open_loop
from repro.shard.router import FleetConfig, ShardRouter


def _canonical(records):
    return [json.dumps(r, sort_keys=True) for r in records]


def _run_fleet(processes: int = 2, tracing: bool = False):
    """One seeded fleet run with streaming telemetry; returns the router
    plus the captured rollup and alert record streams."""
    rollups: list[dict] = []
    alerts: list[dict] = []
    # A latency target well below this load's typical ~20ms end-to-end
    # latency, so the burn-rate rules genuinely fire; short lookback of
    # one window lets the tail of the run resolve them again.
    telemetry = TelemetryConfig(
        window_us=40_000.0,
        slos=(SLO("latency", latency_target_us=8_000.0, error_budget=0.05),),
        rules=(
            BurnRateRule("page", long_windows=2, short_windows=1, threshold=4.0),
        ),
    )
    router = ShardRouter(
        FleetConfig(
            shards=3,
            spill=1,
            hot_depth=8,
            serve=ServeConfig(
                workers=1,
                processes=processes,
                max_batch_size=4,
                max_batch_delay_us=5_000.0,
                keep_records=False,
            ),
            telemetry=telemetry,
        ),
        obs=Observability.with_tracing() if tracing else None,
    )
    router.telemetry.rollup_sink = rollups.append
    router.telemetry.alert_sink = alerts.append
    fleet_open_loop(
        router,
        rate_per_s=400.0,
        jobs=120,
        tenants=40,
        cores=4,
        ticks_lo=10,
        ticks_hi=30,
        deadline_us=1_000_000.0,
        seed=13,
        hot_fraction=0.25,
        hot_tenants=3,
    )
    router.run()
    return router, rollups, alerts


class TestStreamingDeterminism:
    @pytest.fixture(scope="class")
    def first_run(self):
        return _run_fleet()

    def test_telemetry_produced_signal(self, first_run):
        router, rollups, alerts = first_run
        assert router.telemetry.windows_closed >= 3
        assert len(rollups) == router.telemetry.records_emitted
        # The tight SLO target makes alerts fire — and the drain at the
        # end of the run lets at least one resolve again.
        assert router.telemetry.engine.fired >= 1
        assert router.telemetry.engine.resolved >= 1
        states = {a["state"] for a in alerts}
        assert states == {"fire", "resolve"}

    def test_report_surfaces_telemetry(self, first_run):
        router, rollups, alerts = first_run
        report = build_fleet_report(router)
        assert report.windows == router.telemetry.windows_closed
        assert report.rollup_records == len(rollups)
        assert report.alerts_fired == router.telemetry.engine.fired
        assert report.alerts_resolved == router.telemetry.engine.resolved
        assert "telemetry:" in report.format()

    def test_repeated_runs_byte_identical(self, first_run):
        _, rollups, alerts = first_run
        _, rollups2, alerts2 = _run_fleet()
        assert _canonical(rollups) == _canonical(rollups2)
        assert _canonical(alerts) == _canonical(alerts2)

    def test_rank_layout_invariance(self, first_run):
        _, rollups, alerts = first_run  # processes=2
        _, rollups1, alerts1 = _run_fleet(processes=1)
        _, rollups4, alerts4 = _run_fleet(processes=4)
        assert _canonical(rollups1) == _canonical(rollups)
        assert _canonical(rollups4) == _canonical(rollups)
        assert _canonical(alerts1) == _canonical(alerts)
        assert _canonical(alerts4) == _canonical(alerts)
        # first_divergence agrees (and exercises the kind filter on a
        # mixed stream, as `repro obs diff --kind` would see it).
        mixed = rollups + alerts
        mixed1 = rollups1 + alerts1
        assert first_divergence(mixed, mixed1, kind="rollup") is None
        assert first_divergence(mixed, mixed1, kind="alert") is None


class TestCausalJourneys:
    @pytest.fixture(scope="class")
    def traced_run(self):
        router, _, _ = _run_fleet(tracing=True)
        records = [event_record(e) for e in router.obs.tracer.events]
        return router, records

    def test_every_completed_job_has_a_full_chain(self, traced_run):
        router, records = traced_run
        traces = find_traces(records)
        assert traces
        full_chains = 0
        for trace_id in traces:
            journey = reconstruct_journey(records, trace_id)
            assert journey.stages[0] == "route"
            assert journey.stages[-1] in ("done", "reject")
            if journey.stages[-1] == "done":
                assert journey.stages[:2] == ["route", "queue"]
                assert "run" in journey.stages
                full_chains += 1
        assert full_chains >= 10

    def test_route_and_terminal_share_trace_across_shards(self, traced_run):
        router, records = traced_run
        traces = find_traces(records)
        journey = reconstruct_journey(records, traces[0])
        route = journey.steps[0]
        # The routing decision and the shard-local stages carry the same
        # trace id even though they execute on different ranks.
        assert {s.rank for s in journey.steps} == {route.rank}
        assert journey.format().count("span=") == len(journey.steps)

    def test_chrome_trace_flows_validate(self, traced_run):
        router, _ = traced_run
        trace = to_chrome_trace(router.obs.tracer, label="fleet")
        assert validate_chrome_trace(trace) == []

    def test_alert_instants_traced(self, traced_run):
        router, records = traced_run
        alert_events = [r for r in records if r.get("cat") == "alert"]
        assert alert_events
        assert {r["name"] for r in alert_events} <= {"slo.fire", "slo.resolve"}
