"""Property-based tests for partitions and core/thread splits."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import Partition
from repro.runtime.threads import partition_cores


@given(st.integers(1, 5000), st.integers(1, 200))
@settings(max_examples=100)
def test_partition_is_a_partition(n_cores, n_ranks):
    if n_ranks > n_cores:
        n_ranks = n_cores
    p = Partition(n_cores, n_ranks)
    covered = 0
    prev_hi = 0
    for lo, hi in p:
        assert lo == prev_hi  # contiguous, ordered
        assert hi > lo  # non-empty
        covered += hi - lo
        prev_hi = hi
    assert covered == n_cores


@given(st.integers(1, 5000), st.integers(1, 200), st.data())
@settings(max_examples=100)
def test_rank_of_gid_consistent_with_ranges(n_cores, n_ranks, data):
    if n_ranks > n_cores:
        n_ranks = n_cores
    p = Partition(n_cores, n_ranks)
    gid = data.draw(st.integers(0, n_cores - 1))
    rank = p.rank_of_gid(gid)
    lo, hi = p.range_of_rank(rank)
    assert lo <= gid < hi


@given(st.integers(1, 5000), st.integers(1, 200))
@settings(max_examples=50)
def test_balanced_within_one(n_cores, n_ranks):
    if n_ranks > n_cores:
        n_ranks = n_cores
    p = Partition(n_cores, n_ranks)
    sizes = [p.size_of_rank(r) for r in range(n_ranks)]
    assert max(sizes) - min(sizes) <= 1


@given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
@settings(max_examples=50)
def test_from_boundaries_round_trip(sizes):
    starts = np.concatenate([[0], np.cumsum(sizes)])
    p = Partition.from_boundaries(starts)
    assert p.n_ranks == len(sizes)
    for r, size in enumerate(sizes):
        lo, hi = p.range_of_rank(r)
        assert hi - lo == size
        assert p.rank_of_gid(lo) == r
        assert p.rank_of_gid(hi - 1) == r


@given(st.integers(0, 2000), st.integers(1, 64))
@settings(max_examples=50)
def test_thread_partition_covers_exactly(n_cores, n_threads):
    parts = partition_cores(n_cores, n_threads)
    seen = [i for p in parts for i in p]
    assert seen == list(range(n_cores))
    assert len(parts) == n_threads
