"""Property-based tests for the spike wire format and axon buffers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.axon import AxonBuffers
from repro.arch.params import MAX_DELAY
from repro.arch.spike import SpikeBatch


@st.composite
def spike_batches(draw):
    n = draw(st.integers(0, 64))
    gids = draw(st.lists(st.integers(0, 2**40), min_size=n, max_size=n))
    axons = draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
    delays = draw(st.lists(st.integers(1, MAX_DELAY), min_size=n, max_size=n))
    tick = draw(st.integers(0, 2**20))
    return SpikeBatch(
        np.array(gids, dtype=np.int64),
        np.array(axons, dtype=np.int32),
        np.array(delays, dtype=np.int32),
        tick,
    )


@given(spike_batches())
@settings(max_examples=100)
def test_encode_decode_round_trip(batch):
    assert SpikeBatch.decode(batch.encode()) == batch


@given(spike_batches())
@settings(max_examples=50)
def test_wire_size_exactly_20_bytes_per_spike(batch):
    assert len(batch.encode()) == 20 * batch.count


@given(st.lists(spike_batches(), max_size=5))
@settings(max_examples=50)
def test_concatenate_count(batches):
    total = sum(b.count for b in batches)
    assert SpikeBatch.concatenate(batches).count == total


@st.composite
def delivery_plans(draw):
    n_cores = draw(st.integers(1, 4))
    n_axons = draw(st.integers(1, 16))
    n = draw(st.integers(0, 40))
    cores = draw(st.lists(st.integers(0, n_cores - 1), min_size=n, max_size=n))
    axons = draw(st.lists(st.integers(0, n_axons - 1), min_size=n, max_size=n))
    delays = draw(st.lists(st.integers(1, MAX_DELAY), min_size=n, max_size=n))
    tick = draw(st.integers(0, 50))
    return n_cores, n_axons, cores, axons, delays, tick


@given(delivery_plans())
@settings(max_examples=100)
def test_every_scheduled_spike_arrives_exactly_once(plan):
    n_cores, n_axons, cores, axons, delays, tick = plan
    buf = AxonBuffers(n_cores, n_axons)
    buf.schedule(
        np.array(cores, dtype=np.int64),
        np.array(axons, dtype=np.int64),
        np.array(delays, dtype=np.int64),
        tick,
    )
    expected = {(c, a, tick + d) for c, a, d in zip(cores, axons, delays)}
    seen = set()
    for t in range(tick, tick + MAX_DELAY + 2):
        active = buf.collect(t)
        for c, a in zip(*np.nonzero(active)):
            seen.add((int(c), int(a), t))
    assert seen == expected
    assert buf.occupancy() == 0


@given(delivery_plans())
@settings(max_examples=50)
def test_delivery_order_independence(plan):
    """Scheduling in any order yields identical buffer state (§VII-A)."""
    n_cores, n_axons, cores, axons, delays, tick = plan
    a = AxonBuffers(n_cores, n_axons)
    b = AxonBuffers(n_cores, n_axons)
    idx = np.arange(len(cores))
    rev = idx[::-1]
    arr = lambda x: np.array(x, dtype=np.int64)  # noqa: E731
    a.schedule(arr(cores), arr(axons), arr(delays), tick)
    b.schedule(arr(cores)[rev], arr(axons)[rev], arr(delays)[rev], tick)
    assert np.array_equal(a.pending, b.pending)
