"""Property-based tests for the deterministic PRNG."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import Lcg32, LcgArray, derive_seed

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(seeds)
def test_scalar_stream_values_32_bit(seed):
    rng = Lcg32(seed)
    for _ in range(16):
        v = rng.next_u32()
        assert 0 <= v < 2**32


@given(seeds, st.integers(0, 100))
def test_scalar_clone_preserves_future(seed, warmup):
    a = Lcg32(seed)
    for _ in range(warmup):
        a.next_u32()
    b = a.clone()
    assert [a.next_u32() for _ in range(8)] == [b.next_u32() for _ in range(8)]


@given(seeds, st.lists(st.integers(0, 2**20), min_size=1, max_size=4))
def test_derive_seed_stable_and_32bit(base, indices):
    s1 = derive_seed(base, *indices)
    s2 = derive_seed(base, *indices)
    assert s1 == s2
    assert 0 <= s1 < 2**32


@given(seeds, st.integers(1, 32))
@settings(max_examples=30)
def test_array_matches_scalars_under_full_advance(base, n):
    lane_seeds = [derive_seed(base, i) for i in range(n)]
    arr = LcgArray(np.array(lane_seeds, dtype=np.uint64))
    scalars = [Lcg32(s) for s in lane_seeds]
    for _ in range(8):
        vec = arr.advance()
        assert list(vec) == [s.next_u32() for s in scalars]


@given(
    seeds,
    st.lists(st.lists(st.booleans(), min_size=8, max_size=8), min_size=1, max_size=12),
)
@settings(max_examples=30)
def test_array_conditional_advance_matches_scalar_consumption(base, mask_rows):
    """Arbitrary advance patterns: each lane's stream is consumed exactly
    once per True in its mask column, independent of other lanes."""
    arr = LcgArray(np.array([derive_seed(base, i) for i in range(8)], dtype=np.uint64))
    scalars = [Lcg32(derive_seed(base, i)) for i in range(8)]
    for row in mask_rows:
        arr.advance(np.array(row))
        for lane, on in enumerate(row):
            if on:
                scalars[lane].next_u32()
    assert list(arr.state) == [s.state for s in scalars]


@given(seeds, st.integers(0, 256))
@settings(max_examples=20)
def test_bernoulli_rate_bounds(seed, threshold):
    rng = Lcg32(seed)
    hits = sum(rng.bernoulli(threshold) for _ in range(512))
    p = min(threshold, 256) / 256
    # loose 5-sigma-ish binomial bound
    margin = 5 * np.sqrt(512 * max(p * (1 - p), 1 / 512))
    assert abs(hits - 512 * p) <= margin
