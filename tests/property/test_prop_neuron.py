"""Property-based scalar/vectorised neuron equivalence.

Hypothesis explores the parameter space (weights, stochastic flags, leaks,
thresholds, reset modes, floors) and random event schedules; the two
implementations must agree bit-for-bit on every path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.neuron import NeuronArrayState, ReferenceNeuron, integrate_leak_fire
from repro.arch.params import NeuronArrayParameters, NeuronParameters, ResetMode
from repro.util.rng import derive_seed


@st.composite
def neuron_params(draw):
    floor = draw(st.integers(-200, 0))
    return NeuronParameters(
        weights=tuple(draw(st.integers(-255, 255)) for _ in range(4)),
        stochastic_weights=tuple(draw(st.booleans()) for _ in range(4)),
        leak=draw(st.integers(-255, 255)),
        stochastic_leak=draw(st.booleans()),
        threshold=draw(st.integers(1, 64)),
        reset_mode=draw(st.sampled_from([ResetMode.ZERO, ResetMode.LINEAR])),
        reset_value=draw(st.integers(floor, 0)),
        floor=floor,
        threshold_mask=draw(st.sampled_from([0, 0, 1, 7, 63, 255])),
        leak_reversal=draw(st.booleans()),
    )


schedules = st.lists(
    st.tuples(*[st.integers(0, 4)] * 4), min_size=1, max_size=60
)


@given(neuron_params(), schedules, st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_scalar_vector_equivalence(params, schedule, core_seed):
    ref = ReferenceNeuron(params, derive_seed(core_seed, 0))
    ref_out = [ref.tick(c) for c in schedule]

    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 1)
    block = NeuronArrayParameters.empty(1, 1)
    block.set_neuron(0, 0, params)
    vec_out = []
    for counts in schedule:
        tc = np.array(counts, dtype=np.int32).reshape(1, 1, 4)
        vec_out.append(bool(integrate_leak_fire(state, block, tc)[0, 0]))

    assert ref_out == vec_out
    assert ref.potential == int(state.potential[0, 0])
    # PRNG consumption must also agree (future draws stay aligned).
    assert ref.rng.state == int(state.rng.state[0, 0])


@given(neuron_params(), schedules, st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_potential_never_below_floor(params, schedule, core_seed):
    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 1)
    block = NeuronArrayParameters.empty(1, 1)
    block.set_neuron(0, 0, params)
    for counts in schedule:
        tc = np.array(counts, dtype=np.int32).reshape(1, 1, 4)
        integrate_leak_fire(state, block, tc)
        assert state.potential[0, 0] >= params.floor


@given(neuron_params(), schedules, st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_zero_reset_lands_on_reset_value(params, schedule, core_seed):
    if params.reset_mode != ResetMode.ZERO:
        return
    state = NeuronArrayState.create(np.array([core_seed], dtype=np.uint64), 1)
    block = NeuronArrayParameters.empty(1, 1)
    block.set_neuron(0, 0, params)
    for counts in schedule:
        tc = np.array(counts, dtype=np.int32).reshape(1, 1, 4)
        fired = integrate_leak_fire(state, block, tc)
        if fired[0, 0]:
            assert state.potential[0, 0] == max(params.reset_value, params.floor)
