"""Property-based tests for IPFP matrix balancing."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler.ipfp import balance_matrix, round_preserving_sums


@st.composite
def positive_matrix_and_targets(draw):
    n = draw(st.integers(2, 8))
    m = draw(st.integers(2, 8))
    mat = np.array(
        draw(
            st.lists(
                st.lists(st.floats(0.01, 10.0), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    )
    rows = np.array(draw(st.lists(st.floats(0.5, 50.0), min_size=n, max_size=n)))
    # Column targets must sum to the row total; draw then rescale.
    cols = np.array(draw(st.lists(st.floats(0.5, 50.0), min_size=m, max_size=m)))
    cols *= rows.sum() / cols.sum()
    return mat, rows, cols


@given(positive_matrix_and_targets())
@settings(max_examples=60, deadline=None)
def test_marginals_achieved_on_positive_matrices(case):
    mat, rows, cols = case
    result = balance_matrix(mat, rows, cols, tol=1e-9)
    assert np.allclose(result.matrix.sum(axis=1), rows, rtol=1e-6)
    assert np.allclose(result.matrix.sum(axis=0), cols, rtol=1e-6)


@given(positive_matrix_and_targets())
@settings(max_examples=60, deadline=None)
def test_result_is_diagonal_scaling(case):
    mat, rows, cols = case
    result = balance_matrix(mat, rows, cols, tol=1e-9)
    rebuilt = result.row_scale[:, None] * mat * result.col_scale[None, :]
    assert np.allclose(rebuilt, result.matrix, rtol=1e-5)


@given(positive_matrix_and_targets())
@settings(max_examples=60, deadline=None)
def test_rounding_preserves_row_sums_and_support(case):
    mat, rows, cols = case
    rows_int = np.round(rows).clip(1)
    cols_scaled = cols * rows_int.sum() / cols.sum()
    result = balance_matrix(mat, rows_int, cols_scaled, tol=1e-9)
    out = round_preserving_sums(result.matrix, rows_int)
    assert np.array_equal(out.sum(axis=1), rows_int.astype(np.int64))
    assert (out >= 0).all()
    # Rounding may not invent mass where the pattern had none.
    assert ((result.matrix > 0) | (out == 0)).all()


@given(st.integers(2, 10), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_doubly_stochastic_fixed_point(n, seed):
    """Balancing an already balanced matrix changes nothing."""
    rng = np.random.default_rng(seed)
    mat = rng.random((n, n)) + 0.05
    first = balance_matrix(mat, np.ones(n), np.ones(n), tol=1e-10)
    again = balance_matrix(first.matrix, np.ones(n), np.ones(n), tol=1e-10)
    assert np.allclose(first.matrix, again.matrix, atol=1e-8)
    assert again.iterations <= 2
