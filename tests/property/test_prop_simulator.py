"""Property-based tests on the whole simulator: the paper's key invariants.

1. Partition invariance — the spike raster is independent of how many
   processes the model is split over (the functional contract of §III).
2. Backend equivalence — MPI and PGAS backends agree (§VII-A).
3. Spike conservation — every routed spike is delivered exactly once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass


def raster_of(sim_cls, net, n_processes, ticks):
    sim = sim_cls(net, CompassConfig(n_processes=n_processes, record_spikes=True))
    sim.run(ticks)
    return sim.recorder.to_arrays(), sim.metrics


@given(
    st.integers(2, 8),  # cores
    st.integers(0, 2**16),  # seed
    st.integers(10, 40),  # ticks
    st.integers(1, 6),  # ranks
)
@settings(max_examples=15, deadline=None)
def test_partition_invariance(n_cores, seed, ticks, ranks):
    net = build_quickstart_network(n_cores=n_cores, seed=seed)
    ranks = min(ranks, n_cores)
    base, _ = raster_of(Compass, net, 1, ticks)
    split, _ = raster_of(Compass, net, ranks, ticks)
    for a, b in zip(base, split):
        assert np.array_equal(a, b)


@given(st.integers(2, 6), st.integers(0, 2**16), st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_backend_equivalence(n_cores, seed, ranks):
    net = build_quickstart_network(n_cores=n_cores, seed=seed)
    ranks = min(ranks, n_cores)
    mpi, _ = raster_of(Compass, net, ranks, 30)
    pgas, _ = raster_of(PgasCompass, net, ranks, 30)
    for a, b in zip(mpi, pgas):
        assert np.array_equal(a, b)


@given(st.integers(2, 6), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_spike_conservation(n_cores, seed):
    """Fired == routed == local + remote (quicknet connects every neuron)."""
    net = build_quickstart_network(n_cores=n_cores, seed=seed)
    sim = Compass(net, CompassConfig(n_processes=min(4, n_cores)))
    sim.run(40)
    m = sim.metrics
    assert m.total_local_spikes + m.total_remote_spikes == m.total_fired


@given(st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_messages_at_most_rank_pairs_per_tick(seed):
    net = build_quickstart_network(n_cores=8, seed=seed)
    ranks = 4
    sim = Compass(net, CompassConfig(n_processes=ranks))
    sim.run(30)
    for tm in sim.metrics.per_tick:
        assert tm.messages <= ranks * (ranks - 1)
