"""Property-based checkpoint tests: save/restore at arbitrary points."""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.quicknet import build_quickstart_network
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import CompassConfig
from repro.core.simulator import Compass


@given(
    st.integers(0, 2**16),  # network seed
    st.integers(1, 50),  # split point
    st.integers(1, 30),  # continuation length
    st.integers(1, 4),  # ranks
)
@settings(max_examples=12, deadline=None)
def test_resume_bit_exact_at_any_point(seed, split, cont, ranks):
    net = build_quickstart_network(n_cores=4, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "c.npz"

        ref = Compass(net, CompassConfig(n_processes=ranks, record_spikes=True))
        ref.run(split + cont)

        first = Compass(net, CompassConfig(n_processes=ranks))
        first.run(split)
        save_checkpoint(first, path)

        resumed = Compass(net, CompassConfig(n_processes=ranks, record_spikes=True))
        load_checkpoint(resumed, path)
        resumed.run(cont)

        t_ref, g_ref, n_ref = ref.recorder.to_arrays()
        sel = t_ref >= split
        t_res, g_res, n_res = resumed.recorder.to_arrays()
        assert np.array_equal(t_ref[sel], t_res)
        assert np.array_equal(g_ref[sel], g_res)
        assert np.array_equal(n_ref[sel], n_res)


@given(st.integers(0, 2**16), st.integers(1, 30))
@settings(max_examples=8, deadline=None)
def test_double_restore_is_idempotent(seed, split):
    net = build_quickstart_network(n_cores=3, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "c.npz"
        sim = Compass(net, CompassConfig(n_processes=2))
        sim.run(split)
        save_checkpoint(sim, path)

        a = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        load_checkpoint(a, path)
        load_checkpoint(a, path)  # twice
        a.run(20)

        b = Compass(net, CompassConfig(n_processes=2, record_spikes=True))
        load_checkpoint(b, path)
        b.run(20)
        for x, y in zip(a.recorder.to_arrays(), b.recorder.to_arrays()):
            assert np.array_equal(x, y)
