"""Property-based tests for CoreObject serialisation and compilation."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.params import NeuronParameters, ResetMode
from repro.compiler.coreobject import ConnectionSpec, CoreObject, RegionSpec
from repro.compiler.pcc import ParallelCompassCompiler


@st.composite
def neuron_prototypes(draw):
    floor = draw(st.integers(-128, 0))
    return NeuronParameters(
        weights=tuple(draw(st.integers(-16, 16)) for _ in range(4)),
        stochastic_weights=tuple(draw(st.booleans()) for _ in range(4)),
        leak=draw(st.integers(-8, 8)),
        stochastic_leak=draw(st.booleans()),
        threshold=draw(st.integers(1, 32)),
        reset_mode=draw(st.sampled_from(list(ResetMode))),
        reset_value=draw(st.integers(floor, 0)),
        floor=floor,
        threshold_mask=draw(st.sampled_from([0, 3, 15])),
        leak_reversal=draw(st.booleans()),
    )


@st.composite
def core_objects(draw):
    n_regions = draw(st.integers(1, 4))
    regions = []
    for i in range(n_regions):
        fractions = draw(
            st.sampled_from(
                [(1.0, 0.0, 0.0, 0.0), (0.5, 0.5, 0.0, 0.0), (0.25, 0.25, 0.25, 0.25)]
            )
        )
        regions.append(
            RegionSpec(
                name=f"R{i}",
                n_cores=draw(st.integers(1, 3)),
                neuron=draw(neuron_prototypes()),
                crossbar_density=draw(st.floats(0.0, 0.5)),
                axon_type_fractions=fractions,
                region_class=draw(
                    st.sampled_from(["cortical", "thalamic", "basal_ganglia"])
                ),
            )
        )
    # Connections within the capacity budget.
    out_left = {r.name: r.n_cores * 256 for r in regions}
    in_left = {r.name: r.n_cores * 256 for r in regions}
    connections = []
    for _ in range(draw(st.integers(0, 5))):
        src = draw(st.sampled_from(regions)).name
        dst = draw(st.sampled_from(regions)).name
        cap = min(out_left[src], in_left[dst])
        if cap < 1:
            continue
        count = draw(st.integers(1, min(cap, 200)))
        out_left[src] -= count
        in_left[dst] -= count
        connections.append(
            ConnectionSpec(src, dst, count, delay=draw(st.integers(1, 15)))
        )
    return CoreObject(
        name="prop", regions=regions, connections=connections,
        seed=draw(st.integers(0, 2**16)),
    )


@given(core_objects())
@settings(max_examples=40, deadline=None)
def test_json_round_trip_is_lossless(obj):
    restored = CoreObject.from_json(obj.to_json())
    assert restored.to_dict() == obj.to_dict()


@given(core_objects())
@settings(max_examples=20, deadline=None)
def test_compilation_realises_every_connection(obj):
    compiled = ParallelCompassCompiler().compile(obj)
    net = compiled.network
    expected = sum(c.count for c in obj.connections)
    assert net.connected_neuron_count == expected
    # Axon exclusivity always holds.
    connected = net.target_gid >= 0
    pairs = list(
        zip(
            net.target_gid[connected].ravel(),
            net.target_axon[connected].ravel(),
        )
    )
    assert len(pairs) == len(set(pairs))


@given(core_objects())
@settings(max_examples=15, deadline=None)
def test_compiled_model_passes_verification(obj):
    from repro.compiler.verification import verify_compiled

    compiled = ParallelCompassCompiler().compile(obj)
    report = verify_compiled(compiled, density_tolerance=0.1)
    assert report.passed, report.failures()


@given(core_objects(), st.integers(1, 8))
@settings(max_examples=10, deadline=None)
def test_compiled_network_runs_partition_invariantly(obj, ranks):
    from repro.core.config import CompassConfig
    from repro.core.simulator import Compass

    compiled = ParallelCompassCompiler().compile(obj)
    net = compiled.network
    ranks = min(ranks, net.n_cores)
    base = Compass(net, CompassConfig(n_processes=1, record_spikes=True))
    split = Compass(net, CompassConfig(n_processes=ranks, record_spikes=True))
    base.inject(0, 0, tick=0)
    split.inject(0, 0, tick=0)
    base.run(15)
    split.run(15)
    for a, b in zip(base.recorder.to_arrays(), split.recorder.to_arrays()):
        assert np.array_equal(a, b)
