"""Property-based tests for the round-robin resource allocators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.allocator import AxonAllocator
from repro.errors import WiringError


@st.composite
def allocation_plans(draw):
    n_cores = draw(st.integers(1, 16))
    slots = draw(st.integers(1, 64))
    requests = draw(st.lists(st.integers(0, 64), max_size=10))
    return n_cores, slots, requests


@given(allocation_plans())
@settings(max_examples=100)
def test_no_duplicates_until_exhaustion(plan):
    n_cores, slots, requests = plan
    alloc = AxonAllocator(gid_lo=100, n_cores=n_cores, slots_per_core=slots)
    seen = set()
    for req in requests:
        try:
            gids, out_slots = alloc.allocate(req)
        except WiringError:
            assert alloc.remaining < req
            break
        for pair in zip(gids, out_slots):
            assert pair not in seen
            seen.add(pair)
        assert (gids >= 100).all() and (gids < 100 + n_cores).all()
        assert (out_slots >= 0).all() and (out_slots < slots).all()


@given(st.integers(1, 16), st.integers(1, 32), st.integers(0, 200))
@settings(max_examples=100)
def test_breadth_first_distribution(n_cores, slots, k):
    """First min(k, capacity) allocations touch distinct cores as broadly
    as possible (§V-C diffuse targeting)."""
    alloc = AxonAllocator(0, n_cores, slots)
    k = min(k, alloc.capacity)
    gids, _ = alloc.allocate(k)
    if k >= n_cores:
        assert len(set(gids)) == n_cores
    else:
        assert len(set(gids)) == k


@given(st.integers(1, 8), st.integers(1, 16))
@settings(max_examples=50)
def test_exact_capacity_fill(n_cores, slots):
    alloc = AxonAllocator(0, n_cores, slots)
    gids, out_slots = alloc.allocate(n_cores * slots)
    assert len(set(zip(gids, out_slots))) == n_cores * slots
    assert alloc.remaining == 0
