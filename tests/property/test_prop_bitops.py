"""Property-based tests for bit packing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.util.bitops import get_bit, pack_bits, popcount_rows, set_bit, unpack_bits

bool_rows = arrays(np.bool_, st.tuples(st.integers(1, 8), st.integers(1, 300)))


@given(bool_rows)
@settings(max_examples=50)
def test_pack_unpack_round_trip(dense):
    n = dense.shape[-1]
    assert np.array_equal(unpack_bits(pack_bits(dense), n), dense)


@given(bool_rows)
@settings(max_examples=50)
def test_popcount_matches_sum(dense):
    assert np.array_equal(popcount_rows(pack_bits(dense)), dense.sum(axis=-1))


@given(arrays(np.bool_, st.integers(1, 256)), st.data())
@settings(max_examples=50)
def test_get_bit_agrees_with_dense(dense, data):
    idx = data.draw(st.integers(0, dense.shape[0] - 1))
    packed = pack_bits(dense)
    assert get_bit(packed, idx) == dense[idx]


@given(arrays(np.bool_, st.integers(1, 128)), st.data())
@settings(max_examples=50)
def test_set_bit_only_touches_target(dense, data):
    idx = data.draw(st.integers(0, dense.shape[0] - 1))
    value = data.draw(st.booleans())
    packed = pack_bits(dense)
    set_bit(packed, idx, value)
    out = unpack_bits(packed, dense.shape[0])
    expected = dense.copy()
    expected[idx] = value
    assert np.array_equal(out, expected)
