"""Whole-system oracle test.

A deliberately naive, dict-based TrueNorth simulator — no vectorisation,
no partitioning, no buffers shared with the production code — is used as
an executable oracle.  Hypothesis generates small random networks and
input schedules; Compass must produce the identical spike raster.

This catches integration bugs that module-level tests cannot: crossbar
indexing transposes, delay off-by-ones, injection timing, routing errors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.crossbar import Crossbar
from repro.arch.network import CoreNetwork, NeuronTarget
from repro.arch.neuron import ReferenceNeuron
from repro.arch.params import MAX_DELAY, NUM_AXON_TYPES, NeuronParameters
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.util.rng import derive_seed

AXONS = 16  # small cores keep the oracle fast
NEURONS = 16


class OracleSimulator:
    """Straight-line interpretation of the TrueNorth semantics."""

    def __init__(self, net: CoreNetwork):
        self.net = net
        self.neurons = {
            (g, j): ReferenceNeuron(
                net.neuron_params.get_neuron(g, j),
                derive_seed(int(net.core_seeds[g]), j),
            )
            for g in range(net.n_cores)
            for j in range(net.num_neurons)
        }
        self.pending: dict[int, set] = {}  # tick -> {(gid, axon)}

    def inject(self, gid: int, axon: int, tick: int) -> None:
        self.pending.setdefault(tick, set()).add((gid, axon))

    def run(self, ticks: int):
        fired_log = []
        for t in range(ticks):
            due = self.pending.pop(t, set())
            # Synapse phase: per-neuron, per-type event counts.
            counts = {}
            for gid, axon in due:
                k = int(self.net.axon_types[gid, axon])
                row = Crossbar(self.net.crossbars[gid], self.net.num_neurons).row(axon)
                for j in np.nonzero(row)[0]:
                    key = (gid, int(j))
                    counts.setdefault(key, [0] * NUM_AXON_TYPES)[k] += 1
            # Neuron phase: every neuron every tick.
            for (g, j), neuron in self.neurons.items():
                c = counts.get((g, j), [0] * NUM_AXON_TYPES)
                if neuron.tick(tuple(c)):
                    fired_log.append((t, g, j))
                    tgt = self.net.get_target(g, j)
                    if tgt is not None:
                        self.pending.setdefault(t + tgt.delay, set()).add(
                            (tgt.gid, tgt.axon)
                        )
        fired_log.sort()
        return fired_log


@st.composite
def random_networks(draw):
    n_cores = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    net = CoreNetwork(n_cores, seed=seed, num_axons=AXONS, num_neurons=NEURONS)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    for g in range(n_cores):
        density = draw(st.floats(0.0, 0.6))
        net.set_crossbar(g, Crossbar.random(rng, density, AXONS, NEURONS))
        types = rng.integers(0, NUM_AXON_TYPES, size=AXONS).astype(np.uint8)
        net.set_axon_types(g, types)
        params = NeuronParameters(
            weights=tuple(int(w) for w in rng.integers(-4, 5, size=4)),
            stochastic_weights=tuple(bool(b) for b in rng.integers(0, 2, size=4)),
            leak=int(rng.integers(-3, 4)),
            stochastic_leak=bool(rng.integers(0, 2)),
            threshold=int(rng.integers(1, 6)),
            floor=-int(rng.integers(1, 20)),
        )
        net.set_neurons(g, params)
        # Random sparse connectivity.
        for j in range(NEURONS):
            if rng.random() < 0.7:
                net.connect(
                    g,
                    j,
                    NeuronTarget(
                        int(rng.integers(0, n_cores)),
                        int(rng.integers(0, AXONS)),
                        int(rng.integers(1, MAX_DELAY + 1)),
                    ),
                )
    # Input schedule.
    n_inputs = draw(st.integers(0, 10))
    schedule = [
        (
            draw(st.integers(0, 4)),  # tick
            draw(st.integers(0, n_cores - 1)),
            draw(st.integers(0, AXONS - 1)),
        )
        for _ in range(n_inputs)
    ]
    ticks = draw(st.integers(5, 20))
    ranks = draw(st.integers(1, n_cores))
    return net, schedule, ticks, ranks


@given(random_networks())
@settings(max_examples=25, deadline=None)
def test_compass_matches_oracle(case):
    net, schedule, ticks, ranks = case

    oracle = OracleSimulator(net)
    for tick, gid, axon in schedule:
        oracle.inject(gid, axon, tick)
    expected = oracle.run(ticks)

    sim = Compass(net, CompassConfig(n_processes=ranks, record_spikes=True))
    for tick, gid, axon in schedule:
        sim.inject(gid, axon, tick)
    sim.run(ticks)
    t, g, n = sim.recorder.to_arrays()
    actual = list(zip(t.tolist(), g.tolist(), n.tolist()))

    assert actual == expected
