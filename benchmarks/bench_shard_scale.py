"""Headline fleet-scale bench: sharded goodput vs one saturated cluster.

The fleet tier exists because one cluster's worker pool caps goodput.
This bench offers the *same* seeded open-loop tenant load to two
configurations:

* **single** — one :class:`~repro.serve.server.SimServer` with the
  per-shard worker pool (the capacity ceiling the ROADMAP calls out);
* **fleet** — a :class:`~repro.shard.router.ShardRouter` over
  ``SHARDS`` such clusters with consistent-hash routing, spill-over,
  and watermark autoscaling.

The offered rate is sized to saturate the single cluster (rejections +
deadline misses) while staying inside fleet capacity, so sharded
goodput must win.  All accounting is simulated time, so the emitted
samples are exact and gate cleanly in the perf history.

Default counts are CI-smoke sized (seconds of host time).  Set
``BENCH_SHARD_FULL=1`` for the paper-scale 1M-tenant / 10M-job run —
the scaled params change the config fingerprint, so the full run never
gates against the smoke baseline.
"""

import os
import time

from repro.perf.report import format_table
from repro.serve.loadgen import build_report, open_loop_load
from repro.serve.server import ServeConfig, SimServer
from repro.shard.autoscale import AutoscalePolicy
from repro.shard.fleet import build_fleet_report
from repro.shard.loadgen import fleet_open_loop
from repro.shard.router import FleetConfig, ShardRouter

FULL = os.environ.get("BENCH_SHARD_FULL") == "1"

SHARDS = 4
WORKERS = 2  # per shard; the single cluster gets the same pool
N_CORES = 4
TENANTS = 1_000_000 if FULL else 2_000
JOBS = 10_000_000 if FULL else 8_000
RATE_PER_S = 1_200.0
DEADLINE_US = 500_000.0
SEED = 11
BATCH_SIZE = 8
BATCH_DELAY_US = 5_000.0
QUEUE_CAPACITY = 64
HOT_FRACTION = 0.2
HOT_TENANTS = 4


def _serve_config() -> ServeConfig:
    return ServeConfig(
        workers=WORKERS,
        max_batch_size=BATCH_SIZE,
        max_batch_delay_us=BATCH_DELAY_US,
        queue_capacity=QUEUE_CAPACITY,
        keep_records=False,
    )


def _tenant_names(rng_free_count: int) -> tuple[str, ...]:
    return tuple(f"t{i}" for i in range(rng_free_count))


def _run_single():
    """The whole load against one cluster with one shard's worker pool."""
    server = SimServer(_serve_config())
    from repro.shard.fleet import ShardAccumulator

    accumulator = ShardAccumulator(0)
    server.add_completion_hook(accumulator.observe)
    open_loop_load(
        server,
        rate_per_s=RATE_PER_S,
        jobs=JOBS,
        tenants=_tenant_names(min(TENANTS, 64)),
        cores=N_CORES,
        deadline_us=DEADLINE_US,
        seed=SEED,
    )
    server.run()
    return server, accumulator


def _run_fleet():
    router = ShardRouter(
        FleetConfig(
            shards=SHARDS,
            hot_depth=16,
            serve=_serve_config(),
            autoscale=AutoscalePolicy(min_workers=1, max_workers=4),
        )
    )
    fleet_open_loop(
        router,
        rate_per_s=RATE_PER_S,
        jobs=JOBS,
        tenants=TENANTS,
        cores=N_CORES,
        deadline_us=DEADLINE_US,
        seed=SEED,
        hot_fraction=HOT_FRACTION,
        hot_tenants=HOT_TENANTS,
    )
    router.run()
    return router, build_fleet_report(router)


def test_shard_scale_report(write_result, write_bench_json):
    t0 = time.perf_counter()
    server, single_acc = _run_single()
    single_s = time.perf_counter() - t0
    single_good = single_acc.good
    single_goodput = (
        single_good / single_acc.makespan_s if single_acc.makespan_s > 0 else 0.0
    )

    t0 = time.perf_counter()
    router, fleet = _run_fleet()
    fleet_s = time.perf_counter() - t0

    # The point of the subsystem: partitioning the tenant space across
    # shards must beat one saturated cluster on goodput.
    assert fleet.goodput_per_s > single_goodput
    assert fleet.jobs_completed + fleet.jobs_rejected + fleet.fleet_rejected == JOBS

    rows = [
        (
            "single",
            single_acc.completed,
            single_acc.rejected,
            single_acc.deadline_missed,
            round(single_goodput, 3),
        ),
        (
            "fleet",
            fleet.jobs_completed,
            fleet.jobs_rejected + fleet.fleet_rejected,
            fleet.deadline_missed,
            round(fleet.goodput_per_s, 3),
        ),
    ]
    table = format_table(
        ["config", "completed", "rejected", "missed", "goodput/s"],
        rows,
        title=(
            f"shard scale: {JOBS} jobs / {TENANTS} tenants at "
            f"{RATE_PER_S:.0f}/s offered, {SHARDS} shards x {WORKERS} "
            f"workers vs 1 cluster, deadline {DEADLINE_US/1e3:.0f}ms "
            f"(simulated time; host {single_s:.1f}s + {fleet_s:.1f}s)"
        ),
    )
    write_result("shard_scale", table)
    write_bench_json(
        "shard_scale",
        params={
            "shards": SHARDS,
            "workers": WORKERS,
            "n_cores": N_CORES,
            "tenants": TENANTS,
            "jobs": JOBS,
            "rate_per_s": RATE_PER_S,
            "deadline_us": DEADLINE_US,
            "seed": SEED,
            "batch_size": BATCH_SIZE,
            "batch_delay_us": BATCH_DELAY_US,
            "queue_capacity": QUEUE_CAPACITY,
            "hot_fraction": HOT_FRACTION,
            "hot_tenants": HOT_TENANTS,
        },
        # Samples are simulated fleet p99 latencies (seconds) —
        # deterministic, so the gate sees an exact baseline.
        samples=[fleet.p99_us / 1e6],
        derived={
            "fleet_goodput_per_s": fleet.goodput_per_s,
            "single_goodput_per_s": single_goodput,
            "goodput_gain": fleet.goodput_per_s / single_goodput,
            "fleet_p50_us": fleet.p50_us,
            "fleet_p99_us": fleet.p99_us,
            "fleet_rejected": fleet.jobs_rejected + fleet.fleet_rejected,
            "single_rejected": single_acc.rejected,
            "fleet_deadline_missed": fleet.deadline_missed,
            "single_deadline_missed": single_acc.deadline_missed,
            "spilled": fleet.spilled,
            "scale_events": fleet.scale_events,
            "imbalance": fleet.imbalance,
        },
        peak_state_nbytes=fleet.peak_state_nbytes,
    )
