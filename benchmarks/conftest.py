"""Shared benchmark fixtures.

Every figure bench both *measures* something real with pytest-benchmark
and *regenerates* the paper artefact (the same rows/series the figure
plots), writing it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's stdout capture.  Each bench additionally emits a
machine-readable ``benchmarks/results/BENCH_<name>.json`` (via
``write_bench_json``) so CI can archive and diff the numbers without
parsing tables.

The autouse ``_host_prof_meter`` fixture runs every bench under the
host-observability discipline of :mod:`repro.obs.prof`: tracemalloc
traces the Python heap (per-test peak), every simulator construction is
metered for checkpointable state bytes, and every ``run()`` accumulates
host seconds + modelled work units — so every ``BENCH_*.json`` carries
``mem_peak_nbytes``, ``peak_state_nbytes``, and (when the bench ran a
simulation) ``host_ns_per_work_unit`` without per-bench plumbing.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import tracemalloc
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Live meter for the currently running test, reset by the autouse
#: fixture below and read by ``write_bench_json``.
_METER = {"peak_state_nbytes": 0, "host_s": 0.0, "work_units": 0}


@pytest.fixture(autouse=True)
def _host_prof_meter():
    """Per-test host meter: heap peak, state-bytes high-water, host cost.

    Patches :class:`repro.core.simulator.CompassBase` so every simulator
    built during the test records its checkpointable state size (the
    no-copy :func:`repro.core.checkpoint.state_nbytes`) and every
    ``run()`` accumulates host seconds plus the run's modelled work
    units (:func:`repro.obs.prof.work_units_from_metrics`).  tracemalloc
    peaks are reset per test so ``mem_peak_nbytes`` is this bench's own
    high-water mark, not the session's.
    """
    from repro.core.checkpoint import state_nbytes
    from repro.core.simulator import CompassBase
    from repro.obs.prof import work_units_from_metrics

    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start(1)
    tracemalloc.reset_peak()
    _METER.update(peak_state_nbytes=0, host_s=0.0, work_units=0)

    orig_init = CompassBase.__init__
    orig_run = CompassBase.run

    def metered_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        nbytes = state_nbytes(self)
        if nbytes > _METER["peak_state_nbytes"]:
            _METER["peak_state_nbytes"] = nbytes

    def metered_run(self, ticks):
        host_before = self.metrics.host.total
        work_before = work_units_from_metrics(self.metrics)
        result = orig_run(self, ticks)
        _METER["host_s"] += self.metrics.host.total - host_before
        _METER["work_units"] += work_units_from_metrics(self.metrics) - work_before
        return result

    CompassBase.__init__ = metered_init
    CompassBase.run = metered_run
    try:
        yield _METER
    finally:
        CompassBase.__init__ = orig_init
        CompassBase.run = orig_run
        if started_here:
            tracemalloc.stop()


def git_sha() -> str:
    """Short SHA of the working tree's HEAD, or 'unknown' outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_fingerprint(params: dict) -> str:
    """Stable 12-hex digest of a bench's configuration.

    The perf-regression gate (``repro obs gate``) keys history records by
    bench name + this fingerprint, so a changed benchmark configuration
    never gates against stale baselines.
    """
    canon = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


@pytest.fixture(scope="session")
def write_result():
    """Callable: write_result(name, text) -> path; also echoes to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def write_bench_json():
    """Callable: write_bench_json(name, params, samples, derived) -> path.

    Writes ``BENCH_<name>.json`` with a stable schema (4): the
    benchmark's configuration (``params``), its raw measurements
    (``samples``, a flat list of floats), summary ``stats`` computed
    from the samples, any bench-specific ``derived`` quantities, the
    host-observability metrics the autouse meter collected —
    ``mem_peak_nbytes`` (tracemalloc per-test heap peak),
    ``peak_state_nbytes`` (checkpointable state high-water; an explicit
    argument overrides the meter), and ``host_ns_per_work_unit`` (host
    cost per modelled work unit, when the bench ran a simulation) — and
    provenance: the git ``sha``, repro ``version``, and the config
    ``fingerprint`` the perf-regression gate keys bench history by.
    The host metrics are mirrored into ``derived`` so the gate tracks
    memory and interpreter-cost regressions alongside timing ones.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    from repro.version import __version__

    sha = git_sha()

    def _write(
        name: str,
        params: dict,
        samples,
        derived: dict | None = None,
        peak_state_nbytes: int | None = None,
    ) -> Path:
        samples = [float(s) for s in samples]
        stats: dict[str, float] = {}
        if samples:
            n = len(samples)
            mean = sum(samples) / n
            var = sum((s - mean) ** 2 for s in samples) / n
            stats = {
                "n": n,
                "min": min(samples),
                "max": max(samples),
                "mean": mean,
                "stddev": var**0.5,
            }
        derived = dict(derived or {})
        payload = {
            "schema": 4,
            "name": name,
            "sha": sha,
            "version": __version__,
            "fingerprint": config_fingerprint(dict(params)),
            "params": dict(params),
            "samples": samples,
            "stats": stats,
            "derived": derived,
        }
        # tracemalloc is live for the whole test (autouse meter), so the
        # peak is this bench's own high-water mark.
        mem_peak = (
            int(tracemalloc.get_traced_memory()[1])
            if tracemalloc.is_tracing()
            else 0
        )
        payload["mem_peak_nbytes"] = mem_peak
        derived.setdefault("mem_peak_nbytes", mem_peak)
        if peak_state_nbytes is None:
            peak_state_nbytes = _METER["peak_state_nbytes"]
        payload["peak_state_nbytes"] = int(peak_state_nbytes)
        derived.setdefault("peak_state_nbytes", int(peak_state_nbytes))
        if _METER["work_units"] > 0:
            ns_per_wu = _METER["host_s"] * 1e9 / _METER["work_units"]
            payload["host_ns_per_work_unit"] = ns_per_wu
            derived.setdefault("host_ns_per_work_unit", ns_per_wu)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture(scope="session")
def macaque_128():
    """Small compiled macaque model shared by the functional benches."""
    from repro.cocomac.model import build_macaque_model

    return build_macaque_model(total_cores=128, seed=7)
