"""Shared benchmark fixtures.

Every figure bench both *measures* something real with pytest-benchmark
and *regenerates* the paper artefact (the same rows/series the figure
plots), writing it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's stdout capture.  Each bench additionally emits a
machine-readable ``benchmarks/results/BENCH_<name>.json`` (via
``write_bench_json``) so CI can archive and diff the numbers without
parsing tables.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def git_sha() -> str:
    """Short SHA of the working tree's HEAD, or 'unknown' outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_fingerprint(params: dict) -> str:
    """Stable 12-hex digest of a bench's configuration.

    The perf-regression gate (``repro obs gate``) keys history records by
    bench name + this fingerprint, so a changed benchmark configuration
    never gates against stale baselines.
    """
    canon = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


@pytest.fixture(scope="session")
def write_result():
    """Callable: write_result(name, text) -> path; also echoes to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def write_bench_json():
    """Callable: write_bench_json(name, params, samples, derived) -> path.

    Writes ``BENCH_<name>.json`` with a stable schema: the benchmark's
    configuration (``params``), its raw measurements (``samples``, a flat
    list of floats), summary ``stats`` computed from the samples, any
    bench-specific ``derived`` quantities, an optional memory footprint
    (``peak_state_nbytes``, from
    :func:`repro.core.checkpoint.state_nbytes` — schema 3), and
    provenance — the git ``sha``, repro ``version``, and the config
    ``fingerprint`` the perf-regression gate keys bench history by.
    The footprint is mirrored into ``derived`` so the gate tracks memory
    regressions alongside timing ones.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    from repro.version import __version__

    sha = git_sha()

    def _write(
        name: str,
        params: dict,
        samples,
        derived: dict | None = None,
        peak_state_nbytes: int | None = None,
    ) -> Path:
        samples = [float(s) for s in samples]
        stats: dict[str, float] = {}
        if samples:
            n = len(samples)
            mean = sum(samples) / n
            var = sum((s - mean) ** 2 for s in samples) / n
            stats = {
                "n": n,
                "min": min(samples),
                "max": max(samples),
                "mean": mean,
                "stddev": var**0.5,
            }
        derived = dict(derived or {})
        payload = {
            "schema": 3,
            "name": name,
            "sha": sha,
            "version": __version__,
            "fingerprint": config_fingerprint(dict(params)),
            "params": dict(params),
            "samples": samples,
            "stats": stats,
            "derived": derived,
        }
        if peak_state_nbytes is not None:
            payload["peak_state_nbytes"] = int(peak_state_nbytes)
            derived.setdefault("peak_state_nbytes", int(peak_state_nbytes))
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture(scope="session")
def macaque_128():
    """Small compiled macaque model shared by the functional benches."""
    from repro.cocomac.model import build_macaque_model

    return build_macaque_model(total_cores=128, seed=7)
