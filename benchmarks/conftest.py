"""Shared benchmark fixtures.

Every figure bench both *measures* something real with pytest-benchmark
and *regenerates* the paper artefact (the same rows/series the figure
plots), writing it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's stdout capture.  Each bench additionally emits a
machine-readable ``benchmarks/results/BENCH_<name>.json`` (via
``write_bench_json``) so CI can archive and diff the numbers without
parsing tables.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def write_result():
    """Callable: write_result(name, text) -> path; also echoes to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def write_bench_json():
    """Callable: write_bench_json(name, params, samples, derived) -> path.

    Writes ``BENCH_<name>.json`` with a stable schema: the benchmark's
    configuration (``params``), its raw measurements (``samples``, a flat
    list of floats), summary ``stats`` computed from the samples, and any
    bench-specific ``derived`` quantities.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, params: dict, samples, derived: dict | None = None) -> Path:
        samples = [float(s) for s in samples]
        stats: dict[str, float] = {}
        if samples:
            n = len(samples)
            mean = sum(samples) / n
            var = sum((s - mean) ** 2 for s in samples) / n
            stats = {
                "n": n,
                "min": min(samples),
                "max": max(samples),
                "mean": mean,
                "stddev": var**0.5,
            }
        payload = {
            "schema": 1,
            "name": name,
            "params": dict(params),
            "samples": samples,
            "stats": stats,
            "derived": dict(derived or {}),
        }
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture(scope="session")
def macaque_128():
    """Small compiled macaque model shared by the functional benches."""
    from repro.cocomac.model import build_macaque_model

    return build_macaque_model(total_cores=128, seed=7)
