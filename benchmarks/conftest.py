"""Shared benchmark fixtures.

Every figure bench both *measures* something real with pytest-benchmark
and *regenerates* the paper artefact (the same rows/series the figure
plots), writing it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's stdout capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def write_result():
    """Callable: write_result(name, text) -> path; also echoes to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def macaque_128():
    """Small compiled macaque model shared by the functional benches."""
    from repro.cocomac.model import build_macaque_model

    return build_macaque_model(total_cores=128, seed=7)
