"""Cost-model validation: the calibrated constants vs first principles.

Not a paper figure — the repository's own due diligence.  Prints (a) the
recursive-halving derivation of the Reduce-Scatter's linear-in-P shape
against the calibrated model, (b) the memory-hierarchy factor across
working-set sizes, and (c) the effective-threads curve, so reviewers can
see exactly what the performance reproduction assumes.
"""

from repro.perf.report import format_table
from repro.runtime.collectives import (
    dissemination_barrier,
    reduce_scatter_recursive_halving,
    validate_against,
)
from repro.runtime.machine import BLUE_GENE_Q
from repro.runtime.threads import effective_threads


def test_reduce_scatter_shape(benchmark, write_result, write_bench_json):
    cost = BLUE_GENE_Q.cost
    result = benchmark(lambda: validate_against(cost))

    rows = []
    derived_us = []
    for p in (1024, 4096, 16384, 65536):
        derived = reduce_scatter_recursive_halving(p, 8.0, 2e-6, 1.8e9)
        derived_us.append(derived * 1e6)
        calibrated = cost.reduce_scatter_time(p)
        barrier = dissemination_barrier(p, 1e-6)
        rows.append(
            (p, f"{derived*1e6:.1f}", f"{calibrated*1e6:.1f}", f"{barrier*1e6:.1f}")
        )
    table = format_table(
        ["ranks", "derived RS (us)", "calibrated RS (us)", "barrier (us)"],
        rows,
        title="Reduce-Scatter: recursive-halving derivation vs calibrated "
        "model (both linear in P; the gap is MPI software per-element "
        f"overhead, ~{result['implied_software_overhead']:.0f}x wire time)",
    )
    write_result("validation_reduce_scatter", table)
    write_bench_json(
        "model_validation",
        params={"ranks": [1024, 4096, 16384, 65536]},
        samples=derived_us,
        derived={
            "shape_mismatch": result["shape_mismatch"],
            "implied_software_overhead": result["implied_software_overhead"],
        },
    )
    assert result["shape_mismatch"] < 0.6


def test_memory_and_thread_curves(write_result):
    cost = BLUE_GENE_Q.cost
    mem_rows = [
        (f"{ws // 2**20} MiB", round(cost.memory_factor(ws), 2))
        for ws in (2**20 * m for m in (8, 16, 32, 64, 128, 512, 4096))
    ]
    thr_rows = [
        (t, round(effective_threads(t, 16), 2))
        for t in (1, 2, 4, 8, 16, 32, 64)
    ]
    table = format_table(
        ["node working set", "compute factor"],
        mem_rows,
        title="memory-hierarchy factor (BG/Q: 32 MiB cache, DRAM x3)",
    )
    table += "\n\n" + format_table(
        ["OpenMP threads", "effective parallelism"],
        thr_rows,
        title="thread model (16 cores, SMT yield, false sharing)",
    )
    write_result("validation_model_curves", table)
    assert effective_threads(32, 16) < 32
