"""Host-parallel pool throughput vs the sequential reference backend.

The only benchmark that exercises *real* host concurrency: the same
network is run through the sequential adapter and through the process
pool at several worker counts, spike digests are asserted byte-identical
(the determinism contract of docs/execution.md), and simulated
ticks-per-second is recorded for each configuration.

The host core count is recorded in the emitted JSON because the speedup
claim is conditional hardware truth, not a repository invariant: on a
multi-core host the 4-worker pool must clear 2x sequential throughput
(asserted when >= 4 cores are present); on a single-core host the pool
still proves byte-identity but necessarily pays the IPC overhead with no
parallel gain, so only the measurement is recorded.

Wall-clock here excludes ``prepare`` (worker spawn + network broadcast):
the serve layer amortises setup over many batches, and the setup cost is
modelled separately by ``SetupCostModel``.
"""

import os
import time

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.exec import ExecLayout, make_adapter
from repro.perf.report import format_table
from repro.resilience import spike_digest

TICKS = 30
N_CORES = 32
N_PROCESSES = 8
WORKER_COUNTS = (2, 4)


def _net():
    return build_quickstart_network(n_cores=N_CORES, seed=5)


def _pool_run(workers):
    layout = ExecLayout(
        n_processes=N_PROCESSES, record_spikes=True, workers=workers
    )
    with make_adapter("pool") as sim:
        sim.prepare(_net(), layout)
        t0 = time.perf_counter()
        result = sim.run(TICKS)
        wall = time.perf_counter() - t0
        util = sim.host_utilization()
        nbytes = sim.state_nbytes()
    return result, wall, util, nbytes


def test_host_parallel_throughput(write_result, write_bench_json):
    host_cores = os.cpu_count() or 1

    seq = Compass(
        _net(), CompassConfig(n_processes=N_PROCESSES, record_spikes=True)
    )
    t0 = time.perf_counter()
    seq_res = seq.run(TICKS)
    seq_wall = time.perf_counter() - t0
    ref_digest = spike_digest(seq_res.spikes)

    rows = [
        (
            "sequential",
            1,
            round(seq_wall, 3),
            round(TICKS / seq_wall, 1),
            "1.00x",
            "-",
        )
    ]
    samples = [seq_wall]
    derived = {
        "host_cores": float(host_cores),
        "ticks_per_s_sequential": TICKS / seq_wall,
    }
    peak_state = 0
    speedups = {}
    for workers in WORKER_COUNTS:
        result, wall, util, nbytes = _pool_run(workers)
        assert spike_digest(result.spikes) == ref_digest
        assert result.total_spikes == seq_res.total_spikes
        speedup = seq_wall / wall
        speedups[workers] = speedup
        samples.append(wall)
        derived[f"ticks_per_s_w{workers}"] = TICKS / wall
        derived[f"speedup_w{workers}"] = speedup
        peak_state = max(peak_state, nbytes)
        rows.append(
            (
                f"pool ({workers} workers)",
                workers,
                round(wall, 3),
                round(TICKS / wall, 1),
                f"{speedup:.2f}x",
                f"{util['utilization']:.2f}x",
            )
        )

    table = format_table(
        ["backend", "workers", "wall_s", "ticks/s", "speedup", "host util"],
        rows,
        title=(
            f"host-parallel throughput, quickstart {N_CORES} cores, "
            f"{N_PROCESSES} ranks, {TICKS} ticks, {host_cores}-core host "
            "(digests byte-identical across all rows)"
        ),
    )
    write_result("host_parallel", table)
    write_bench_json(
        "host_parallel",
        params={
            "cores": N_CORES,
            "n_processes": N_PROCESSES,
            "ticks": TICKS,
            "worker_counts": list(WORKER_COUNTS),
        },
        samples=samples,
        derived=derived,
        peak_state_nbytes=peak_state,
    )
    if host_cores >= 4:
        assert speedups[4] >= 2.0, (
            f"4-worker pool reached only {speedups[4]:.2f}x on a "
            f"{host_cores}-core host (>= 2x required)"
        )
