"""E5 / Fig 7: PGAS vs MPI for real-time simulation on Blue Gene/P.

Two parts:

* a *functional* benchmark of both backends on the same network (the
  virtual-cluster overhead of each communication model, measured for real
  with pytest-benchmark);
* the Fig 7 reproduction via the calibrated Blue Gene/P model: 81K cores,
  1000 ticks, racks 1/2/4, best thread configuration per point.
"""

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.config import CompassConfig
from repro.core.pgas_simulator import PgasCompass
from repro.core.simulator import Compass
from repro.perf.realtime import max_realtime_cores, realtime_series
from repro.perf.report import format_table

TICKS = 50


@pytest.fixture(scope="module")
def network():
    return build_quickstart_network(n_cores=16, seed=5)


def test_mpi_backend_throughput(benchmark, network):
    def run():
        sim = Compass(network, CompassConfig(n_processes=4))
        sim.run(TICKS)
        return sim.metrics.total_fired

    fired = benchmark(run)
    assert fired > 0


def test_pgas_backend_throughput(benchmark, network):
    def run():
        sim = PgasCompass(network, CompassConfig(n_processes=4))
        sim.run(TICKS)
        return sim.metrics.total_fired

    fired = benchmark(run)
    assert fired > 0


def test_fig7_series(write_result, write_bench_json):
    series = realtime_series()
    rows = [
        (
            p.backend.upper(),
            f"{p.racks:g}",
            p.cpus,
            f"{p.procs_per_node}x{p.threads_per_proc}",
            round(p.seconds, 2),
            "yes" if p.realtime else "no",
        )
        for p in series
    ]
    frontier_pgas = max_realtime_cores("pgas", 4)
    frontier_mpi = max_realtime_cores("mpi", 4)
    table = format_table(
        ["impl", "racks", "cpus", "cfg", "sec/1000 ticks", "real-time"],
        rows,
        title="Fig 7: PGAS vs MPI, 81K cores on Blue Gene/P "
        "(paper: PGAS 1.0 s @ 4 racks, MPI 2.1x)",
    )
    table += (
        f"\nreal-time frontier @ 4 racks: PGAS {frontier_pgas} cores, "
        f"MPI {frontier_mpi} cores (paper: 81K under PGAS)"
    )
    write_result("fig7_pgas_vs_mpi", table)

    four = {p.backend: p for p in series if p.racks == 4}
    assert four["pgas"].realtime
    ratio = four["mpi"].seconds / four["pgas"].seconds
    write_bench_json(
        "fig7_pgas_vs_mpi",
        params={"cores": 81 * 1024, "ticks": 1000,
                "racks": sorted({p.racks for p in series})},
        samples=[p.seconds for p in series],
        derived={
            "mpi_over_pgas_4_racks": ratio,
            "frontier_pgas_cores": frontier_pgas,
            "frontier_mpi_cores": frontier_mpi,
        },
    )
    assert 1.5 < ratio < 3.0
    assert 60_000 < frontier_pgas < 120_000
