"""Streaming-telemetry overhead: the live pipeline's cost on a fleet run.

``FleetConfig.telemetry`` promises a zero-cost disabled path (the router
holds no pipeline at all) and an O(window) enabled path whose only
per-completion work is folding one job into the open aggregates.  This
bench runs the *same* seeded open-loop fleet load three ways —

* **off** — ``telemetry=None`` (the pre-existing fast path);
* **on** — windows + SLO engine, records counted and dropped;
* **on+sinks** — same, with line-serialising JSONL sinks attached, the
  configuration ``repro shard run --slo --rollups --alerts`` uses;

and records the wall-clock overhead fractions, plus the simulated-side
outputs (windows, rollup records, alert transitions), which are exact
and layout-invariant, so they double as a cheap determinism canary in
the perf history.

Recorded, not asserted: the pure-Python hot loop makes the ratios
hardware-sensitive; the numbers exist to be tracked by the
``repro obs gate`` perf-regression gate over time.
"""

import json
import time

from repro.obs.live import SLO, BurnRateRule, TelemetryConfig
from repro.perf.report import format_table
from repro.serve.server import ServeConfig
from repro.shard.loadgen import fleet_open_loop
from repro.shard.router import FleetConfig, ShardRouter

SHARDS = 3
WORKERS = 2
JOBS = 2_000
TENANTS = 500
RATE_PER_S = 1_000.0
SEED = 17
WINDOW_US = 50_000.0
REPS = 3


def _telemetry() -> TelemetryConfig:
    return TelemetryConfig(
        window_us=WINDOW_US,
        slos=(SLO("latency", latency_target_us=25_000.0, error_budget=0.05),),
        rules=(
            BurnRateRule("page", long_windows=4, short_windows=1, threshold=8.0),
            BurnRateRule("ticket", long_windows=12, short_windows=3, threshold=2.0),
        ),
    )


def _run_fleet(telemetry: TelemetryConfig | None, sinks: bool) -> tuple[float, ShardRouter]:
    router = ShardRouter(
        FleetConfig(
            shards=SHARDS,
            serve=ServeConfig(workers=WORKERS, keep_records=False),
            telemetry=telemetry,
        )
    )
    if sinks:
        # The CLI's sink shape: canonical one-line JSON per record,
        # dropped here so the bench measures serialisation, not disk.
        router.telemetry.rollup_sink = lambda r: json.dumps(r, sort_keys=True)
        router.telemetry.alert_sink = lambda r: json.dumps(r, sort_keys=True)
    # Submission already advances the fleet (arrivals are simulated as
    # they are offered), so the timed region spans load *and* drain.
    t0 = time.perf_counter()
    fleet_open_loop(
        router,
        rate_per_s=RATE_PER_S,
        jobs=JOBS,
        tenants=TENANTS,
        cores=4,
        deadline_us=500_000.0,
        seed=SEED,
        hot_fraction=0.2,
        hot_tenants=4,
    )
    router.run()
    return time.perf_counter() - t0, router


def _best_of(telemetry_factory, sinks: bool) -> tuple[float, ShardRouter]:
    best, router = min(
        (_run_fleet(telemetry_factory(), sinks) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    return best, router


def test_streaming_telemetry_overhead(write_result, write_bench_json):
    _run_fleet(None, sinks=False)  # warm-up
    off, _ = _best_of(lambda: None, sinks=False)
    on, router_on = _best_of(_telemetry, sinks=False)
    on_sinks, router_sinks = _best_of(_telemetry, sinks=True)

    tel = router_on.telemetry
    overhead_on = on / off - 1.0
    overhead_sinks = on_sinks / off - 1.0

    write_bench_json(
        "obs_stream",
        params={
            "shards": SHARDS,
            "workers": WORKERS,
            "jobs": JOBS,
            "tenants": TENANTS,
            "rate_per_s": RATE_PER_S,
            "window_us": WINDOW_US,
            "seed": SEED,
            "reps": REPS,
        },
        samples=[off, on, on_sinks],
        derived={
            "telemetry_overhead_frac": overhead_on,
            "telemetry_sinks_overhead_frac": overhead_sinks,
            "windows": float(tel.windows_closed),
            "rollup_records": float(tel.records_emitted),
            "alerts_fired": float(tel.engine.fired),
            "alerts_resolved": float(tel.engine.resolved),
        },
    )
    rows = [
        ("off", round(off, 4), "--", 0, 0),
        ("on", round(on, 4), f"{overhead_on:+.1%}", tel.windows_closed,
         tel.records_emitted),
        ("on+sinks", round(on_sinks, 4), f"{overhead_sinks:+.1%}",
         router_sinks.telemetry.windows_closed,
         router_sinks.telemetry.records_emitted),
    ]
    table = format_table(
        ["telemetry", "run_s", "overhead", "windows", "rollups"],
        rows,
        title=f"streaming telemetry overhead ({SHARDS}-shard fleet, "
        f"{JOBS} jobs, {WINDOW_US / 1e3:.0f} ms windows, best of {REPS})",
    )
    table += (
        f"\nalerts: {tel.engine.fired} fired, {tel.engine.resolved} resolved "
        f"({len(tel.alerts)} transitions total)"
    )
    write_result("obs_stream", table)

    # Simulated-side outputs must match between the counted and sinked
    # runs — the sink is a pure observer of the same deterministic stream.
    assert tel.windows_closed == router_sinks.telemetry.windows_closed
    assert tel.records_emitted == router_sinks.telemetry.records_emitted
    assert tel.windows_closed > 0 and tel.records_emitted > 0
    assert off > 0 and on > 0 and on_sinks > 0
