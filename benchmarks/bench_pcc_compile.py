"""E7 / §IV: Parallel Compass Compiler set-up time.

Measures in-situ compilation against the baseline it replaces — writing
and reading the explicit model file — and extrapolates both to the
paper's 256M-core scale (compact description vs multi-terabyte explicit
model; compile "in minutes" vs disk I/O "in hours"; the paper reports a
three-orders-of-magnitude reduction in set-up time and 107 s to compile
the 256M-core model).
"""

import time

from repro.cocomac.model import build_macaque_coreobject
from repro.compiler.diskmodel import (
    PARALLEL_FS_BANDWIDTH,
    SERIAL_FS_BANDWIDTH,
    explicit_model_nbytes,
    modeled_compile_seconds,
    modeled_disk_seconds,
    read_model_file,
    write_model_file,
)
from repro.compiler.pcc import ParallelCompassCompiler
from repro.perf.report import format_table
from repro.util.units import fmt_bytes

CORES = 128


def test_pcc_in_situ_compile(benchmark, write_result, write_bench_json, tmp_path):
    model = build_macaque_coreobject(CORES, seed=7)
    compiler = ParallelCompassCompiler()

    compiled = benchmark(lambda: compiler.compile(model.coreobject))
    network = compiled.network

    # Baseline: write + read the explicit model (what §IV replaces).
    t0 = time.perf_counter()
    write_model_file(network, tmp_path / "explicit.npz")
    t_write = time.perf_counter() - t0
    t0 = time.perf_counter()
    read_model_file(tmp_path / "explicit.npz")
    t_read = time.perf_counter() - t0

    t_compile = compiled.metrics.wall_seconds
    compact = model.coreobject.description_nbytes()
    explicit = explicit_model_nbytes(CORES)
    explicit_paper = explicit_model_nbytes(256 * 10**6)

    # Scale extrapolation: the §IV argument only bites at paper scale,
    # where the explicit model is terabytes and generation is parallel.
    paper_connections = 256 * 10**6 * 256  # one output per neuron
    t_compile_paper = modeled_compile_seconds(paper_connections, 16384)
    t_disk_parallel = modeled_disk_seconds(explicit_paper, PARALLEL_FS_BANDWIDTH)
    t_disk_serial = modeled_disk_seconds(explicit_paper, SERIAL_FS_BANDWIDTH)

    rows = [
        ("in-situ compile (s)", round(t_compile, 3)),
        ("explicit write+read (s)", round(t_write + t_read, 3)),
        ("compact description", fmt_bytes(compact)),
        ("explicit model (this size)", fmt_bytes(explicit)),
        ("--- extrapolated to 256M cores ---", ""),
        ("explicit model", fmt_bytes(explicit_paper)),
        ("PCC compile on 16384 nodes (s)", round(t_compile_paper, 0)),
        ("disk write+read, parallel FS (s)", round(t_disk_parallel, 0)),
        ("disk write+read, single writer (h)", round(t_disk_serial / 3600, 1)),
        ("set-up speed-up vs single writer", f"{t_disk_serial / t_compile_paper:.0f}x"),
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title=f"§IV: PCC set-up time, {CORES}-core macaque model "
        "(paper: in-situ generation ~1000x faster than multi-TB model files; "
        "256M-core compile took 107 s)",
    )
    write_result("pcc_compile", table)
    write_bench_json(
        "pcc_compile",
        params={"cores": CORES},
        samples=[t_compile],
        derived={
            "explicit_write_read_s": t_write + t_read,
            "compact_description_bytes": compact,
            "explicit_model_bytes": explicit,
            "explicit_model_bytes_paper": explicit_paper,
            "compile_s_paper": t_compile_paper,
            "disk_s_paper_parallel_fs": t_disk_parallel,
            "disk_s_paper_single_writer": t_disk_serial,
        },
    )

    # The explicit paper-scale model must be in the terabytes (§IV).
    assert explicit_paper > 1e12
    # The compact description stays around kilobytes regardless of scale.
    assert compact < 10 * 2**20
