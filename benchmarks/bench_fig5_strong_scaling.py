"""E3 / Fig 5: strong scaling of a fixed 32M-core CoCoMac model.

Paper anchors: 324 s on one rack (baseline), 47 s on 8 racks (6.9x),
37 s on 16 racks (8.8x).
"""

from repro.perf.report import format_table
from repro.perf.strong_scaling import strong_scaling_series


def test_fig5_strong_scaling(benchmark, write_result, write_bench_json):
    series = benchmark(strong_scaling_series)

    rows = [
        (
            f"{p.racks:g}",
            p.cpus,
            f"{p.cores_per_node:.0f}",
            round(p.times.synapse, 1),
            round(p.times.neuron, 1),
            round(p.times.network, 1),
            round(p.times.total, 1),
            f"{p.speedup:.1f}x",
        )
        for p in series
    ]
    table = format_table(
        ["racks", "cpus", "cores/node", "synapse_s", "neuron_s", "network_s", "total_s", "speedup"],
        rows,
        title="Fig 5: strong scaling, fixed 32M cores, 500 ticks "
        "(paper: 324 s baseline; 6.9x @ 8 racks; 8.8x @ 16 racks)",
    )
    write_result("fig5_strong_scaling", table)

    assert abs(series[0].times.total - 324) / 324 < 0.15
    p8 = next(p for p in series if p.racks == 8)
    p16 = next(p for p in series if p.racks == 16)
    write_bench_json(
        "fig5_strong_scaling",
        params={"cores": 32 * 2**20, "ticks": 500,
                "racks": [p.racks for p in series]},
        samples=[p.times.total for p in series],
        derived={
            "total_s_baseline": series[0].times.total,
            "speedup_8_racks": p8.speedup,
            "speedup_16_racks": p16.speedup,
        },
    )
    assert 5.0 < p8.speedup < 9.0
    assert p8.speedup < p16.speedup < 14.0
