"""E10 companion: real functional-simulation throughput on this host.

Not a paper figure — the calibration ground truth.  Measures wall-clock
seconds per simulated tick of the *functional* simulator at several model
sizes, plus the per-phase split, so the repository documents what the
pure-Python Compass actually achieves (EXPERIMENTS.md quotes these
numbers alongside the modelled Blue Gene figures).
"""

import time

import pytest

from repro.cocomac.model import build_macaque_model
from repro.core.checkpoint import state_nbytes
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.obs import Observability
from repro.perf.report import format_table

TICKS = 50


@pytest.mark.parametrize("cores", [77, 256])
def test_functional_tick_throughput(benchmark, cores):
    model = build_macaque_model(total_cores=cores, seed=3)
    net = model.compiled.network

    def run():
        sim = Compass(net, CompassConfig(n_processes=4))
        sim.run(TICKS)
        return sim

    sim = benchmark(run)
    assert sim.metrics.ticks == TICKS


def test_tracing_overhead(write_result, write_bench_json, macaque_128):
    """Cost of span tracing over the disabled-tracer fast path.

    Recorded, not asserted: the pure-Python hot loop makes the ratio
    hardware-sensitive, and the number exists to be tracked over time.
    """
    net = macaque_128.compiled.network
    reps = 3

    def run_once(obs):
        sim = Compass(net, CompassConfig(n_processes=4), obs=obs)
        t0 = time.perf_counter()
        sim.run(TICKS)
        return time.perf_counter() - t0

    run_once(Observability.off())  # warm-up
    disabled = min(run_once(Observability.off()) for _ in range(reps))
    enabled = min(run_once(Observability.with_tracing()) for _ in range(reps))
    frac = enabled / disabled - 1.0
    # Memory footprint of the simulated state (layout-invariant, exact).
    peak_nbytes = state_nbytes(Compass(net, CompassConfig(n_processes=4)))

    write_bench_json(
        "tick_throughput",
        params={"cores": 128, "ticks": TICKS, "n_processes": 4, "reps": reps},
        samples=[disabled, enabled],
        derived={
            "s_per_tick_disabled": disabled / TICKS,
            "s_per_tick_enabled": enabled / TICKS,
            "tracing_overhead_frac": frac,
        },
        peak_state_nbytes=peak_nbytes,
    )
    write_result(
        "tracing_overhead",
        f"span tracing overhead, 128-core macaque, {TICKS} ticks: "
        f"off {disabled / TICKS * 1e3:.2f} ms/tick, "
        f"on {enabled / TICKS * 1e3:.2f} ms/tick ({frac:+.1%})",
    )
    assert disabled > 0 and enabled > 0


def test_phase_split_report(write_result, macaque_128):
    net = macaque_128.compiled.network
    sim = Compass(net, CompassConfig(n_processes=4))
    sim.run(200)
    h = sim.metrics.host
    rows = [
        ("synapse", round(h.synapse, 3), f"{h.synapse / h.total:.0%}"),
        ("neuron", round(h.neuron, 3), f"{h.neuron / h.total:.0%}"),
        ("network", round(h.network, 3), f"{h.network / h.total:.0%}"),
        ("total", round(h.total, 3), "100%"),
    ]
    table = format_table(
        ["phase", "host_seconds", "share"],
        rows,
        title="functional host-time phase split "
        "(128-core macaque model, 200 ticks, 4 virtual processes)",
    )
    table += (
        f"\nper tick: {h.total / 200 * 1e3:.2f} ms host time; "
        f"rate {sim.metrics.mean_rate_hz(net.n_neurons):.1f} Hz"
    )
    write_result("tick_throughput", table)
    assert h.total > 0
