"""E1 / Fig 4(a): weak scaling — total runtime and phase breakdown.

Regenerates the paper's sweep (16384 cores per node, 1-16 racks of Blue
Gene/Q, 500 ticks): total wall-clock time and the Synapse / Neuron /
Network breakdown.  Benchmarks one full model evaluation at the largest
point (traffic model + cost model over the real CoCoMac matrix).
"""

from repro.perf.report import format_table
from repro.perf.weak_scaling import weak_scaling_point, weak_scaling_series

PAPER_ANCHORS = {1: 165.0, 16: 194.0}  # seconds, read off Fig 4(a)


def test_fig4a_weak_scaling(benchmark, write_result, write_bench_json):
    benchmark(lambda: weak_scaling_point(nodes=16384))

    series = weak_scaling_series()
    rows = []
    for p in series:
        rows.append(
            (
                f"{p.racks:g}",
                p.cpus,
                f"{p.cores/2**20:.0f}M",
                round(p.times.synapse, 1),
                round(p.times.neuron, 1),
                round(p.times.network, 1),
                round(p.times.total, 1),
                f"{p.slowdown:.0f}x",
            )
        )
    table = format_table(
        ["racks", "cpus", "cores", "synapse_s", "neuron_s", "network_s", "total_s", "slowdown"],
        rows,
        title="Fig 4(a): weak scaling, 16384 cores/node, 500 ticks "
        "(paper: ~165 s -> 194 s; 388x at 256M cores)",
    )
    write_result("fig4a_weak_scaling", table)

    by_racks = {p.racks: p for p in series}
    write_bench_json(
        "fig4a_weak_scaling",
        params={"cores_per_node": 16384, "ticks": 500,
                "racks": [p.racks for p in series]},
        samples=[p.times.total for p in series],
        derived={
            "total_s_1_rack": by_racks[1].times.total,
            "total_s_16_racks": by_racks[16].times.total,
            "slowdown_16_racks": by_racks[16].slowdown,
        },
    )
    assert abs(by_racks[1].times.total - PAPER_ANCHORS[1]) / PAPER_ANCHORS[1] < 0.2
    assert abs(by_racks[16].times.total - PAPER_ANCHORS[16]) / PAPER_ANCHORS[16] < 0.2
