"""E2 / Fig 4(b): messaging and data-transfer analysis per simulated tick.

Regenerates the MPI-message-count and white-matter-spike-count series of
Fig 4(b), plus the §VI-B bandwidth argument (0.44 GB/tick at the largest
point, well below the 2 GB/s torus links).  Benchmarks one traffic-model
evaluation at the largest point.
"""

from repro.cocomac.model import build_macaque_coreobject
from repro.perf.report import format_table
from repro.perf.traffic import CocomacTraffic
from repro.perf.weak_scaling import weak_scaling_series
from repro.runtime.machine import BLUE_GENE_Q


def test_fig4b_messaging(benchmark, write_result, write_bench_json):
    model = build_macaque_coreobject(16384 * 16384, seed=0)
    traffic = CocomacTraffic(model)
    benchmark(lambda: traffic.summary(16384))

    series = weak_scaling_series()
    rows = []
    for p in series:
        rows.append(
            (
                f"{p.racks:g}",
                p.cpus,
                f"{p.messages_per_tick/1e6:.2f}M",
                f"{p.spikes_per_tick/1e6:.2f}M",
                f"{p.bytes_per_tick/1e9:.2f}",
                f"{p.messages_per_tick/p.nodes:.0f}",
            )
        )
    table = format_table(
        ["racks", "cpus", "msgs/tick", "spikes/tick", "GB/tick", "msgs/proc"],
        rows,
        title="Fig 4(b): messaging per tick "
        "(paper: ~22M spikes = 0.44 GB at 16 racks; sub-linear message growth)",
    )
    write_result("fig4b_messaging", table)

    largest = series[-1]
    write_bench_json(
        "fig4b_messaging",
        params={"cores_per_node": 16384, "racks": [p.racks for p in series]},
        samples=[p.messages_per_tick for p in series],
        derived={
            "messages_per_tick_largest": largest.messages_per_tick,
            "spikes_per_tick_largest": largest.spikes_per_tick,
            "bytes_per_tick_largest": largest.bytes_per_tick,
        },
    )
    assert largest.bytes_per_tick < BLUE_GENE_Q.link_bandwidth  # §VI-B
    # Sub-linear per-process message growth.
    growth_pp = (largest.messages_per_tick / largest.nodes) / (
        series[0].messages_per_tick / series[0].nodes
    )
    assert growth_pp < largest.cores / series[0].cores
