"""E4 / Fig 6 + E9 / §VI-D: OpenMP thread scaling and the processes-vs-
threads trade-off.

Fig 6: fixed 64M-core model on 4096 nodes, one MPI process per node,
OpenMP team swept 1 -> 32; speed-up per phase over the one-thread
baseline.  §VI-D: (procs/node x threads) combinations perform near-equal.
"""

from repro.perf.report import format_table
from repro.perf.thread_scaling import procs_threads_tradeoff, thread_scaling_series


def test_fig6_thread_scaling(benchmark, write_result, write_bench_json):
    series = benchmark(thread_scaling_series)

    rows = [
        (
            p.threads,
            round(p.times.total, 1),
            f"{p.speedup_total:.2f}x",
            f"{p.speedup_synapse:.2f}x",
            f"{p.speedup_neuron:.2f}x",
            f"{p.speedup_network:.2f}x",
        )
        for p in series
    ]
    table = format_table(
        ["threads", "total_s", "speedup", "synapse", "neuron", "network"],
        rows,
        title="Fig 6: thread scaling, 64M cores on 4096 nodes "
        "(paper: excellent but sub-linear; Network limited by a critical section)",
    )
    write_result("fig6_thread_scaling", table)

    last = series[-1]
    assert 10 < last.speedup_total < 28
    assert last.speedup_network < last.speedup_neuron  # the serial bottleneck
    write_bench_json(
        "fig6_thread_scaling",
        params={"cores": 64 * 2**20, "nodes": 4096,
                "threads": [p.threads for p in series]},
        samples=[p.times.total for p in series],
        derived={
            "speedup_total_max_threads": last.speedup_total,
            "speedup_network_max_threads": last.speedup_network,
            "speedup_neuron_max_threads": last.speedup_neuron,
        },
    )


def test_procs_threads_tradeoff(write_result):
    points = procs_threads_tradeoff()
    rows = [
        (
            f"{p.procs_per_node}x{p.threads}",
            p.procs_per_node * 4096,
            round(p.times.total, 1),
            f"{p.speedup_total:.2f}",
        )
        for p in points
    ]
    table = format_table(
        ["cfg(procs x threads)", "mpi_ranks", "total_s", "vs_1x32"],
        rows,
        title="§VI-D: procs-per-node vs threads-per-proc trade-off "
        "(paper: 'yielded little change in performance')",
    )
    write_result("vi_d_procs_threads_tradeoff", table)

    totals = [p.times.total for p in points]
    assert max(totals) / min(totals) < 1.4
