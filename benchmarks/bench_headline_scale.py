"""E6: the headline scale table (§I / §VI-B).

256M cores, 65B neurons, 16T synapses, 8.1 Hz, 388x slower than real
time, 22M spikes = 0.44 GB per tick.
"""

from repro.perf.headline import headline_summary
from repro.perf.power import blue_gene_power_watts, truenorth_power_watts
from repro.perf.report import paper_vs_model


def test_headline_scale(benchmark, write_result, write_bench_json):
    summary = benchmark(headline_summary)
    table = paper_vs_model(summary["paper"], summary["model"])

    # §I use-case (e): power estimation for the same network.
    tn = truenorth_power_watts(int(summary["model"]["cores"]), 8.1)
    bg = blue_gene_power_watts(16)
    table += (
        f"\n\npower estimate: TrueNorth {tn/1e3:.1f} kW vs "
        f"Blue Gene/Q simulator {bg/1e3:.0f} kW "
        f"({bg/tn:.0f}x) — the architecture's motivation"
    )
    write_result("headline_scale", "Headline (256M-core run)\n" + table)

    model = summary["model"]
    write_bench_json(
        "headline_scale",
        params={"cores": model["cores"]},
        samples=[model["slowdown"]],
        derived={
            "slowdown": model["slowdown"],
            "mean_rate_hz": model["mean_rate_hz"],
            "truenorth_power_w": tn,
            "blue_gene_power_w": bg,
        },
    )
    assert abs(model["slowdown"] - 388) / 388 < 0.15
    assert abs(model["mean_rate_hz"] - 8.1) < 0.1
