"""Serving-layer throughput: batched vs unbatched goodput under load.

The serving layer exists to amortise virtual-cluster setup across
compatible jobs.  This bench offers the *same* seeded open-loop load to
two service configurations — batching disabled (``max_batch=1``) and
batching enabled — and compares goodput (in-deadline completions per
simulated second) and tail latency.  Batching must win on goodput, and
both runs must be exactly reproducible (all accounting is simulated
time), so the emitted samples gate cleanly in the perf history.
"""

from repro.perf.report import format_table
from repro.serve.loadgen import build_report, open_loop_load
from repro.serve.server import ServeConfig, SimServer

JOBS = 60
RATE_PER_S = 120.0
WORKERS = 2
N_CORES = 4
DEADLINE_US = 500_000.0
SEED = 11
BATCH_SIZE = 8
BATCH_DELAY_US = 8_000.0


def _run(max_batch: int, delay_us: float):
    server = SimServer(
        ServeConfig(
            workers=WORKERS,
            max_batch_size=max_batch,
            max_batch_delay_us=delay_us,
        )
    )
    open_loop_load(
        server,
        rate_per_s=RATE_PER_S,
        jobs=JOBS,
        cores=N_CORES,
        deadline_us=DEADLINE_US,
        seed=SEED,
    )
    server.run()
    return build_report(server)


def test_serve_throughput_report(benchmark, write_result, write_bench_json):
    unbatched = _run(max_batch=1, delay_us=0.0)
    batched = benchmark(lambda: _run(BATCH_SIZE, BATCH_DELAY_US))

    # The point of the subsystem: amortised setup must raise goodput.
    assert batched.goodput_per_s > unbatched.goodput_per_s
    assert batched.jobs_completed == unbatched.jobs_completed == JOBS

    rows = [
        (
            name,
            r.batches,
            round(r.mean_batch_size, 2),
            round(r.p50_us, 1),
            round(r.p99_us, 1),
            round(r.goodput_per_s, 3),
            r.deadline_missed,
        )
        for name, r in (("unbatched", unbatched), ("batched", batched))
    ]
    table = format_table(
        ["config", "batches", "mean_size", "p50_us", "p99_us",
         "goodput/s", "missed"],
        rows,
        title=(
            f"serve throughput: {JOBS} jobs at {RATE_PER_S:.0f}/s offered, "
            f"{WORKERS} workers, {N_CORES}-core quickstart, "
            f"deadline {DEADLINE_US/1e3:.0f}ms (simulated time)"
        ),
    )
    write_result("serve_throughput", table)
    write_bench_json(
        "serve_throughput",
        params={
            "jobs": JOBS,
            "rate_per_s": RATE_PER_S,
            "workers": WORKERS,
            "n_cores": N_CORES,
            "deadline_us": DEADLINE_US,
            "seed": SEED,
            "batch_size": BATCH_SIZE,
            "batch_delay_us": BATCH_DELAY_US,
        },
        # Samples are simulated p99 latencies (seconds) of the batched
        # config — deterministic, so the gate sees an exact baseline.
        samples=[batched.p99_us / 1e6],
        derived={
            "batched_goodput_per_s": batched.goodput_per_s,
            "unbatched_goodput_per_s": unbatched.goodput_per_s,
            "goodput_gain": batched.goodput_per_s / unbatched.goodput_per_s,
            "batched_p50_us": batched.p50_us,
            "batched_p99_us": batched.p99_us,
            "unbatched_p50_us": unbatched.p50_us,
            "unbatched_p99_us": unbatched.p99_us,
            "batched_batches": batched.batches,
            "batched_mean_batch_size": batched.mean_batch_size,
            "deadline_missed_batched": batched.deadline_missed,
            "deadline_missed_unbatched": unbatched.deadline_missed,
        },
    )
