"""E8 / Fig 3: macaque region map — atlas volume vs post-IPFP allocation.

The paper's Fig 3 plots, per brain region, the relative core count
indicated by the Paxinos atlas (green) and the cores actually allocated
after the normalisation step (red), in log space.  This bench regenerates
that table for all 77 regions and benchmarks the IPFP balancing step that
produces it.
"""

import numpy as np

from repro.cocomac.model import build_macaque_coreobject
from repro.compiler.ipfp import balance_matrix
from repro.perf.report import format_table

MODEL_CORES = 4096


def test_fig3_region_allocation(benchmark, write_result, write_bench_json):
    model = build_macaque_coreobject(MODEL_CORES, seed=0)

    # Benchmark the realizability step: IPFP on the 77x77 macaque matrix.
    m = np.where(model.binary_matrix > 0, 1.0, 0.0)
    np.fill_diagonal(m, 1.0)
    vols = model.volumes.volume_array(model.region_names)
    m *= vols[:, None]
    targets = model.cores.astype(float) * 256
    benchmark(lambda: balance_matrix(m, targets, targets, tol=1e-9))

    vols_norm = vols / vols.sum()
    cores_norm = model.cores / model.cores.sum()
    out_deg = model.binary_matrix.sum(axis=1)
    rows = [
        (
            model.region_names[i],
            model.region_classes[i],
            round(float(np.log10(vols_norm[i])), 3),
            round(float(np.log10(cores_norm[i])), 3),
            int(model.cores[i]),
            int(out_deg[i]),
        )
        for i in np.argsort(-vols)
    ]
    table = format_table(
        ["region", "class", "log10_atlas_vol", "log10_alloc", "cores", "out_edges"],
        rows,
        title=f"Fig 3: {MODEL_CORES}-core macaque model, 77 regions "
        "(paper plots atlas volume vs normalised allocation in log space)",
    )
    write_result("fig3_region_allocation", table)

    # The normalisation must track the atlas within rounding.
    corr = np.corrcoef(vols_norm, cores_norm)[0, 1]
    write_bench_json(
        "fig3_region_allocation",
        params={"model_cores": MODEL_CORES, "regions": len(model.region_names)},
        samples=[corr],
        derived={"atlas_allocation_correlation": float(corr)},
    )
    assert corr > 0.99
