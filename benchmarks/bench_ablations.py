"""Ablations of the design choices DESIGN.md calls out (§5).

Each ablation removes one Compass design decision and quantifies the cost
through the same calibrated model used for the figures:

* spike aggregation (one message per process pair) vs per-spike sends;
* overlapping local delivery with the Reduce-Scatter vs serialising them;
* bit-packed crossbars vs C2-style per-synapse structures (storage and
  memory-boundedness);
* diffuse vs focused long-range targeting (§V-B).
"""

import numpy as np

from repro.cocomac.model import build_macaque_coreobject
from repro.perf.costmodel import phase_times_mpi
from repro.perf.report import format_table
from repro.perf.traffic import PER_CORE_STATE_BYTES, CocomacTraffic
from repro.runtime.machine import BLUE_GENE_Q, MachineConfig

NODES = 4096
CORES_PER_NODE = 16384


def _model():
    return build_macaque_coreobject(NODES * CORES_PER_NODE, seed=0)


def test_ablation_spike_aggregation(benchmark, write_result, write_bench_json):
    model = _model()
    mc = MachineConfig(BLUE_GENE_Q, nodes=NODES, threads_per_proc=32)

    aggregated = CocomacTraffic(model, aggregate=True).summary(NODES)
    per_spike = CocomacTraffic(model, aggregate=False).summary(NODES)
    benchmark(lambda: phase_times_mpi(aggregated, mc))

    t_agg = phase_times_mpi(aggregated, mc)
    t_per = phase_times_mpi(per_spike, mc)
    rows = [
        ("aggregated (Compass)", f"{aggregated.messages/1e6:.2f}M", round(t_agg.network * 1e3, 1)),
        ("per-spike sends", f"{per_spike.messages/1e6:.2f}M", round(t_per.network * 1e3, 1)),
        ("slowdown without aggregation", "", f"{t_per.network / t_agg.network:.1f}x"),
    ]
    write_result(
        "ablation_aggregation",
        format_table(
            ["variant", "msgs/tick", "network ms/tick"],
            rows,
            title="ablation: spike aggregation (§III)",
        ),
    )
    write_bench_json(
        "ablations",
        params={"nodes": NODES, "cores_per_node": CORES_PER_NODE},
        samples=[t_agg.network, t_per.network],
        derived={
            "network_s_aggregated": t_agg.network,
            "network_s_per_spike": t_per.network,
            "slowdown_without_aggregation": t_per.network / t_agg.network,
        },
    )
    assert t_per.network > t_agg.network


def test_ablation_overlap(write_result):
    model = _model()
    mc = MachineConfig(BLUE_GENE_Q, nodes=NODES, threads_per_proc=32)
    ts = CocomacTraffic(model).summary(NODES)
    t_overlap = phase_times_mpi(ts, mc, overlap=True)
    t_serial = phase_times_mpi(ts, mc, overlap=False)
    rows = [
        ("overlapped (Compass)", round(t_overlap.network * 1e3, 2)),
        ("serialised", round(t_serial.network * 1e3, 2)),
        ("penalty", f"{t_serial.network / t_overlap.network:.2f}x"),
    ]
    write_result(
        "ablation_overlap",
        format_table(
            ["variant", "network ms/tick"],
            rows,
            title="ablation: overlap local delivery with Reduce-Scatter (§III)",
        ),
    )
    assert t_serial.network >= t_overlap.network


def test_ablation_crossbar_packing(write_result):
    """§I: bit-packed synapses are 32x smaller than C2's struct; the
    working-set reduction also changes memory-boundedness."""
    packed_bytes = 256 * 32  # 256 axons x 32 packed bytes
    c2_bytes = 256 * 256 * 4  # one 4-byte struct per synapse
    cost = BLUE_GENE_Q.cost

    ws_packed = CORES_PER_NODE * PER_CORE_STATE_BYTES
    ws_c2 = ws_packed + CORES_PER_NODE * (c2_bytes - packed_bytes)
    rows = [
        ("crossbar bytes/core (packed)", packed_bytes),
        ("crossbar bytes/core (C2 struct)", c2_bytes),
        ("storage ratio", f"{c2_bytes / packed_bytes:.0f}x"),
        ("node working set (packed)", f"{ws_packed / 2**30:.1f} GiB"),
        ("node working set (C2-style)", f"{ws_c2 / 2**30:.1f} GiB"),
        ("memory cost factor (packed)", round(cost.memory_factor(ws_packed), 2)),
        ("memory cost factor (C2-style)", round(cost.memory_factor(ws_c2), 2)),
    ]
    write_result(
        "ablation_crossbar_packing",
        format_table(
            ["quantity", "value"],
            rows,
            title="ablation: bit-packed crossbar vs C2 per-synapse struct (§I)",
        ),
    )
    assert c2_bytes / packed_bytes == 32
    # C2-style storage at 16384 cores/node would exceed BG/Q node memory.
    assert ws_c2 > BLUE_GENE_Q.memory_per_node / 4


def test_extension_topology_aware_placement(write_result):
    """Extension beyond the paper: would topology-aware region placement
    reduce white-matter byte-hops on the 5-D torus?  (The paper places
    regions in database order.)"""
    import numpy as np

    from repro.compiler.placement import placement_improvement

    model = _model()
    flow = model.connection_counts.astype(float)
    np.fill_diagonal(flow, 0.0)
    procs = np.maximum(model.cores.astype(float) / model.cores.sum() * NODES, 1)
    default, optimised = placement_improvement(flow, procs, n_nodes=NODES)
    rows = [
        ("database order (paper)", f"{default.mean_hops:.2f}",
         f"{default.byte_hops:.3g}"),
        ("traffic-affinity order", f"{optimised.mean_hops:.2f}",
         f"{optimised.byte_hops:.3g}"),
        ("byte-hop reduction", "",
         f"{(1 - optimised.byte_hops / default.byte_hops):.1%}"),
    ]
    write_result(
        "extension_placement",
        format_table(
            ["region placement", "mean hops", "byte-hops/tick"],
            rows,
            title="extension: topology-aware region placement on the torus",
        ),
    )
    assert optimised.byte_hops <= default.byte_hops * 1.02


def test_ablation_diffuse_targeting(write_result):
    """§V-B: diffuse connections maximise the communication burden; the
    focused alternative concentrates each region pair onto single links."""
    model = _model()
    diffuse = CocomacTraffic(model, diffuse=True).summary(NODES)
    focused = CocomacTraffic(model, diffuse=False).summary(NODES)
    mc = MachineConfig(BLUE_GENE_Q, nodes=NODES, threads_per_proc=32)
    t_diffuse = phase_times_mpi(diffuse, mc)
    t_focused = phase_times_mpi(focused, mc)
    rows = [
        ("diffuse (paper's choice)", f"{diffuse.messages/1e6:.2f}M",
         round(t_diffuse.network * 1e3, 1)),
        ("focused", f"{focused.messages/1e6:.2f}M",
         round(t_focused.network * 1e3, 1)),
    ]
    write_result(
        "ablation_diffuse_targeting",
        format_table(
            ["variant", "msgs/tick", "network ms/tick"],
            rows,
            title="ablation: diffuse vs focused long-range targeting (§V-B) — "
            "diffuse stresses the interconnect harder by design",
        ),
    )
    assert focused.messages < diffuse.messages
    assert np.isfinite(t_focused.network)
