"""Recovery-overhead sweep: checkpoint interval vs cost of a mid-run crash.

The classic resilience trade-off — frequent checkpoints cost simulated
time every interval, sparse checkpoints cost lost work per failure.  The
sweep crashes one rank mid-run at three checkpoint intervals and tables
both sides of the trade, plus measures the host-time cost of the
coordinated in-memory snapshot itself.
"""

import pytest

from repro.apps.quicknet import build_quickstart_network
from repro.core.checkpoint import capture_state
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.perf.report import format_table
from repro.resilience import FaultSchedule, RankCrash, ResilientRunner, spike_digest

TICKS = 60
CRASH_TICK = 37
N_CORES = 16
N_RANKS = 4


def _factory():
    net = build_quickstart_network(n_cores=N_CORES, seed=3)
    cfg = CompassConfig(n_processes=N_RANKS, record_spikes=True)

    def make():
        return Compass(net, cfg)

    return make


def test_checkpoint_capture_cost(benchmark):
    """Host cost of one coordinated in-memory snapshot."""
    sim = _factory()()
    sim.run(10)
    state = benchmark(lambda: capture_state(sim))
    assert state["tick"] == 10


@pytest.mark.parametrize("interval", [5, 10, 20])
def test_recovery_overhead_vs_interval(benchmark, interval):
    make = _factory()
    schedule = FaultSchedule([RankCrash(tick=CRASH_TICK, rank=1)])

    def run():
        runner = ResilientRunner(
            make, schedule=schedule, checkpoint_interval=interval
        )
        runner.run(TICKS)
        return runner

    runner = benchmark(run)
    assert len(runner.report.failures) == 1
    assert runner.report.lost_ticks == CRASH_TICK - (CRASH_TICK // interval) * interval


def test_interval_sweep_report(write_result, write_bench_json):
    make = _factory()
    clean = make().run(TICKS)
    digest = spike_digest(clean.spikes)

    rows = []
    derived = {}
    for interval in (5, 10, 20):
        runner = ResilientRunner(
            make,
            schedule=FaultSchedule([RankCrash(tick=CRASH_TICK, rank=1)]),
            checkpoint_interval=interval,
        )
        result = runner.run(TICKS)
        r = runner.report
        assert spike_digest(result.spikes) == digest
        derived[f"interval_{interval}_lost_ticks"] = r.lost_ticks
        derived[f"interval_{interval}_total_overhead_s"] = r.total_overhead_s
        rows.append(
            (
                interval,
                r.n_checkpoints,
                round(r.checkpoint_overhead_s, 3),
                r.lost_ticks,
                round(r.time_to_recover_s, 3),
                round(r.total_overhead_s, 3),
            )
        )
    table = format_table(
        ["interval", "ckpts", "ckpt_s", "lost_ticks", "recover_s", "total_s"],
        rows,
        title=(
            f"recovery overhead vs checkpoint interval "
            f"({N_CORES}-core quickstart, {N_RANKS} ranks, "
            f"crash at tick {CRASH_TICK} of {TICKS}; simulated seconds)"
        ),
    )
    write_result("recovery_overhead", table)
    write_bench_json(
        "recovery_overhead",
        params={"ticks": TICKS, "crash_tick": CRASH_TICK,
                "n_cores": N_CORES, "n_ranks": N_RANKS,
                "intervals": [5, 10, 20]},
        samples=[derived[f"interval_{i}_total_overhead_s"] for i in (5, 10, 20)],
        derived=derived,
    )
