"""Simulated parallel machine substrate.

The paper runs Compass on IBM Blue Gene/Q (functional + scaling study) and
Blue Gene/P (PGAS vs MPI study).  Neither machine — nor MPI itself — is
available here, so this package provides a deterministic *virtual cluster*:

* :mod:`repro.runtime.machine` — machine descriptions (BG/Q, BG/P racks,
  nodes, CPUs, memory, torus links) and their calibrated cost constants;
* :mod:`repro.runtime.torus` — the 5-D/3-D torus topology used for hop
  counts and bandwidth sanity checks;
* :mod:`repro.runtime.mailbox` / :mod:`repro.runtime.mpi` — two-sided
  message passing with the exact primitives of Listing 1 (``MPI_Isend``,
  ``MPI_Reduce_scatter``, ``MPI_Iprobe``/``MPI_Get_count``/``MPI_Recv``);
* :mod:`repro.runtime.pgas` — one-sided puts into globally addressable
  windows plus a global barrier (the UPC/GASNet model of §VII);
* :mod:`repro.runtime.threads` — the OpenMP-style intra-process thread
  timing model (Amdahl + critical-section serialisation);
* :mod:`repro.runtime.timing` — the per-phase cost model that converts
  event counts into simulated wall-clock time.

Functional behaviour is exact; time is modelled.  The split keeps the
simulator's *results* independent of the cost constants.
"""

from repro.runtime.machine import (
    MachineSpec,
    MachineConfig,
    BLUE_GENE_Q,
    BLUE_GENE_P,
)
from repro.runtime.torus import TorusTopology
from repro.runtime.mailbox import Mailbox, Message
from repro.runtime.mpi import VirtualMpiCluster, MpiEndpoint
from repro.runtime.pgas import PgasCluster, PgasEndpoint
from repro.runtime.timing import CostModel
from repro.runtime.threads import effective_threads, amdahl_speedup

__all__ = [
    "MachineSpec",
    "MachineConfig",
    "BLUE_GENE_Q",
    "BLUE_GENE_P",
    "TorusTopology",
    "Mailbox",
    "Message",
    "VirtualMpiCluster",
    "MpiEndpoint",
    "PgasCluster",
    "PgasEndpoint",
    "CostModel",
    "effective_threads",
    "amdahl_speedup",
]
