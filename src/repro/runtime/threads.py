"""OpenMP-style intra-process thread timing model.

Compass forks OpenMP threads inside each MPI process (§III).  Two effects
keep thread scaling from being perfect (§VI-D):

* **SMT yield** — Blue Gene/Q exposes 4 hardware threads per core, but a
  hardware thread is not a core: beyond one thread per core, additional
  threads add only a fractional yield (the paper also reports unexplained
  system errors at the full 64-thread count and runs with 32);
* **false sharing** — spreading one process's shared-memory region across
  more threads increases coherence traffic; the paper observes that fewer
  processes × more threads is roughly cancelled out by this penalty.

Also here: :func:`partition_cores`, the uniform core→thread partition of
§III ("Compass distributes simulated cores uniformly across the available
threads"), used by both the functional simulator and the load-imbalance
metrics, and :func:`sanitize_thread_writes`, the race-detector
instrumentation that models one tick of the OpenMP team's writes to the
rank's shared buffer region.
"""

from __future__ import annotations

import math

import numpy as np


def effective_threads(
    threads: int,
    cpu_cores: int,
    smt_yield: float = 0.35,
    false_sharing: float = 0.01,
) -> float:
    """Effective parallelism of ``threads`` OpenMP threads on ``cpu_cores``.

    Up to one thread per core scales linearly; each doubling beyond that
    adds ``smt_yield`` of a full core's worth per core.  A small
    ``false_sharing`` penalty per extra thread models coherence traffic in
    the shared region.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    if threads <= cpu_cores:
        base = float(threads)
    else:
        oversub = threads / cpu_cores
        base = cpu_cores * (1.0 + smt_yield * math.log2(oversub))
    penalty = 1.0 + false_sharing * (threads - 1)
    return base / penalty


def amdahl_speedup(threads: float, serial_fraction: float) -> float:
    """Classic Amdahl speed-up with a serial fraction (critical sections)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be within [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads)


def partition_cores(n_cores: int, n_threads: int) -> list[range]:
    """Uniform contiguous partition of core indices across threads.

    The first ``n_cores % n_threads`` threads get one extra core — the same
    balanced split used for the per-thread loops in Listing 1.
    """
    if n_threads <= 0:
        raise ValueError("n_threads must be positive")
    base = n_cores // n_threads
    extra = n_cores % n_threads
    parts: list[range] = []
    start = 0
    for t in range(n_threads):
        size = base + (1 if t < extra else 0)
        parts.append(range(start, start + size))
        start += size
    return parts


def sanitize_thread_writes(
    detector, rank: int, n_cores: int, n_threads: int, region: str = "pending"
) -> None:
    """Model one tick of the rank's OpenMP team for the race detector.

    Compass's Synapse and Neuron phases run one thread per contiguous
    core slice, all writing the *same* shared per-rank buffer region
    (axon pending bits, potentials).  Correctness rests on those slices
    being disjoint — the invariant :func:`partition_cores` is supposed to
    provide.  This hook re-derives the slices each tick and records them
    as shared writes on the detector: a future change that makes two
    threads' slices overlap (or hands one core to two threads) surfaces
    as a ``shared-buffer`` race with a vector-clock witness instead of a
    silent nondeterminism.
    """
    actors = detector.fork_threads(rank, n_threads)
    for actor, span in zip(actors, partition_cores(n_cores, n_threads)):
        if span.stop > span.start:
            detector.on_shared_write(actor, (rank, region), span.start, span.stop)
    detector.join_threads(rank, n_threads)


def trace_thread_slices(
    tracer, rank: int, n_cores: int, n_threads: int, tick: int | None = None
) -> None:
    """Emit one compute-phase sub-span per modelled OpenMP thread.

    Mirrors :func:`sanitize_thread_writes`: the same static
    :func:`partition_cores` slices the race detector checks are what the
    trace shows, one span per thread on the rank's track with the core
    range as attributes.  Threads with empty slices emit nothing.
    """
    for t, span in enumerate(partition_cores(n_cores, n_threads)):
        if span.stop > span.start:
            tracer.span(
                "omp-thread",
                rank=rank,
                phase="compute",
                tick=tick,
                thread=t,
                cat="threads",
                core_lo=span.start,
                core_hi=span.stop,
            )


def straggler_team_factor(
    n_threads: int, slow_factor: float, n_stragglers: int = 1
) -> float:
    """Team-completion multiplier when some threads run ``slow_factor``× slow.

    Compass's OpenMP loops use the *static* uniform partition of
    :func:`partition_cores` — there is no work stealing (§III), so the
    team waits for its slowest member: any straggler at all stretches the
    phase by the straggler's own slowdown.  This is the compute-side hook
    of the fault-injection layer's ``StragglerThread`` events.
    """
    if n_threads <= 0:
        raise ValueError("n_threads must be positive")
    if slow_factor < 1.0:
        raise ValueError("slow_factor must be >= 1")
    if not 0 <= n_stragglers <= n_threads:
        raise ValueError("n_stragglers must be within [0, n_threads]")
    return slow_factor if n_stragglers > 0 else 1.0


def straggler_idle_fraction(
    n_threads: int, slow_factor: float, n_stragglers: int = 1
) -> float:
    """Fraction of the team's capacity wasted waiting on stragglers.

    The ``n_threads - n_stragglers`` healthy threads finish their static
    slices after ``1/slow_factor`` of the stretched phase and then idle —
    the capacity the recovery report attributes to straggler faults.
    """
    factor = straggler_team_factor(n_threads, slow_factor, n_stragglers)
    if factor == 1.0:
        return 0.0
    healthy = n_threads - n_stragglers
    return healthy * (factor - 1.0) / (n_threads * factor)


def load_imbalance(costs_per_core: np.ndarray, n_threads: int) -> float:
    """Max/mean thread load for a contiguous uniform partition.

    1.0 means perfectly balanced; the paper attributes part of the weak
    scaling run-time growth to "computation and communication imbalances in
    the functional regions of the CoCoMac model" (§VI-B).
    """
    costs = np.asarray(costs_per_core, dtype=float)
    parts = partition_cores(costs.size, n_threads)
    loads = np.array([costs[p.start : p.stop].sum() for p in parts])
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
