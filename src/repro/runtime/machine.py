"""Machine descriptions: Blue Gene/Q and Blue Gene/P.

§VI-A: each Blue Gene/Q node has a 17-core CPU (16 application cores, up to
4 hardware threads each) and 16 GB of memory, connected in a 5-D torus with
ten bidirectional 2 GB/s links; a rack is 1024 nodes, and the full system is
16 racks = 16384 nodes = 262144 application CPUs.  §VII: each Blue Gene/P
node has 4 CPUs and 4 GB, in a 3-D torus; four racks = 4096 nodes = 16384
CPUs.

Each spec carries a calibrated :class:`~repro.runtime.timing.CostModel`.
Calibration strategy (see DESIGN.md §7): constants are set once from the
paper's absolute anchors — the 324 s strong-scaling baseline (32 M cores on
one rack), the ~194 s weak-scaling endpoint, and the 81K-core real-time
point on Blue Gene/P — and everything else is left to emerge from the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.timing import CostModel
from repro.runtime.threads import effective_threads
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one supercomputer model."""

    name: str
    cpu_cores_per_node: int  #: application cores per node
    hw_threads_per_core: int
    memory_per_node: int  #: bytes
    nodes_per_rack: int
    torus_dims: int  #: dimensionality of the torus interconnect
    link_bandwidth: float  #: bytes/second per link
    links_per_node: int
    cost: CostModel

    def nodes_for_racks(self, racks: int) -> int:
        check_positive("racks", racks)
        return racks * self.nodes_per_rack

    def cpus_for_racks(self, racks: int) -> int:
        return self.nodes_for_racks(racks) * self.cpu_cores_per_node

    @property
    def max_threads_per_node(self) -> int:
        return self.cpu_cores_per_node * self.hw_threads_per_core


#: Blue Gene/Q (§VI-A).  Compute constants calibrated against Fig 5's one-rack
#: baseline (324 s for 32 M cores / 500 ticks) and Fig 4(a)'s endpoint.
BLUE_GENE_Q = MachineSpec(
    name="BlueGene/Q",
    cpu_cores_per_node=16,
    hw_threads_per_core=4,
    memory_per_node=16 * 2**30,
    nodes_per_rack=1024,
    torus_dims=5,
    link_bandwidth=2e9,
    links_per_node=10,
    cost=CostModel(
        c_axon=8.0e-6,
        c_neuron=3.0e-7,
        c_spike_local=2.0e-6,
        c_spike_pack=1.0e-6,
        c_spike_unpack=1.0e-6,
        msg_overhead=5.0e-6,
        c_crit=2.5e-5,
        rs_alpha=2.0e-5,
        rs_beta_per_rank=1.5e-6,
        put_overhead=2.0e-6,
        barrier_alpha=5.0e-6,
        barrier_beta_log=2.0e-6,
        node_bandwidth=2e9,
        cache_bytes=32 * 2**20,
        dram_factor=3.0,
    ),
)

#: Blue Gene/P (§VII).  Calibrated against Fig 7's real-time point: 81K cores
#: at 1000 ticks/second under PGAS on four racks, with MPI 2.1× slower.
BLUE_GENE_P = MachineSpec(
    name="BlueGene/P",
    cpu_cores_per_node=4,
    hw_threads_per_core=1,
    memory_per_node=4 * 2**30,
    nodes_per_rack=1024,
    torus_dims=3,
    link_bandwidth=4.25e8,
    links_per_node=6,
    cost=CostModel(
        c_axon=3.0e-6,
        c_neuron=5.5e-7,
        c_spike_local=1.0e-6,
        c_spike_pack=8.0e-7,
        c_spike_unpack=8.0e-7,
        msg_overhead=1.0e-5,
        c_crit=3.0e-5,
        rs_alpha=5.0e-5,
        rs_beta_per_rank=2.0e-7,
        put_overhead=1.2e-5,
        barrier_alpha=2.0e-5,
        barrier_beta_log=2.0e-6,
        node_bandwidth=4.25e8 * 3,
        cache_bytes=8 * 2**20,
        dram_factor=3.0,
    ),
)


@dataclass(frozen=True)
class MachineConfig:
    """One concrete run configuration: machine + job geometry.

    Mirrors the paper's run descriptions, e.g. "one MPI process per node
    and 32 OpenMP threads per MPI process" on N nodes.
    """

    machine: MachineSpec
    nodes: int
    procs_per_node: int = 1
    threads_per_proc: int = 32

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_positive("procs_per_node", self.procs_per_node)
        check_positive("threads_per_proc", self.threads_per_proc)
        total_threads = self.procs_per_node * self.threads_per_proc
        if total_threads > self.machine.max_threads_per_node:
            raise ValueError(
                f"{total_threads} threads/node exceeds hardware maximum "
                f"{self.machine.max_threads_per_node} on {self.machine.name}"
            )

    @property
    def n_processes(self) -> int:
        return self.nodes * self.procs_per_node

    @property
    def effective_threads(self) -> float:
        """Effective parallelism of one process's OpenMP team."""
        cores_per_proc = self.machine.cpu_cores_per_node / self.procs_per_node
        return effective_threads(self.threads_per_proc, max(int(cores_per_proc), 1))

    @property
    def racks(self) -> float:
        return self.nodes / self.machine.nodes_per_rack

    def describe(self) -> str:
        return (
            f"{self.machine.name}: {self.nodes} nodes "
            f"({self.racks:g} racks), {self.procs_per_node} proc/node x "
            f"{self.threads_per_proc} threads"
        )
