"""Simulated PGAS (UPC/GASNet-style) one-sided communication layer (§VII).

Each process owns a globally addressable spike window.  During a tick any
process may ``put`` a spike batch directly into a remote window — no
receive-side matching, no tags, no critical section.  A global barrier
separates the write epoch from the read epoch; after the barrier each
process drains its own window locally.

The paper's insight (§VII-A): because the source and ordering of spikes
arriving at an axon do not affect the next tick's computation, one-sided
insertion into remote buffers is sufficient — and it removes both the
send-buffer staging and the Reduce-Scatter that the MPI version needs to
learn its incoming message count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import CommunicationError


@dataclass
class PgasCounters:
    """Cumulative one-sided traffic counters for one rank."""

    puts: int = 0
    bytes_put: int = 0
    barriers: int = 0


class PgasCluster:
    """A set of ranks with globally addressable per-rank spike windows."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.windows: list[list[Any]] = [[] for _ in range(n_ranks)]
        self.counters = [PgasCounters() for _ in range(n_ranks)]
        #: Optional :class:`repro.obs.SpanTracer` — when set, puts and
        #: barrier arrivals emit instants on the simulated timeline.
        self.tracer: Any = None
        self._epoch = 0
        self._arrived: set[int] = set()
        self.endpoints = [PgasEndpoint(self, r) for r in range(n_ranks)]

    @property
    def epoch(self) -> int:
        return self._epoch

    def put(self, source: int, dest: int, payload: Any, nbytes: int) -> None:
        if not 0 <= dest < self.n_ranks:
            raise CommunicationError(f"put to invalid rank {dest}")
        self.windows[dest].append(payload)
        c = self.counters[source]
        c.puts += 1
        c.bytes_put += nbytes
        if self.tracer is not None:
            self.tracer.instant(
                "pgas.put",
                rank=source,
                cat="net",
                dest=dest,
                bytes=nbytes,
                window_depth=len(self.windows[dest]),
            )

    def barrier_arrive(self, rank: int) -> None:
        if rank in self._arrived:
            raise CommunicationError(f"rank {rank} entered the barrier twice")
        self._arrived.add(rank)
        if self.tracer is not None:
            self.tracer.instant(
                "pgas.barrier", rank=rank, phase="sync", cat="net", epoch=self._epoch
            )
        if len(self._arrived) == self.n_ranks:
            self._arrived.clear()
            self._epoch += 1
            for c in self.counters:
                c.barriers += 1

    def drain_window(self, rank: int) -> list[Any]:
        batch = self.windows[rank]
        self.windows[rank] = []
        return batch


@dataclass
class PgasEndpoint:
    """Per-rank face of the PGAS cluster."""

    cluster: PgasCluster
    rank: int
    _last_epoch: int = field(default=0, repr=False)

    @property
    def size(self) -> int:
        return self.cluster.n_ranks

    def put(self, dest: int, payload: Any, nbytes: int) -> None:
        """One-sided insertion into a remote rank's spike window."""
        self.cluster.put(self.rank, dest, payload, nbytes)

    def barrier(self) -> None:
        """Arrive at the global barrier (driver completes it in lock-step)."""
        self.cluster.barrier_arrive(self.rank)

    def read_window(self) -> list[Any]:
        """Drain this rank's own window (read epoch)."""
        return self.cluster.drain_window(self.rank)
