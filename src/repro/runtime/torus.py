"""Torus interconnect topology.

Blue Gene/Q connects nodes in a five-dimensional torus (§VI-A); Blue Gene/P
uses a three-dimensional torus.  The simulator uses the topology for hop
counts (latency sanity checks) and for the bandwidth argument of §VI-B
(per-tick spike volume vs per-link bandwidth).
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import check_positive


def dims_for_nodes(n_nodes: int, n_dims: int) -> tuple[int, ...]:
    """Choose near-cubic torus dimensions whose product is ``n_nodes``.

    Factorises greedily: repeatedly split the largest remaining factor.
    Always returns exactly ``n_dims`` dimensions (padding with 1s when the
    node count has too few factors).
    """
    check_positive("n_nodes", n_nodes)
    check_positive("n_dims", n_dims)
    dims = [n_nodes]
    while len(dims) < n_dims:
        dims.sort(reverse=True)
        head = dims[0]
        split = _largest_divisor_at_most(head, int(math.isqrt(head)))
        if split == 1:
            dims.append(1)
            continue
        dims[0] = head // split
        dims.append(split)
    dims.sort(reverse=True)
    return tuple(dims)


def _largest_divisor_at_most(n: int, bound: int) -> int:
    for d in range(min(bound, n), 0, -1):
        if n % d == 0:
            return d
    return 1


class TorusTopology:
    """A wrap-around grid of nodes with shortest-path hop metrics."""

    def __init__(self, dims: tuple[int, ...]) -> None:
        if not dims or any(d <= 0 for d in dims):
            raise ValueError(f"invalid torus dims {dims}")
        self.dims = tuple(int(d) for d in dims)
        self.n_nodes = int(np.prod(self.dims))
        self._strides = np.array(
            [int(np.prod(self.dims[i + 1 :])) for i in range(len(self.dims))],
            dtype=np.int64,
        )

    @classmethod
    def for_nodes(cls, n_nodes: int, n_dims: int) -> "TorusTopology":
        return cls(dims_for_nodes(n_nodes, n_dims))

    def coords(self, node: int | np.ndarray) -> np.ndarray:
        """Node id(s) → coordinate array of shape (..., n_dims)."""
        node = np.asarray(node, dtype=np.int64)
        out = np.empty(node.shape + (len(self.dims),), dtype=np.int64)
        rem = node
        for i, d in enumerate(self.dims):
            out[..., i] = (rem // self._strides[i]) % d
        return out

    def node_id(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.int64)
        return (coords * self._strides).sum(axis=-1)

    def hops(self, a: int | np.ndarray, b: int | np.ndarray) -> np.ndarray:
        """Shortest wrap-around (Manhattan-on-torus) distance."""
        ca, cb = self.coords(a), self.coords(b)
        diff = np.abs(ca - cb)
        wrap = np.array(self.dims) - diff
        return np.minimum(diff, wrap).sum(axis=-1)

    def route_dims(self, a: int, b: int) -> tuple[int, ...]:
        """Dimensions a minimal dimension-ordered route a→b traverses.

        A pair communicates across dimension *d* iff its coordinates
        differ there — the hook the fault-injection layer uses to decide
        whether a degraded link lies on a route.
        """
        ca, cb = self.coords(a), self.coords(b)
        return tuple(int(d) for d in np.nonzero(ca != cb)[0])

    def fraction_crossing(self, dim: int) -> float:
        """Probability a uniform-random node pair routes across ``dim``.

        Two uniform nodes share a coordinate in a dimension of size *s*
        with probability 1/s, so a degraded dimension slows this fraction
        of the machine's pairwise traffic — the weight
        :meth:`repro.resilience.faults.FaultInjector.network_factor`
        applies to a link-degradation fault.
        """
        if not 0 <= dim < len(self.dims):
            raise ValueError(f"dimension {dim} outside torus {self.dims}")
        return 1.0 - 1.0 / self.dims[dim]

    def mean_hops(self) -> float:
        """Expected hop count between two uniformly random nodes."""
        total = 0.0
        for d in self.dims:
            # mean per-dimension torus distance for uniform endpoints
            k = np.arange(d)
            dist = np.minimum(k, d - k)
            total += dist.mean()
        return float(total)

    def diameter(self) -> int:
        return int(sum(d // 2 for d in self.dims))

    def bisection_links(self) -> int:
        """Links crossing a bisection along the largest dimension."""
        longest = max(self.dims)
        cross_section = self.n_nodes // longest
        return 2 * cross_section  # torus wrap gives two cut planes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TorusTopology(dims={self.dims})"
