"""Per-rank mailboxes for the simulated two-sided messaging layer."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CommunicationError

#: Wildcards matching MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """One in-flight message: envelope plus payload.

    ``seq`` is a cluster-wide delivery sequence number assigned by the
    sending side; the race detector uses it to associate a message with
    the sender's vector-clock snapshot.  ``-1`` means unsequenced
    (no sanitizer installed).

    ``checksum`` is an end-to-end payload digest stamped at send time
    when fault injection is active (``-1`` otherwise); the receive side
    re-computes it to detect injected corruption.  ``duplicate`` marks
    the extra copy produced by a link-retransmission fault so the
    transport's dedup pass can discard whichever copy survives the tick.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    seq: int = -1
    checksum: int = -1
    duplicate: bool = False


@dataclass
class Mailbox:
    """FIFO of delivered messages for one rank.

    Matching follows MPI semantics: ``probe``/``pop`` return the *earliest*
    message whose (source, tag) matches, so per-pair ordering is preserved
    while unrelated pairs can interleave.

    An optional ``observer`` (duck-typed; see
    :class:`repro.check.races.HappensBeforeDetector`) is notified of every
    delivery and removal, giving the sanitizer a complete event stream
    without the mailbox knowing anything about vector clocks.

    An optional ``tracer`` (:class:`repro.obs.SpanTracer`) additionally
    records each delivery as an instant on the destination rank's trace
    track, including the post-delivery queue depth.
    """

    rank: int
    _queue: deque[Message] = field(default_factory=deque)
    observer: Any = None
    tracer: Any = None

    def deliver(self, message: Message) -> None:
        if message.dest != self.rank:
            raise CommunicationError(
                f"message for rank {message.dest} delivered to mailbox {self.rank}"
            )
        self._queue.append(message)
        if self.observer is not None:
            self.observer.on_mailbox_deliver(self.rank, message)
        if self.tracer is not None:
            self.tracer.instant(
                "mailbox.deliver",
                rank=self.rank,
                cat="net",
                src=message.source,
                bytes=message.nbytes,
                depth=len(self._queue),
                dup=message.duplicate,
            )

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Return (without removing) the first matching message, if any."""
        for msg in self._queue:
            if self._matches(msg, source, tag):
                return msg
        return None

    def matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> list[Message]:
        """Every queued message the (source, tag) filter matches, in order.

        This is the wildcard-receive *candidate set*: when it holds
        concurrent messages from distinct sources, which one ``pop``
        returns is an accident of delivery order.
        """
        return [m for m in self._queue if self._matches(m, source, tag)]

    def pop(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Remove and return the first matching message."""
        for i, msg in enumerate(self._queue):
            if self._matches(msg, source, tag):
                del self._queue[i]
                if self.observer is not None:
                    self.observer.on_mailbox_pop(self.rank, msg)
                return msg
        raise CommunicationError(
            f"rank {self.rank}: no message matching source={source} tag={tag}"
        )

    @staticmethod
    def _matches(msg: Message, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, msg.source)) and (tag in (ANY_TAG, msg.tag))

    def purge(self, predicate) -> int:
        """Remove every queued message matching ``predicate``; return count.

        Used by the fault-injection layer: a crashed rank's in-flight
        traffic vanishes with the node, and duplicate copies left behind
        after the tick's receive loop are discarded by the transport's
        dedup pass.  The observer is *not* notified — these removals model
        the network, not an application receive.
        """
        kept = deque(m for m in self._queue if not predicate(m))
        removed = len(self._queue) - len(kept)
        self._queue = kept
        return removed

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()
