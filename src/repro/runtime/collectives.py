"""Collective-algorithm cost derivations.

The calibrated cost model charges ``rs_alpha + rs_beta · P`` for the
Network phase's Reduce-Scatter (§VI-B observes its cost grows with
communicator size).  This module *derives* that shape from the standard
algorithms, rather than asserting it:

* Compass reduce-scatters a length-``P`` **vector of message counts** —
  one integer per destination rank (Listing 1).  The payload therefore
  grows linearly with the communicator, so even the bandwidth-optimal
  recursive-halving algorithm moves ``(P-1)/P × P·s ≈ P·s`` bytes per
  rank: a linear-in-P term with a log-P latency term on top.
* The PGAS barrier carries no payload: a dissemination barrier is
  ``ceil(log2 P)`` rounds of constant-size messages — the log-P shape
  charged by ``barrier_time``.

`validate_against` quantifies how well the calibrated constants agree
with the derivation over a range of communicator sizes.

Also here: :func:`collective_merge`, the happens-before semantics of the
collectives themselves.  A Reduce-Scatter (or a barrier) is an
all-to-all fence: every participant's post-collective state causally
depends on *every* contribution, so a participant's clock after the
collective is the componentwise maximum over all contributed clocks.
The race detector (:mod:`repro.check.races`) leans on this to order
events across ticks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime.timing import CostModel


def reduce_scatter_recursive_halving(
    ranks: int,
    element_bytes: float,
    latency: float,
    bandwidth: float,
    compute_per_element: float = 0.0,
) -> float:
    """Per-rank time of recursive-halving reduce-scatter on a P-vector.

    Round *k* (k = 1..log2 P) exchanges a vector half of ``P/2^k``
    elements and reduces it.  Total data ≈ ``(P-1) · element_bytes``:
    linear in P, which is the §VI-B growth.
    """
    if ranks < 1:
        raise ValueError("ranks must be positive")
    if ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(ranks))
    total = 0.0
    remaining = ranks
    for _ in range(rounds):
        half = remaining / 2.0
        total += latency + half * element_bytes / bandwidth
        total += half * compute_per_element
        remaining = half
    return total


def dissemination_barrier(
    ranks: int, latency: float, message_bytes: float = 8.0, bandwidth: float = 1e9
) -> float:
    """Per-rank time of a dissemination barrier: ceil(log2 P) rounds."""
    if ranks < 1:
        raise ValueError("ranks must be positive")
    if ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(ranks))
    return rounds * (latency + message_bytes / bandwidth)


def heartbeat_allreduce_time(
    ranks: int,
    latency: float = 2e-6,
    message_bytes: float = 8.0,
    bandwidth: float = 1e9,
) -> float:
    """Per-tick cost of the liveness allreduce the failure detector rides.

    Heartbeats piggyback on the tick collective: each rank contributes one
    alive-bitmask word, combined in ``ceil(log2 P)`` recursive-doubling
    rounds of constant payload — the same shape as the dissemination
    barrier, which is exactly what we charge.  This is the steady-state
    overhead of failure *detection* (the fault-free cost of resilience);
    the detector adds it to every simulated tick it monitors.
    """
    return dissemination_barrier(ranks, latency, message_bytes, bandwidth)


def phase_timeout(expected_time: float, slack_factor: float = 4.0) -> float:
    """Deadline for one phase of the semi-synchronous tick loop.

    A rank that has not completed a phase within ``slack_factor`` times
    the modelled phase time is declared failed — the per-phase timeout
    that turns a silent hang of the real machine into a
    :class:`repro.errors.RankFailureError` in simulated time.
    """
    if expected_time < 0:
        raise ValueError("expected_time must be non-negative")
    if slack_factor < 1.0:
        raise ValueError("slack_factor must be >= 1")
    return expected_time * slack_factor


def modelled_sync_cost(backend: str, ranks: int) -> float:
    """Derived per-tick cost (seconds) of the backend's sync collective.

    The observability layer attaches this to every ``sync`` span: the MPI
    backend's Reduce-Scatter is charged with the recursive-halving
    derivation, the PGAS barrier with the dissemination barrier.  Pure
    function of (backend, communicator size), so the attribute — like
    every other trace field — is bit-deterministic.
    """
    if ranks < 1:
        raise ValueError("ranks must be positive")
    if backend == "pgas":
        return dissemination_barrier(ranks, latency=2e-6)
    return reduce_scatter_recursive_halving(
        ranks, element_bytes=8.0, latency=2e-6, bandwidth=1.8e9
    )


def collective_merge(clocks) -> dict[str, int]:
    """Componentwise maximum over an iterable of vector clocks.

    ``clocks`` may yield any objects with ``.items()`` (mappings or
    :class:`repro.check.races.VectorClock` instances).  The result is the
    clock every participant holds immediately after an all-to-all
    collective completes — the fence edge of the happens-before graph.
    """
    merged: dict[str, int] = {}
    for clock in clocks:
        for actor, t in clock.items():
            if t > merged.get(actor, 0):
                merged[actor] = t
    return merged


def fit_linear(ranks: np.ndarray, times: np.ndarray) -> tuple[float, float]:
    """Least-squares (alpha, beta) for ``time = alpha + beta * ranks``."""
    ranks = np.asarray(ranks, dtype=float)
    times = np.asarray(times, dtype=float)
    a = np.vstack([np.ones_like(ranks), ranks]).T
    coef, *_ = np.linalg.lstsq(a, times, rcond=None)
    return float(coef[0]), float(coef[1])


def validate_against(
    cost: CostModel,
    # Large communicators, where the payload term dominates the per-round
    # latency in both models and the shapes are comparable like-for-like.
    ranks: tuple[int, ...] = (8192, 16384, 32768, 65536),
    element_bytes: float = 8.0,
    latency: float = 2e-6,
    bandwidth: float = 1.8e9,
) -> dict[str, float]:
    """Compare the calibrated linear RS model against the derivation.

    Two results:

    * **shape agreement** — the derived time per rank is fitted as
      ``alpha + beta·P``; if the calibrated model has the same shape, the
      growth ratios between consecutive sizes agree (reported as the
      worst ratio mismatch);
    * **implied overhead** — the calibrated ``rs_beta_per_rank`` divided
      by the pure wire cost per vector element.  Real MPI reductions pay
      software per-element costs (memory traffic, op dispatch, internal
      pipelining) far above wire time; the factor quantifies what the
      calibration attributes to software.
    """
    ranks_arr = np.array(ranks, dtype=float)
    derived = np.array(
        [
            reduce_scatter_recursive_halving(p, element_bytes, latency, bandwidth)
            for p in ranks
        ]
    )
    alpha, beta = fit_linear(ranks_arr, derived)
    calibrated = np.array([cost.reduce_scatter_time(p) for p in ranks])
    derived_growth = derived[1:] / derived[:-1]
    calibrated_growth = calibrated[1:] / calibrated[:-1]
    shape_mismatch = float(
        np.abs(calibrated_growth / derived_growth - 1.0).max()
    )
    wire_per_element = element_bytes / bandwidth
    return {
        "derived_alpha": alpha,
        "derived_beta": beta,
        "shape_mismatch": shape_mismatch,
        "implied_software_overhead": cost.rs_beta_per_rank / wire_per_element,
    }
