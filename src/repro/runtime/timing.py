"""Per-phase cost model: event counts → simulated wall-clock seconds.

The functional simulator is exact; *time* on the target machine is modelled
with a small set of per-machine constants.  The terms follow the paper's own
accounting of where time goes (§III, §VI, §VII):

Synapse phase
    ``active_axons × c_axon / threads`` — each due axon walks one crossbar
    row and scatters into per-neuron accumulators.

Neuron phase
    ``neurons × c_neuron / threads`` — every neuron integrates, leaks, and
    possibly fires every tick, plus ``remote_spikes × c_spike_pack`` for
    aggregation into per-destination send buffers, plus one ``msg_overhead``
    per posted MPI message (the master thread's ``MPI_Isend`` calls).

Network phase (MPI backend)
    ``max(reduce_scatter, local_delivery)`` — Compass overlaps the master
    thread's Reduce-Scatter with local spike delivery by the other threads
    (§III) — followed by the receive loop: a per-message critical section
    (``MPI_Iprobe``/``Recv`` under a lock, §III/[23]) that serialises
    across threads, plus unpack/delivery work and wire transfer time.

Network phase (PGAS backend)
    One-sided puts (``puts × put_overhead + bytes/bandwidth``) plus a global
    barrier that costs ``barrier_alpha + barrier_beta_log × log2(P)`` —
    replacing the Reduce-Scatter whose cost grows with communicator size
    (§VII-A).

Memory hierarchy
    Compute constants are calibrated for a cache-resident working set; when
    a process's simulation state exceeds the node's last-level cache the
    sweep becomes DRAM-bound and compute costs inflate by ``dram_factor``.
    This one mechanism reconciles the paper's two operating points: the
    huge Blue Gene/Q models (tens of GB per node, ~194 s / 500 ticks) and
    the tiny cache-resident Blue Gene/P real-time models (1 ms per tick).

Threads are the *effective* thread count of
:func:`repro.runtime.threads.effective_threads`, which models SMT yield and
the false-sharing penalty the paper reports for wide shared-memory regions
(§VI-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Calibrated cost constants for one machine (seconds per event)."""

    #: Per active axon: read buffer bit, walk one 256-synapse crossbar row.
    c_axon: float
    #: Per neuron per tick: integrate-leak-fire state update.
    c_neuron: float
    #: Per locally delivered spike (shared-memory write into an axon buffer).
    c_spike_local: float
    #: Per remote spike: aggregation copy into a send buffer.
    c_spike_pack: float
    #: Per received spike: unpack and deliver into an axon buffer.
    c_spike_unpack: float
    #: Per posted MPI message (Isend descriptor + matching overhead).
    msg_overhead: float
    #: Per received MPI message inside the thread-safety critical section.
    c_crit: float
    #: Reduce-Scatter: base latency.
    rs_alpha: float
    #: Reduce-Scatter: additional cost per rank in the communicator.
    rs_beta_per_rank: float
    #: Per one-sided PGAS put (GASNet short-message overhead).
    put_overhead: float
    #: Global barrier: base latency.
    barrier_alpha: float
    #: Global barrier: additional cost per log2(ranks) stage.
    barrier_beta_log: float
    #: Node injection bandwidth available to spike traffic (bytes/second).
    node_bandwidth: float
    #: Last-level cache per node; working sets beyond it are DRAM-bound.
    cache_bytes: float = 32 * 2**20
    #: Compute-cost inflation when the working set spills to DRAM.
    dram_factor: float = 3.0

    # -- memory hierarchy ------------------------------------------------------

    def memory_factor(self, working_set_bytes: float) -> float:
        """Compute-cost multiplier for a given per-process working set.

        Ramps linearly from 1 (fits in cache) to ``dram_factor`` (≥ 8× the
        cache) so small config changes do not produce cliff artefacts.
        """
        if working_set_bytes <= self.cache_bytes:
            return 1.0
        ratio = working_set_bytes / self.cache_bytes
        blend = min(1.0, math.log2(ratio))  # saturates at 2x cache
        return 1.0 + (self.dram_factor - 1.0) * blend

    # -- phase costs -----------------------------------------------------------

    def synapse_time(
        self, active_axons: float, threads: float, mem_factor: float = 1.0
    ) -> float:
        """Synapse phase seconds for one process-tick."""
        return active_axons * self.c_axon * mem_factor / max(threads, 1.0)

    def neuron_time(
        self,
        neurons: float,
        threads: float,
        remote_spikes: float = 0.0,
        messages_sent: float = 0.0,
        mem_factor: float = 1.0,
    ) -> float:
        """Neuron phase seconds: ILF sweep + remote aggregation + Isends."""
        ilf = neurons * self.c_neuron * mem_factor / max(threads, 1.0)
        pack = remote_spikes * self.c_spike_pack / max(threads, 1.0)
        sends = messages_sent * self.msg_overhead  # master thread only
        return ilf + pack + sends

    def reduce_scatter_time(self, ranks: int) -> float:
        """MPI_Reduce_scatter on a communicator of ``ranks`` processes."""
        return self.rs_alpha + self.rs_beta_per_rank * max(ranks, 1)

    def barrier_time(self, ranks: int) -> float:
        """PGAS global barrier (tree-structured, DCMF-native)."""
        return self.barrier_alpha + self.barrier_beta_log * math.log2(max(ranks, 2))

    def wire_time(self, n_bytes: float) -> float:
        """Serial transfer time of payloads at node injection bandwidth."""
        return n_bytes / self.node_bandwidth

    def network_time_mpi(
        self,
        ranks: int,
        local_spikes: float,
        messages_received: float,
        spikes_received: float,
        bytes_received: float,
        threads: float,
        mem_factor: float = 1.0,
        overlap: bool = True,
    ) -> float:
        """MPI Network phase seconds for one process-tick.

        Local delivery (non-master threads) overlaps the master thread's
        Reduce-Scatter (§III): the first term is the max of the two
        (``overlap=False`` serialises them — the ablation of that design
        choice).  The receive loop serialises on the per-message critical
        section but delivers spike payloads in parallel.
        """
        t = max(threads, 1.0)
        local = local_spikes * self.c_spike_local * mem_factor / max(t - 1.0, 1.0)
        rs = self.reduce_scatter_time(ranks)
        head = max(rs, local) if overlap else rs + local
        crit = messages_received * self.c_crit  # serialised across threads
        unpack = spikes_received * self.c_spike_unpack * mem_factor / t
        return head + crit + unpack + self.wire_time(bytes_received)

    def network_time_pgas(
        self,
        ranks: int,
        local_spikes: float,
        puts: float,
        spikes_received: float,
        bytes_sent: float,
        threads: float,
        mem_factor: float = 1.0,
    ) -> float:
        """PGAS Network phase seconds for one process-tick.

        Puts are one-sided (no receive-side matching, no critical section);
        a single global barrier separates the write and read epochs.
        """
        t = max(threads, 1.0)
        local = local_spikes * self.c_spike_local * mem_factor / t
        put_cost = puts * self.put_overhead + self.wire_time(bytes_sent)
        read = spikes_received * self.c_spike_unpack * mem_factor / t
        return local + put_cost + self.barrier_time(ranks) + read


def scale(model: CostModel, factor: float) -> CostModel:
    """Uniformly scale all latency constants (used in ablations)."""
    return CostModel(
        c_axon=model.c_axon * factor,
        c_neuron=model.c_neuron * factor,
        c_spike_local=model.c_spike_local * factor,
        c_spike_pack=model.c_spike_pack * factor,
        c_spike_unpack=model.c_spike_unpack * factor,
        msg_overhead=model.msg_overhead * factor,
        c_crit=model.c_crit * factor,
        rs_alpha=model.rs_alpha * factor,
        rs_beta_per_rank=model.rs_beta_per_rank * factor,
        put_overhead=model.put_overhead * factor,
        barrier_alpha=model.barrier_alpha * factor,
        barrier_beta_log=model.barrier_beta_log * factor,
        node_bandwidth=model.node_bandwidth / factor,
        cache_bytes=model.cache_bytes,
        dram_factor=model.dram_factor,
    )
