"""Simulated two-sided MPI, exposing exactly the primitives of Listing 1.

The Compass main loop uses: ``MPI_Isend`` (aggregated spike buffers),
``MPI_Reduce_scatter`` (each rank learns how many messages to expect),
and an ``MPI_Iprobe``/``MPI_Get_count``/``MPI_Recv`` loop inside a critical
section.  :class:`VirtualMpiCluster` reproduces those semantics
deterministically in one OS process:

* messages are delivered to destination mailboxes immediately on send —
  valid because Compass is semi-synchronous: no rank receives before the
  collective, which itself globally orders the tick;
* ``reduce_scatter`` follows MPI semantics for ``MPI_Reduce_scatter_block``
  with one integer per rank: every rank contributes a length-P count
  vector, and rank *i* receives the sum of entry *i* over all ranks;
* per-rank traffic counters feed the metrics used by Fig 4(b).

The cluster also detects collective misuse (a rank contributing twice, or
reading a result before all ranks contributed), which turns subtle
deadlocks of the real library into immediate errors.

Passing ``sanitizer=`` (a
:class:`repro.check.races.HappensBeforeDetector`) instruments every
``send``/``isend``/``iprobe``/``recv`` and both collective halves with
happens-before bookkeeping: messages get cluster-wide sequence numbers,
wildcard receives are checked against their candidate sets, and the
Reduce-Scatter acts as the vector-clock fence.  Receive sites whose
payload consumption is order-insensitive (bitwise-OR spike delivery,
§VII-A) pass ``commutative=True`` to opt out of the wildcard check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import (
    CommunicationError,
    MessageCorruptionError,
    RankFailureError,
)
from repro.runtime.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message


@dataclass
class TrafficCounters:
    """Cumulative communication counters for one rank."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    reduce_scatters: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "reduce_scatters": self.reduce_scatters,
        }


class VirtualMpiCluster:
    """A deterministic in-process cluster of ``n_ranks`` MPI endpoints."""

    def __init__(self, n_ranks: int, sanitizer: Any = None) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.sanitizer = sanitizer
        #: Optional :class:`repro.resilience.faults.FaultInjector` — when
        #: set, every send consults it for drop/duplicate/corrupt actions
        #: and payloads are checksummed end to end.
        self.injector: Any = None
        #: Ranks whose simulated node has crashed (fault injection).
        self.dead: set[int] = set()
        #: Optional :class:`repro.obs.SpanTracer` — when set, every send,
        #: receive, probe, and collective half emits an instant event on
        #: the simulated timeline.  ``None`` keeps the hot path untouched.
        self.tracer: Any = None
        self.mailboxes = [Mailbox(r, observer=sanitizer) for r in range(n_ranks)]
        self.counters = [TrafficCounters() for _ in range(n_ranks)]
        self._rs_contributions: dict[int, np.ndarray] = {}
        self._next_seq = 0
        self.endpoints = [MpiEndpoint(self, r) for r in range(n_ranks)]

    # -- fault injection ------------------------------------------------------

    def fail_rank(self, rank: int) -> None:
        """Crash ``rank``: it stops participating and its mailbox is lost."""
        if not 0 <= rank < self.n_ranks:
            raise CommunicationError(f"cannot fail invalid rank {rank}")
        self.dead.add(rank)
        self.mailboxes[rank].clear()

    def revive_rank(self, rank: int) -> None:
        """The node hosting ``rank`` rejoins (reboot or spare takeover)."""
        self.dead.discard(rank)

    def reset_communication(self) -> None:
        """Drop all in-flight state so a restored tick starts clean.

        Called by the recovery driver after a mid-tick failure: partially
        delivered messages and partial collective contributions belong to
        the abandoned tick and must not leak into the replay.
        """
        for mb in self.mailboxes:
            mb.clear()
        self._rs_contributions.clear()

    # -- point to point ------------------------------------------------------

    def send(self, source: int, dest: int, tag: int, payload: Any, nbytes: int) -> None:
        if not 0 <= dest < self.n_ranks:
            raise CommunicationError(f"send to invalid rank {dest}")
        if source in self.dead:
            raise RankFailureError(
                f"rank {source} crashed before posting its sends",
                ranks=(source,),
            )
        seq = -1
        if self.sanitizer is not None:
            seq = self._next_seq
            self._next_seq += 1
            self.sanitizer.on_send(source, dest, tag, seq)
        action = None
        checksum = -1
        if self.injector is not None:
            action = self.injector.on_send(source, dest)
            checksum = self.injector.payload_checksum(payload)
            if action == "corrupt":
                payload = self.injector.corrupt(payload)
        c = self.counters[source]
        c.messages_sent += 1
        c.bytes_sent += nbytes
        if self.tracer is not None:
            self.tracer.instant(
                "mpi.isend", rank=source, cat="net", dest=dest, bytes=nbytes
            )
        if dest in self.dead or action == "drop":
            return  # the wire ate it; the count collective still promised it
        msg = Message(
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            seq=seq,
            checksum=checksum,
        )
        self.mailboxes[dest].deliver(msg)
        if action == "duplicate":
            self.mailboxes[dest].deliver(
                Message(
                    source=source,
                    dest=dest,
                    tag=tag,
                    payload=payload,
                    nbytes=nbytes,
                    seq=seq,
                    checksum=checksum,
                    duplicate=True,
                )
            )

    # -- collective ------------------------------------------------------------

    def reduce_scatter_contribute(self, rank: int, counts: np.ndarray) -> None:
        if rank in self.dead:
            # The per-phase timeout of the tick loop: live ranks block on
            # the collective until the dead rank's contribution times out.
            raise RankFailureError(
                f"rank {rank} crashed; tick collective timed out waiting "
                f"for dead ranks {sorted(self.dead)}",
                ranks=tuple(sorted(self.dead)),
            )
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_ranks,):
            raise CommunicationError(
                f"reduce_scatter counts must have shape ({self.n_ranks},)"
            )
        if rank in self._rs_contributions:
            raise CommunicationError(f"rank {rank} contributed twice to reduce_scatter")
        self._rs_contributions[rank] = counts.copy()
        if self.sanitizer is not None:
            self.sanitizer.on_collective_contribute(rank)
        if self.tracer is not None:
            self.tracer.instant(
                "mpi.reduce_scatter",
                rank=rank,
                phase="sync",
                cat="net",
                sent=int(counts.sum()),
            )

    def reduce_scatter_result(self, rank: int) -> int:
        if len(self._rs_contributions) != self.n_ranks:
            missing = set(range(self.n_ranks)) - set(self._rs_contributions)
            if missing <= self.dead:
                raise RankFailureError(
                    f"tick collective timed out; dead ranks "
                    f"{sorted(missing)[:8]} never contributed",
                    ranks=tuple(sorted(missing)),
                )
            raise CommunicationError(
                f"reduce_scatter incomplete; missing ranks {sorted(missing)[:8]}"
            )
        total = int(
            sum(self._rs_contributions[r][rank] for r in sorted(self._rs_contributions))
        )
        self.counters[rank].reduce_scatters += 1
        if self.sanitizer is not None:
            self.sanitizer.on_collective_fetch(rank)
        if self.tracer is not None:
            self.tracer.instant(
                "mpi.reduce_scatter.fetch",
                rank=rank,
                phase="sync",
                cat="net",
                expected=total,
            )
        return total

    def reduce_scatter_finish(self) -> None:
        """Reset collective state once every rank has read its result."""
        self._rs_contributions.clear()
        if self.sanitizer is not None:
            self.sanitizer.on_collective_finish()

    # -- introspection -----------------------------------------------------------

    def total_counters(self) -> TrafficCounters:
        agg = TrafficCounters()
        for c in self.counters:
            agg.messages_sent += c.messages_sent
            agg.messages_received += c.messages_received
            agg.bytes_sent += c.bytes_sent
            agg.bytes_received += c.bytes_received
            agg.reduce_scatters += c.reduce_scatters
        return agg

    def pending_messages(self) -> int:
        return sum(len(mb) for mb in self.mailboxes)


@dataclass
class MpiEndpoint:
    """The per-rank face of the cluster: Listing 1's MPI calls."""

    cluster: VirtualMpiCluster
    rank: int
    _rs_done: bool = field(default=False, repr=False)

    @property
    def size(self) -> int:
        return self.cluster.n_ranks

    def isend(self, dest: int, payload: Any, nbytes: int, tag: int = 0) -> None:
        """Non-blocking aggregated-buffer send (completes immediately here)."""
        self.cluster.send(self.rank, dest, tag, payload, nbytes)

    def reduce_scatter(self, send_counts: np.ndarray) -> int:
        """Contribute per-destination counts; learn own incoming count.

        Single-call convenience valid because the virtual cluster runs
        ranks in lock-step: contributions are staged and the result is read
        after the last rank contributes (the driver arranges this by
        calling :meth:`reduce_scatter` on every rank before any receive).
        """
        self.cluster.reduce_scatter_contribute(self.rank, send_counts)
        return -1  # result must be fetched after all ranks contributed

    def reduce_scatter_fetch(self) -> int:
        return self.cluster.reduce_scatter_result(self.rank)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        mailbox = self.cluster.mailboxes[self.rank]
        sanitizer = self.cluster.sanitizer
        if sanitizer is not None:
            sanitizer.on_iprobe(self.rank, source, tag, mailbox.matching(source, tag))
        hit = mailbox.probe(source, tag) is not None
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.instant("mpi.iprobe", rank=self.rank, cat="net", hit=hit)
        return hit

    def get_count(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> int:
        msg = self.cluster.mailboxes[self.rank].probe(source, tag)
        if msg is None:
            raise CommunicationError(f"rank {self.rank}: get_count with no message")
        return msg.nbytes

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        commutative: bool = False,
    ) -> Message:
        """Blocking receive.

        ``commutative=True`` asserts the caller consumes the payload in an
        order-insensitive way (Compass's bit-OR spike delivery), waiving
        the sanitizer's wildcard-order race check for this receive.
        """
        mailbox = self.cluster.mailboxes[self.rank]
        sanitizer = self.cluster.sanitizer
        candidates = (
            mailbox.matching(source, tag) if sanitizer is not None else ()
        )
        msg = mailbox.pop(source, tag)
        if sanitizer is not None:
            sanitizer.on_recv(self.rank, msg.seq, source, candidates, commutative)
        injector = self.cluster.injector
        if injector is not None and msg.checksum != -1:
            if injector.payload_checksum(msg.payload) != msg.checksum:
                raise MessageCorruptionError(
                    f"rank {self.rank}: payload from rank {msg.source} "
                    "failed its end-to-end checksum"
                )
        c = self.cluster.counters[self.rank]
        c.messages_received += 1
        c.bytes_received += msg.nbytes
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.instant(
                "mpi.recv", rank=self.rank, cat="net", src=msg.source, bytes=msg.nbytes
            )
        return msg

    def pending(self) -> int:
        return len(self.cluster.mailboxes[self.rank])
