"""The lint engine: walk source trees, apply determinism rules, report.

Usage::

    from repro.check.lint import run_lint
    report = run_lint(["src/repro"])
    for v in report.violations:
        print(v.format())

The engine decides per module whether it is **rank-visible** — on a
simulation path whose behaviour any rank can observe (``runtime``,
``core``, ``compiler``, ``arch``, ``cocomac``, ``util``, ``errors``) —
and applies the path-scoped rules (DET101–DET103) only there.  Analysis
and reporting layers (``apps``, ``perf``, ``analysis``, the CLI, and
this package itself) get the universal rules (DET104, DET105) only.
Files outside the ``repro`` package (e.g. lint-rule fixtures in tests)
are treated as rank-visible, i.e. checked at full strictness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.check.rules import ModuleContext, Rule, Violation, all_rules
from repro.errors import CheckInputError

#: Top-level ``repro`` members whose behaviour is *not* rank-visible:
#: they observe or present results but never feed simulation state.
_NON_RANK_VISIBLE = frozenset(
    {"apps", "perf", "analysis", "check", "cli.py", "version.py"}
)


def path_is_rank_visible(path: str | Path) -> bool:
    """Classify a module path; unknown paths default to strict (True)."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] not in _NON_RANK_VISIBLE
    return True


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` call."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [v.format() for v in self.violations]
        lines.append(
            f"{len(self.violations)} violation(s) in {self.files_checked} file(s)"
        )
        return "\n".join(lines)


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`~repro.errors.CheckInputError` naming the offending
    path when it does not exist or is not a python file or directory.
    """
    found: set[Path] = set()
    for p in paths:
        path = Path(p)
        if not path.exists():
            raise CheckInputError(f"no such file or directory: {path}")
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise CheckInputError(f"not a python file or directory: {path}")
    return sorted(found)


def read_source(path: Path) -> str:
    """Read one module's source, surfacing decode failures as typed
    errors with the offending path instead of a raw UnicodeDecodeError."""
    try:
        return Path(path).read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise CheckInputError(
            f"not valid UTF-8 (byte {exc.start}): {path}"
        ) from exc


def lint_source(
    source: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
    rank_visible: bool | None = None,
) -> list[Violation]:
    """Lint one module given as a source string (the testable core)."""
    if rank_visible is None:
        rank_visible = path_is_rank_visible(path)
    try:
        ctx = ModuleContext.from_source(path, source, rank_visible=rank_visible)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="DET100",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    violations: list[Violation] = []
    for rule in rules if rules is not None else all_rules():
        violations.extend(rule.run(ctx))
    return violations


def run_lint(paths, rules: list[Rule] | None = None) -> LintReport:
    """Lint every python file under ``paths`` with the given rules."""
    report = LintReport()
    rules = rules if rules is not None else all_rules()
    for path in iter_python_files(paths):
        report.violations.extend(
            lint_source(read_source(path), str(path), rules=rules)
        )
        report.files_checked += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return report
