"""Shared machine-readable output for the checkers (JSON + SARIF 2.1.0).

``repro check lint``, ``repro check races``, and ``repro check flow``
all speak the same three formats through this module, so one CI consumer
handles every checker:

* ``text`` — each checker's existing human format (unchanged default);
* ``json`` — a stable envelope ``{"tool", "version", "summary",
  "findings"}`` with findings sorted and keys sorted, so repeated runs
  of a deterministic checker are byte-identical;
* ``sarif`` — SARIF 2.1.0 (the GitHub code-scanning / IDE interchange
  format), with witness paths rendered as ``codeFlows`` and baseline
  status as ``baselineState``.

Findings are normalized into :class:`CheckResult` records first; the
serializers only ever see those, which is what keeps the three checkers'
output shapes identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.version import __version__

#: Output format names accepted by the ``--format`` CLI flag.
FORMATS = ("text", "json", "sarif")

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://github.com/compass-repro/compass-repro"


@dataclass(frozen=True)
class FlowStep:
    """One hop of a witness path, for SARIF codeFlows."""

    path: str
    line: int
    note: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class RuleMeta:
    """Metadata for one rule id, for the SARIF driver block."""

    rule_id: str
    name: str
    short_description: str


@dataclass(frozen=True)
class CheckResult:
    """One normalized finding from any checker."""

    rule_id: str
    message: str
    path: str = ""
    line: int = 0
    col: int = 0
    level: str = "error"  #: SARIF level: error | warning | note
    flow: tuple[FlowStep, ...] = ()
    fingerprint: str = ""
    baseline_state: str = ""  #: "" | "new" | "unchanged"
    extra: tuple[tuple[str, object], ...] = field(default=())

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def to_dict(self) -> dict:
        doc: dict = {
            "rule": self.rule_id,
            "level": self.level,
            "message": self.message,
        }
        if self.path:
            doc["path"] = self.path
            doc["line"] = self.line
            doc["col"] = self.col
        if self.flow:
            doc["witness"] = [s.to_dict() for s in self.flow]
        if self.fingerprint:
            doc["fingerprint"] = self.fingerprint
        if self.baseline_state:
            doc["baseline"] = self.baseline_state
        for key, value in self.extra:
            doc[key] = value
        return doc


def _dumps(doc: dict) -> str:
    """The one JSON encoder: sorted keys, fixed separators, newline at
    EOF — byte-identical output for identical findings."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def to_json(
    tool: str,
    results: list[CheckResult],
    summary: dict | None = None,
) -> str:
    ordered = sorted(results, key=lambda r: r.sort_key())
    doc = {
        "tool": tool,
        "version": __version__,
        "summary": dict(summary or {}),
        "findings": [r.to_dict() for r in ordered],
    }
    doc["summary"].setdefault("findings", len(ordered))
    return _dumps(doc)


def _sarif_location(path: str, line: int, col: int, note: str = "") -> dict:
    loc: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {
                "startLine": max(line, 1),
                "startColumn": max(col, 0) + 1,
            },
        }
    }
    if note:
        loc["message"] = {"text": note}
    return loc


def to_sarif(
    tool: str,
    rules: list[RuleMeta],
    results: list[CheckResult],
) -> str:
    ordered = sorted(results, key=lambda r: r.sort_key())
    used = {r.rule_id for r in ordered}
    driver_rules = [
        {
            "id": meta.rule_id,
            "name": meta.name,
            "shortDescription": {"text": meta.short_description},
        }
        for meta in sorted(rules, key=lambda m: m.rule_id)
        if meta.rule_id in used
    ]
    sarif_results = []
    for r in ordered:
        entry: dict = {
            "ruleId": r.rule_id,
            "level": r.level,
            "message": {"text": r.message},
        }
        if r.path:
            entry["locations"] = [_sarif_location(r.path, r.line, r.col)]
        if r.fingerprint:
            entry["partialFingerprints"] = {"reproFlow/v1": r.fingerprint}
        if r.baseline_state:
            entry["baselineState"] = r.baseline_state
        if r.flow:
            entry["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": _sarif_location(
                                        s.path, s.line, 0, s.note
                                    )
                                }
                                for s in r.flow
                            ]
                        }
                    ]
                }
            ]
        sarif_results.append(entry)
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": driver_rules,
                    }
                },
                "results": sarif_results,
            }
        ],
    }
    return _dumps(doc)


# -- adapters for the existing checkers -------------------------------------


def lint_rule_metas() -> list[RuleMeta]:
    from repro.check.rules import all_rules

    metas = [
        RuleMeta(rule.rule_id, type(rule).__name__, rule.title)
        for rule in all_rules()
    ]
    metas.append(
        RuleMeta("DET100", "SyntaxErrorRule", "file does not parse")
    )
    return metas


def lint_results(violations) -> list[CheckResult]:
    """Normalize :class:`repro.check.rules.base.Violation` records."""
    return [
        CheckResult(
            rule_id=v.rule_id,
            message=v.message,
            path=v.path,
            line=v.line,
            col=v.col,
        )
        for v in violations
    ]


RACE_RULES = [
    RuleMeta(
        "RACE100",
        "WildcardReceive",
        "wildcard receive with concurrent pending messages",
    ),
    RuleMeta(
        "RACE101",
        "SharedBufferConflict",
        "unsynchronized conflicting shared-buffer accesses",
    ),
]

_RACE_RULE_IDS = {"wildcard-recv": "RACE100", "shared-buffer": "RACE101"}


def race_results(report) -> list[CheckResult]:
    """Normalize a :class:`repro.check.races.RaceReport`.

    Races are execution findings, not source findings: they carry the
    vector-clock witness in the message and no file location.
    """
    results = []
    for race in report.races:
        witness = "; ".join(
            f"{label} {sorted(race.witness[label].items())}"
            for label in sorted(race.witness)
        )
        results.append(
            CheckResult(
                rule_id=_RACE_RULE_IDS.get(race.kind, "RACE100"),
                message=f"{race.detail} [witness: {witness}]",
                extra=(("actors", list(race.actors)), ("kind", race.kind)),
            )
        )
    return results
