"""FLOW findings, baseline gating, and the run driver.

A finding is one concrete source→sink flow with its witness path.  The
FLOW rule series mirrors the taint source kinds:

* FLOW201 — host-clock value reaches a rank-visible sink;
* FLOW202 — unseeded global-RNG value reaches a rank-visible sink;
* FLOW203 — environment / filesystem-order value reaches a sink;
* FLOW204 — unordered-iteration (set / dict-view) value reaches a sink;
* FLOW205 — object-identity (``id()`` / ``hash()``) value reaches a sink.

Baseline workflow: pre-existing findings live in a committed JSON file
(``src/repro/check/flow_baseline.json``) keyed by content fingerprints;
a run gates only on findings *not* covered by the baseline, and
``--bless`` rewrites the file to accept the current state.  Fingerprints
deliberately exclude line numbers, so unrelated edits shifting a file do
not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.flow.callgraph import build_callgraph
from repro.check.flow.taint import KIND_RULES, SinkHit, analyze
from repro.check.serialize import CheckResult, FlowStep, RuleMeta
from repro.errors import CheckInputError

TOOL_NAME = "repro.check.flow"

FLOW_RULES = [
    RuleMeta("FLOW201", "HostClockFlow", "host-clock value reaches a rank-visible sink"),
    RuleMeta("FLOW202", "GlobalRngFlow", "unseeded RNG value reaches a rank-visible sink"),
    RuleMeta("FLOW203", "EnvOrderFlow", "environment/filesystem-order value reaches a sink"),
    RuleMeta("FLOW204", "UnorderedIterFlow", "unordered-iteration value reaches a sink"),
    RuleMeta("FLOW205", "ObjectIdentityFlow", "id()/hash() value reaches a sink"),
]

#: Strips "source[kind] "-style prefixes when building messages.
_NOTE_RE = re.compile(r"^source\[[a-z-]+\]\s+")


@dataclass(frozen=True)
class FlowFinding:
    """One source→sink flow at a sink call site."""

    rule_id: str
    path: str  #: sink file
    line: int
    col: int
    source_kind: str
    source_desc: str  #: e.g. "time.perf_counter()"
    source_path: str
    source_line: int
    sink_label: str  #: e.g. "mailbox send"
    sink_desc: str  #: e.g. ".isend()"
    witness: tuple[FlowStep, ...] = ()

    @property
    def message(self) -> str:
        return (
            f"{self.source_kind} value from {self.source_desc} "
            f"({self.source_path}:{self.source_line}) flows into "
            f"{self.sink_desc} [{self.sink_label}]"
        )

    @property
    def fingerprint(self) -> str:
        payload = "|".join(
            (
                self.rule_id,
                self.path,
                self.source_path,
                self.source_desc,
                self.sink_label,
                self.sink_desc,
            )
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def format(self) -> str:
        lines = [f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"]
        for i, step in enumerate(self.witness, start=1):
            lines.append(f"    {i}. {step.path}:{step.line} {step.note}")
        return "\n".join(lines)

    def to_result(self, baseline_state: str = "") -> CheckResult:
        return CheckResult(
            rule_id=self.rule_id,
            message=self.message,
            path=self.path,
            line=self.line,
            col=self.col,
            flow=self.witness,
            fingerprint=self.fingerprint,
            baseline_state=baseline_state,
        )


@dataclass
class FlowReport:
    """Outcome of one flow analysis."""

    findings: list[FlowFinding] = field(default_factory=list)
    files_checked: int = 0
    functions_analyzed: int = 0
    unresolved_calls: int = 0
    #: Findings not covered by the baseline (== findings when none given).
    new_findings: list[FlowFinding] = field(default_factory=list)
    baseline_path: str = ""

    @property
    def passed(self) -> bool:
        return not self.new_findings

    def format(self) -> str:
        lines = [f.format() for f in self.new_findings]
        baselined = len(self.findings) - len(self.new_findings)
        tail = (
            f"{len(self.new_findings)} new flow finding(s) "
            f"({baselined} baselined) in {self.files_checked} file(s); "
            f"{self.functions_analyzed} function(s), "
            f"{self.unresolved_calls} unresolved call(s)"
        )
        lines.append(tail)
        return "\n".join(lines)

    def to_results(self) -> list[CheckResult]:
        new = {id(f) for f in self.new_findings}
        return [
            f.to_result("new" if id(f) in new else "unchanged")
            for f in self.findings
        ]


# -- baseline ---------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file into fingerprint -> allowed count."""
    p = Path(path)
    if not p.exists():
        raise CheckInputError(
            f"flow baseline not found: {p} (run with --bless to create it)"
        )
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckInputError(f"unreadable flow baseline {p}: {exc}") from exc
    counts = doc.get("fingerprints", {})
    if not isinstance(counts, dict):
        raise CheckInputError(f"malformed flow baseline {p}: 'fingerprints' not a map")
    return {str(k): int(v) for k, v in sorted(counts.items())}


def write_baseline(path: str | Path, findings: list[FlowFinding]) -> Path:  # repro: obs-flush
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    doc = {
        "tool": TOOL_NAME,
        "version": 1,
        "fingerprints": dict(sorted(counts.items())),
    }
    p = Path(path)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return p


def partition_findings(
    findings: list[FlowFinding], baseline: dict[str, int] | None
) -> list[FlowFinding]:
    """Findings beyond the baselined count per fingerprint, in order."""
    if baseline is None:
        return list(findings)
    remaining = dict(baseline)
    new: list[FlowFinding] = []
    for finding in findings:
        left = remaining.get(finding.fingerprint, 0)
        if left > 0:
            remaining[finding.fingerprint] = left - 1
        else:
            new.append(finding)
    return new


# -- driver -----------------------------------------------------------------


def _relpath(path: str) -> str:
    """Repo-relative POSIX path when possible (stable across machines)."""
    p = Path(path)
    try:
        return p.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


def _findings_from_hits(hits: list[SinkHit]) -> list[FlowFinding]:
    best: dict[tuple, FlowFinding] = {}
    for hit in hits:
        taint = hit.taint
        witness = tuple(
            FlowStep(_relpath(s.path), s.line, s.note) for s in taint.trace
        )
        finding = FlowFinding(
            rule_id=KIND_RULES[taint.kind],
            path=_relpath(hit.path),
            line=hit.line,
            col=hit.col,
            source_kind=taint.kind,
            source_desc=_NOTE_RE.sub("", taint.origin.note),
            source_path=_relpath(taint.origin.path),
            source_line=taint.origin.line,
            sink_label=hit.sink_label,
            sink_desc=hit.sink_desc,
            witness=witness,
        )
        key = (
            finding.rule_id,
            finding.path,
            finding.line,
            finding.col,
            finding.source_path,
            finding.source_line,
            finding.source_desc,
            finding.sink_desc,
        )
        cur = best.get(key)
        if cur is None or len(finding.witness) < len(cur.witness):
            best[key] = finding
    return sorted(best.values(), key=lambda f: f.sort_key())


def run_flow_sources(
    sources: dict[str, str], baseline: dict[str, int] | None = None
) -> FlowReport:
    """Analyze ``{path: source}`` (the testable core)."""
    graph = build_callgraph(sources)
    _, hits = analyze(graph)
    findings = _findings_from_hits(hits)
    report = FlowReport(
        findings=findings,
        files_checked=len(sources),
        functions_analyzed=len(graph.functions),
        unresolved_calls=len(graph.unresolved),
        new_findings=partition_findings(findings, baseline),
    )
    return report


def run_flow(paths, baseline: dict[str, int] | None = None) -> FlowReport:
    """Analyze every python file under ``paths`` against the baseline."""
    from repro.check.lint import iter_python_files, read_source

    sources = {
        str(path): read_source(path) for path in iter_python_files(paths)
    }
    return run_flow_sources(sources, baseline=baseline)
