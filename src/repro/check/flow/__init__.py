"""Interprocedural nondeterminism taint analysis (the FLOW series).

The per-module lint rules (DET101–DET109) flag nondeterminism *at the
call site*; this package proves — or refutes — the whole-program
property behind them: no value derived from a nondeterminism source
(host clock, unseeded RNG, environment/filesystem order, unordered
iteration, object identity) ever reaches a rank-visible sink (mailbox
sends, collectives, checkpoint capture, metric/trace emission, report
writers) without passing a sanitizer.

Pipeline: :mod:`callgraph` resolves a project-wide call graph from the
AST (unresolved calls are recorded, never dropped); :mod:`cfg` builds
per-function control-flow graphs with a deterministic worklist fixpoint;
:mod:`taint` runs the interprocedural source→sink tracking with function
summaries; :mod:`report` emits FLOW findings with full witness paths,
JSON/SARIF output, and the committed-baseline gate.

Exposed as ``repro check flow`` (see docs/checker.md, "Flow analysis").
"""

from repro.check.flow.callgraph import CallGraph, build_callgraph
from repro.check.flow.cfg import build_cfg, fixpoint
from repro.check.flow.report import (
    FLOW_RULES,
    FlowFinding,
    FlowReport,
    load_baseline,
    partition_findings,
    run_flow,
    run_flow_sources,
    write_baseline,
)
from repro.check.flow.taint import KIND_RULES, Summary, Taint, analyze

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FlowFinding",
    "FlowReport",
    "KIND_RULES",
    "Summary",
    "Taint",
    "analyze",
    "build_callgraph",
    "build_cfg",
    "fixpoint",
    "load_baseline",
    "partition_findings",
    "run_flow",
    "run_flow_sources",
    "write_baseline",
]
