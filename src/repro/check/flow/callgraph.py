"""Project-wide call-graph resolution from the AST.

The flow engine is *interprocedural*: a helper in ``apps/`` that reads
the host clock and returns the value must taint its callers.  That needs
a call graph, and building one for Python from the AST alone is
necessarily approximate — so this module is explicit about what it can
resolve and records everything it cannot (:attr:`CallGraph.unresolved`)
instead of silently dropping it.

Resolved call shapes:

* ``name(...)`` — a function defined in the same module, or a name bound
  by ``from mod import name`` when ``mod.name`` is a parsed function;
* ``self.method(...)`` — a method of the enclosing class;
* ``mod.attr(...)`` / ``pkg.mod.attr(...)`` — through ``import`` /
  ``import ... as`` / ``from pkg import mod`` aliases, including
  relative imports, when the target function was parsed.

Everything else (dynamic dispatch, calls through containers, methods on
non-``self`` receivers) lands in ``unresolved`` with its call site.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Marks a function as a declared observability flush boundary (the same
#: marker rule DET107 honours; see docs/observability.md).
_OBS_FLUSH_RE = re.compile(r"#\s*repro:\s*obs-flush")

#: Synthetic function name for a module's top-level statements.
MODULE_BODY = "<module>"


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when the base is not a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Paths inside a ``repro`` package map to their real dotted name so
    cross-module imports resolve; anything else uses the file stem.
    """
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro":
            tail = list(parts[i:])
            tail[-1] = Path(tail[-1]).stem
            if tail[-1] == "__init__":
                tail.pop()
            return ".".join(tail)
    return Path(path).stem


@dataclass
class FunctionInfo:
    """One parsed function (or module body) the engine can analyze."""

    qualname: str  #: e.g. ``repro.core.simulator.Compass.run``
    module: str
    path: str
    node: ast.AST  #: FunctionDef / AsyncFunctionDef, or Module for <module>
    params: tuple[str, ...] = ()
    class_name: str | None = None
    is_flush: bool = False  #: marked ``# repro: obs-flush``

    @property
    def body(self) -> list[ast.stmt]:
        if isinstance(self.node, ast.Module):
            # Top-level statements only; nested defs are their own entries.
            return [
                s
                for s in self.node.body
                if not isinstance(
                    s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        return self.node.body

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass(frozen=True)
class UnresolvedCall:
    """A call site the resolver could not bind to a parsed function."""

    caller: str
    name: str
    path: str
    line: int


@dataclass
class _ModuleInfo:
    path: str
    module: str
    #: local name -> fully qualified dotted target ("numpy", "time.sleep",
    #: "repro.core.checkpoint", ...).
    aliases: dict[str, str] = field(default_factory=dict)
    #: line -> set of suppressed rule ids on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)


class CallGraph:
    """All parsed functions plus the machinery to resolve call sites."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.modules: dict[str, _ModuleInfo] = {}
        self.unresolved: list[UnresolvedCall] = []
        self._seen_unresolved: set[UnresolvedCall] = set()

    # -- construction ------------------------------------------------------

    def add_module(self, path: str, source: str, tree: ast.Module) -> None:
        module = module_name_for(path)
        info = _ModuleInfo(path=path, module=module, lines=source.splitlines())
        from repro.check.rules.base import _SUPPRESS_RE

        for lineno, text in enumerate(info.lines, start=1):
            for match in _SUPPRESS_RE.finditer(text):
                info.suppressions.setdefault(lineno, set()).add(match.group(1))
        self._collect_imports(tree, module, info)
        self.modules[module] = info
        self.functions[f"{module}.{MODULE_BODY}"] = FunctionInfo(
            qualname=f"{module}.{MODULE_BODY}",
            module=module,
            path=path,
            node=tree,
        )
        self._collect_functions(tree, module, info, prefix=module, class_name=None)

    def _collect_imports(
        self, tree: ast.Module, module: str, info: _ModuleInfo
    ) -> None:
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: climb `level` packages from here.
                    parts = module.split(".")
                    parts = parts[: max(len(parts) - node.level, 0)]
                    base = ".".join(parts + ([node.module] if node.module else []))
                elif not base:
                    base = package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def _collect_functions(
        self,
        node: ast.AST,
        module: str,
        info: _ModuleInfo,
        prefix: str,
        class_name: str | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                args = child.args
                params = tuple(
                    a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
                )
                self.functions.setdefault(
                    qualname,
                    FunctionInfo(
                        qualname=qualname,
                        module=module,
                        path=info.path,
                        node=child,
                        params=params,
                        class_name=class_name,
                        is_flush=self._is_flush(child, info.lines),
                    ),
                )
                # Nested defs resolve only through their own qualname,
                # which bare-name calls never produce — by design: a
                # closure's taint environment is not modelled.
                self._collect_functions(
                    child, module, info, prefix=qualname, class_name=class_name
                )
            elif isinstance(child, ast.ClassDef):
                self._collect_functions(
                    child,
                    module,
                    info,
                    prefix=f"{prefix}.{child.name}",
                    class_name=child.name,
                )

    @staticmethod
    def _is_flush(node: ast.AST, lines: list[str]) -> bool:
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines) and _OBS_FLUSH_RE.search(lines[lineno - 1]):
                return True
        return False

    # -- queries -----------------------------------------------------------

    def qualify(self, func: ast.AST, module: str) -> str:
        """Expand a call's func expression to a dotted name through the
        module's import aliases (``np.random.rand`` -> ``numpy.random.rand``).
        Empty string when the base is not a plain name."""
        chain = attr_chain(func)
        if not chain:
            return ""
        info = self.modules.get(module)
        head = info.aliases.get(chain[0], chain[0]) if info else chain[0]
        return ".".join([head] + chain[1:])

    def resolve(self, call: ast.Call, caller: FunctionInfo) -> FunctionInfo | None:
        """Bind a call site to a parsed function, or record it unresolved."""
        func = call.func
        target: str | None = None
        if isinstance(func, ast.Name):
            qualified = self.qualify(func, caller.module)
            for candidate in (qualified, f"{caller.module}.{func.id}"):
                if candidate in self.functions:
                    target = candidate
                    break
        elif isinstance(func, ast.Attribute):
            chain = attr_chain(func)
            if chain and chain[0] == "self" and caller.class_name and len(chain) == 2:
                candidate = f"{caller.module}.{caller.class_name}.{chain[1]}"
                if candidate in self.functions:
                    target = candidate
            if target is None and chain:
                qualified = self.qualify(func, caller.module)
                if qualified in self.functions:
                    target = qualified
        if target is not None:
            return self.functions[target]
        name = ".".join(attr_chain(func)) or "<dynamic>"
        record = UnresolvedCall(
            caller=caller.qualname,
            name=name,
            path=caller.path,
            line=getattr(call, "lineno", 0),
        )
        if record not in self._seen_unresolved:
            self._seen_unresolved.add(record)
            self.unresolved.append(record)
        return None

    def suppressed(self, module: str, rule_id: str, line: int) -> bool:
        """Suppression marker on the line or the line just above it."""
        info = self.modules.get(module)
        if info is None:
            return False
        return rule_id in info.suppressions.get(
            line, set()
        ) or rule_id in info.suppressions.get(line - 1, set())

    def sorted_functions(self) -> list[FunctionInfo]:
        """Deterministic iteration order for the fixpoint passes."""
        return [self.functions[q] for q in sorted(self.functions)]


def build_callgraph(sources: dict[str, str]) -> CallGraph:
    """Parse ``{path: source}`` into a call graph; syntax errors are
    skipped here (the lint engine reports them as DET100)."""
    graph = CallGraph()
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError:
            continue
        graph.add_module(path, sources[path], tree)
    return graph
