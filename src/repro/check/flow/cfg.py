"""Per-function control-flow graphs and the worklist fixpoint.

The taint analysis is a forward may-analysis: a variable is tainted on a
path if *any* path reaches the use with taint.  That makes the join a
union and the fixpoint monotone, so the standard worklist algorithm
terminates.  Blocks are numbered in construction order (which follows
source order), and the worklist is kept sorted, so the iteration — and
therefore every report downstream of it — is deterministic.

The CFG is deliberately coarse where Python's dynamism makes precision
expensive: a ``try`` body may jump to its handlers from its entry or its
exit (not from every instruction), and ``with`` bodies are inlined.
Coarseness here only ever *adds* paths, which for a may-analysis means
false positives, never false negatives — the right failure direction
for a determinism gate with a baseline workflow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class BasicBlock:
    bid: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def add_succ(self, bid: int) -> None:
        if bid not in self.succs:
            self.succs.append(bid)


@dataclass
class CFG:
    blocks: dict[int, BasicBlock]
    entry: int
    exit: int

    def preds(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for bid in sorted(self.blocks):
            for succ in self.blocks[bid].succs:
                preds[succ].append(bid)
        return preds


class _Builder:
    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self._next = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        last = self._seq(body, entry, exit_block, None, None)
        if last is not None:
            last.add_succ(exit_block.bid)
        return CFG(blocks=self.blocks, entry=entry.bid, exit=exit_block.bid)

    def _seq(
        self,
        stmts: list[ast.stmt],
        current: BasicBlock,
        func_exit: BasicBlock,
        loop_header: BasicBlock | None,
        loop_exit: BasicBlock | None,
    ) -> BasicBlock | None:
        """Append ``stmts`` starting at ``current``; return the open block
        at the end, or None when all paths left the sequence."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise/break still gets a
                # block so its expressions are checked for sinks.
                current = self.new_block()
            if isinstance(stmt, ast.If):
                current.stmts.append(stmt)  # the test, for sink scanning
                body_entry = self.new_block()
                current.add_succ(body_entry.bid)
                body_exit = self._seq(
                    stmt.body, body_entry, func_exit, loop_header, loop_exit
                )
                join = self.new_block()
                if stmt.orelse:
                    else_entry = self.new_block()
                    current.add_succ(else_entry.bid)
                    else_exit = self._seq(
                        stmt.orelse, else_entry, func_exit, loop_header, loop_exit
                    )
                    if else_exit is not None:
                        else_exit.add_succ(join.bid)
                else:
                    current.add_succ(join.bid)
                if body_exit is not None:
                    body_exit.add_succ(join.bid)
                current = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = self.new_block()
                header.stmts.append(stmt)  # test / iter+target binding
                current.add_succ(header.bid)
                after = self.new_block()
                body_entry = self.new_block()
                header.add_succ(body_entry.bid)
                header.add_succ(after.bid)
                body_exit = self._seq(
                    stmt.body, body_entry, func_exit, header, after
                )
                if body_exit is not None:
                    body_exit.add_succ(header.bid)
                if stmt.orelse:
                    else_exit = self._seq(
                        stmt.orelse, after, func_exit, loop_header, loop_exit
                    )
                    current = else_exit if else_exit is not None else after
                else:
                    current = after
            elif isinstance(stmt, ast.Try):
                body_entry = self.new_block()
                current.add_succ(body_entry.bid)
                body_exit = self._seq(
                    stmt.body, body_entry, func_exit, loop_header, loop_exit
                )
                join = self.new_block()
                if body_exit is not None:
                    body_exit.add_succ(join.bid)
                for handler in stmt.handlers:
                    h_entry = self.new_block()
                    # Exceptions may fire anywhere in the body: approximate
                    # with edges from the body's entry and exit.
                    body_entry.add_succ(h_entry.bid)
                    if body_exit is not None:
                        body_exit.add_succ(h_entry.bid)
                    h_exit = self._seq(
                        handler.body, h_entry, func_exit, loop_header, loop_exit
                    )
                    if h_exit is not None:
                        h_exit.add_succ(join.bid)
                if stmt.orelse and body_exit is not None:
                    else_exit = self._seq(
                        stmt.orelse, join, func_exit, loop_header, loop_exit
                    )
                    join = else_exit if else_exit is not None else join
                if stmt.finalbody:
                    final_exit = self._seq(
                        stmt.finalbody, join, func_exit, loop_header, loop_exit
                    )
                    join = final_exit if final_exit is not None else join
                current = join
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.stmts.append(stmt)  # item bindings, for the transfer
                body_exit = self._seq(
                    stmt.body, current, func_exit, loop_header, loop_exit
                )
                current = body_exit if body_exit is not None else self.new_block()
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.stmts.append(stmt)
                current.add_succ(func_exit.bid)
                current = None
            elif isinstance(stmt, ast.Break):
                if loop_exit is not None:
                    current.add_succ(loop_exit.bid)
                current = None
            elif isinstance(stmt, ast.Continue):
                if loop_header is not None:
                    current.add_succ(loop_header.bid)
                current = None
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are separate analysis units
            else:
                current.stmts.append(stmt)
        return current


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG for one function body (or a module's statements)."""
    return _Builder().build(body)


def fixpoint(cfg: CFG, initial, transfer, join):
    """Forward worklist fixpoint.

    ``initial`` is the entry state; ``transfer(block, state) -> state``;
    ``join(a, b) -> state`` must be monotone (union-like).  Returns the
    mapping block id -> input state, stable under one more iteration.
    The worklist is processed in sorted block order so the result — and
    any finding collected inside ``transfer`` on the final pass — is
    deterministic.
    """
    preds = cfg.preds()
    states_in: dict[int, object] = {cfg.entry: initial}
    states_out: dict[int, object] = {}
    worklist = sorted(cfg.blocks)
    while worklist:
        bid = worklist.pop(0)
        block = cfg.blocks[bid]
        state = states_in.get(cfg.entry) if bid == cfg.entry else None
        for p in preds[bid]:
            if p in states_out:
                state = (
                    states_out[p]
                    if state is None
                    else join(state, states_out[p])
                )
        if state is None:
            state = initial if bid == cfg.entry else {}
        states_in[bid] = state
        out = transfer(block, state)
        if states_out.get(bid) != out:
            states_out[bid] = out
            for succ in block.succs:
                if succ not in worklist:
                    # Keep the worklist sorted for determinism.
                    worklist.append(succ)
                    worklist.sort()
    return states_in
