"""Interprocedural nondeterminism taint tracking.

**Sources** are expressions whose value depends on something outside the
(model, seed, ticks) triple: host-clock reads, unseeded global RNG
draws, environment/filesystem-order reads, unordered ``set``/``dict``
view iteration, and ``id()``/``hash()`` of objects.  **Sinks** are the
rank-visible boundaries where such a value would poison the headline
byte-identity claim: mailbox/collective sends, checkpoint capture,
metric/trace emission, and report writers.  **Sanitizers** kill taint in
between: ``sorted()`` pins an order, ``util.hostclock.host_perf_counter``
is the audited host-clock accessor, explicitly seeded streams are not
sources at all, functions marked ``# repro: obs-flush`` are the declared
observation boundary, and a ``# repro: allow[...]`` lint suppression at
a source site documents why that site is deterministic.

The engine runs in two phases over the call graph:

1. a **summary fixpoint** — for every function, which parameters flow
   to its return value, which source taints it may return, and which
   parameters reach a sink inside it (transitively);
2. a **reporting pass** — re-analyze each function with the stable
   summaries and emit a finding for every concrete source→sink flow,
   carrying the full witness path.

Both phases walk functions in sorted-qualname order and keep taint sets
normalized, so repeated runs are byte-identical.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.flow.callgraph import (
    MODULE_BODY,
    CallGraph,
    FunctionInfo,
    attr_chain,
)
from repro.check.flow.cfg import BasicBlock, build_cfg, fixpoint

#: Longest witness path kept; extensions past this are dropped (keeping
#: the taint itself) so recursive call chains still reach a fixpoint.
MAX_TRACE = 10

# --------------------------------------------------------------------------
# Source / sink / sanitizer specifications
# --------------------------------------------------------------------------

#: Qualified call names that read the host clock.
_HOST_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` names that are explicitly seeded constructors.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "SFC64", "MT19937"}
)

#: ``random`` module members that are seedable constructors, not draws.
_RANDOM_CONSTRUCTORS = frozenset({"Random"})

#: Environment reads (call forms; ``os.environ`` itself is an attribute).
_ENV_CALLS = frozenset({"os.getenv"})

#: Filesystem-order reads: directory listings whose order is OS-dependent.
_FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir"})
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Unordered-view methods on dicts (order encodes insertion history).
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: The audited host-clock accessor — calling it is sanctioned (HOST-ONLY
#: measurement contract, see util/hostclock.py), so it seeds no taint.
_SANITIZER_FUNCS = frozenset({"repro.util.hostclock.host_perf_counter"})
_SANITIZER_NAMES = frozenset({"host_perf_counter"})

#: Builtins that launder nothing but also carry no payload forward.
_CLEAN_BUILTINS = frozenset({"len", "isinstance", "hasattr", "callable", "range"})

#: Sink specifications: label -> (attribute method names, qualified names,
#: bare function names).  The label appears in findings and baselines.
_SINKS: dict[str, tuple[frozenset, frozenset, frozenset]] = {
    "mailbox send": (
        frozenset({"send", "isend", "put", "deliver"}),
        frozenset(),
        frozenset(),
    ),
    "collective": (
        frozenset({"reduce_scatter", "reduce_scatter_contribute", "contribute"}),
        frozenset(),
        frozenset(),
    ),
    "checkpoint capture": (
        frozenset({"capture_state", "restore_state", "save_checkpoint"}),
        frozenset(),
        frozenset({"capture_state", "restore_state", "save_checkpoint"}),
    ),
    "metric/trace emission": (
        frozenset({"instant", "tick_summary", "observe", "inc", "span"}),
        frozenset(),
        frozenset(),
    ),
    "report writer": (
        frozenset({"write_text", "write_bytes"}),
        frozenset(
            {
                "json.dump",
                "pickle.dump",
                "numpy.save",
                "numpy.savez",
                "numpy.savez_compressed",
                "numpy.savetxt",
            }
        ),
        frozenset(),
    ),
}

#: Source kind -> FLOW rule id.
KIND_RULES = {
    "host-clock": "FLOW201",
    "rng": "FLOW202",
    "env": "FLOW203",
    "fs-order": "FLOW203",
    "order": "FLOW204",
    "ident": "FLOW205",
}

#: A lint suppression at the source site that documents determinism also
#: kills the flow taint (the reason given there covers the whole flow).
_KIND_LINT_RULES = {
    "host-clock": "DET101",
    "rng": "DET102",
    "order": "DET103",
    "env": "DET109",
    "fs-order": "DET109",
}


# --------------------------------------------------------------------------
# Taint values
# --------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Step:
    """One hop of a witness path."""

    path: str
    line: int
    note: str


@dataclass(frozen=True, order=True)
class Taint:
    """A tainted value: either a concrete source or a parameter symbol."""

    kind: str  #: source kind, or "param"
    param: str  #: parameter name when kind == "param", else ""
    origin: Step
    trace: tuple[Step, ...] = ()

    @property
    def key(self):
        return (self.kind, self.param, self.origin)

    def extend(self, *steps: Step) -> "Taint":
        if len(self.trace) + len(steps) > MAX_TRACE:
            return self
        return Taint(self.kind, self.param, self.origin, self.trace + steps)


def _norm(taints) -> frozenset[Taint]:
    """Deduplicate by source identity, keeping the shortest witness —
    bounded sets keep the interprocedural fixpoint convergent."""
    best: dict = {}
    for t in taints:
        cur = best.get(t.key)
        if cur is None or (len(t.trace), t.trace) < (len(cur.trace), cur.trace):
            best[t.key] = t
    return frozenset(best.values())


@dataclass(frozen=True, order=True)  # ordered: reports sort hits
class SinkHit:
    """A tainted value reaching a sink call."""

    taint: Taint
    sink_label: str
    sink_desc: str  #: e.g. ".isend()"
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class Summary:
    """What a function does with taint, as seen from its callers."""

    returns: frozenset[Taint] = frozenset()
    sink_hits: frozenset[SinkHit] = frozenset()


_EMPTY_SUMMARY = Summary()


# --------------------------------------------------------------------------
# The per-function analyzer
# --------------------------------------------------------------------------

Env = dict  #: variable name -> frozenset[Taint]


def _join_env(a: Env, b: Env) -> Env:
    out = dict(a)
    for name in sorted(b):
        if name in out:
            out[name] = _norm(out[name] | b[name])
        else:
            out[name] = b[name]
    return out


class _Analyzer:
    """Runs the CFG fixpoint for one function against current summaries."""

    def __init__(
        self,
        graph: CallGraph,
        func: FunctionInfo,
        summaries: dict[str, Summary],
    ) -> None:
        self.graph = graph
        self.func = func
        self.summaries = summaries
        self.returns: set[Taint] = set()
        self.hits: set[SinkHit] = set()

    # -- helpers -----------------------------------------------------------

    def _qualify(self, func_expr: ast.AST) -> str:
        return self.graph.qualify(func_expr, self.func.module)

    def _suppressed_source(self, kind: str, line: int) -> bool:
        lint_rule = _KIND_LINT_RULES.get(kind)
        flow_rule = KIND_RULES[kind]
        return (
            lint_rule is not None
            and self.graph.suppressed(self.func.module, lint_rule, line)
        ) or self.graph.suppressed(self.func.module, flow_rule, line)

    def _source(self, kind: str, node: ast.AST, desc: str) -> frozenset[Taint]:
        line = getattr(node, "lineno", 0)
        if self._suppressed_source(kind, line):
            return frozenset()
        origin = Step(self.func.path, line, f"source[{kind}] {desc}")
        return frozenset({Taint(kind, "", origin, (origin,))})

    # -- expression evaluation ---------------------------------------------

    def eval(self, node: ast.AST, env: Env) -> frozenset[Taint]:
        if node is None:
            return frozenset()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, env)
        # Default: union of child expression taints.
        out: set[Taint] = set()
        for child in ast.iter_child_nodes(node):
            out |= self.eval(child, env)
        return _norm(out)

    def _eval_Constant(self, node, env):
        return frozenset()

    def _eval_Name(self, node, env):
        return env.get(node.id, frozenset())

    def _eval_Attribute(self, node, env):
        chain = attr_chain(node)
        if chain:
            qualified = self.graph.qualify(node, self.func.module)
            if qualified in ("os.environ", "os.environb"):
                return self._source("env", node, qualified)
            if chain[0] == "self" and len(chain) == 2:
                return env.get(f"self.{chain[1]}", frozenset())
        return self.eval(node.value, env)

    def _eval_Subscript(self, node, env):
        return _norm(self.eval(node.value, env) | self.eval(node.slice, env))

    def _eval_Set(self, node, env):
        inner = set()
        for elt in node.elts:
            inner |= self.eval(elt, env)
        return _norm(inner | self._source("order", node, "set literal"))

    def _eval_SetComp(self, node, env):
        return _norm(
            self._comp(node, env) | self._source("order", node, "set comprehension")
        )

    def _eval_ListComp(self, node, env):
        return self._comp(node, env)

    def _eval_GeneratorExp(self, node, env):
        return self._comp(node, env)

    def _eval_DictComp(self, node, env):
        return self._comp(node, env, dict_comp=True)

    def _comp(self, node, env, dict_comp: bool = False) -> frozenset[Taint]:
        scope = dict(env)
        out: set[Taint] = set()
        for gen in node.generators:
            iter_taint = self._eval_iterable(gen.iter, scope)
            self._bind(gen.target, iter_taint, scope)
            for cond in gen.ifs:
                self.eval(cond, scope)
        if dict_comp:
            out |= self.eval(node.key, scope) | self.eval(node.value, scope)
        else:
            out |= self.eval(node.elt, scope)
        return _norm(out)

    def _eval_Lambda(self, node, env):
        return frozenset()

    def _eval_Call(self, node: ast.Call, env: Env) -> frozenset[Taint]:
        func = node.func
        qualified = self._qualify(func)
        # sorted() pins an order AND is treated as the universal flow
        # sanitizer (args are still scanned for nested sink calls).
        if isinstance(func, ast.Name) and func.id == "sorted":
            for arg in node.args:
                self.eval(arg, env)
            return frozenset()
        if qualified in _SANITIZER_FUNCS or (
            isinstance(func, ast.Name) and func.id in _SANITIZER_NAMES
        ):
            return frozenset()

        arg_taints = [self.eval(a, env) for a in node.args]
        kw_taints = [(kw.arg, self.eval(kw.value, env)) for kw in node.keywords]
        recv_taint = (
            self.eval(func.value, env)
            if isinstance(func, ast.Attribute)
            else frozenset()
        )
        all_args = _norm(
            set().union(frozenset(), *arg_taints, *(t for _, t in kw_taints))
        )

        source = self._match_source(node, qualified, func)
        if source is not None:
            return source

        self._check_sink(node, qualified, func, arg_taints, kw_taints)

        callee = self._resolve(node)
        if callee is not None:
            return self._apply_summary(node, callee, arg_taints, kw_taints)

        if isinstance(func, ast.Name) and func.id in _CLEAN_BUILTINS:
            return frozenset()
        # Unresolved calls propagate argument + receiver taint: `str(t)`,
        # `copy.deepcopy(t)`, `t.total_seconds()` all stay tainted.
        return _norm(all_args | recv_taint)

    # -- call classification ------------------------------------------------

    def _match_source(
        self, node: ast.Call, qualified: str, func: ast.AST
    ) -> frozenset[Taint] | None:
        if qualified in _HOST_CLOCK_CALLS:
            return self._source("host-clock", node, f"{qualified}()")
        if qualified.startswith("random."):
            member = qualified.split(".", 1)[1]
            if "." not in member and member not in _RANDOM_CONSTRUCTORS:
                return self._source("rng", node, f"{qualified}()")
        if qualified.startswith("numpy.random."):
            member = qualified.rsplit(".", 1)[1]
            if member not in _NP_RANDOM_CONSTRUCTORS:
                return self._source("rng", node, f"{qualified}()")
        if qualified in _ENV_CALLS:
            return self._source("env", node, f"{qualified}()")
        if qualified in _FS_ORDER_CALLS:
            return self._source("fs-order", node, f"{qualified}()")
        if isinstance(func, ast.Attribute):
            if func.attr in _FS_ORDER_METHODS:
                return self._source("fs-order", node, f".{func.attr}()")
            if func.attr in _DICT_VIEW_METHODS:
                return self._source("order", node, f".{func.attr}()")
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return self._source("order", node, f"{func.id}()")
            if func.id in ("id", "hash"):
                return self._source("ident", node, f"{func.id}()")
        return None

    def _sink_of(self, qualified: str, func: ast.AST) -> tuple[str, str] | None:
        for label in sorted(_SINKS):
            methods, quals, bare = _SINKS[label]
            if isinstance(func, ast.Attribute) and func.attr in methods:
                return label, f".{func.attr}()"
            if qualified in quals:
                return label, f"{qualified}()"
            if isinstance(func, ast.Name) and func.id in bare:
                return label, f"{func.id}()"
        return None

    def _check_sink(
        self, node: ast.Call, qualified: str, func: ast.AST, arg_taints, kw_taints
    ) -> None:
        if self.func.is_flush:
            return  # declared observation boundary: flows here are audited
        sink = self._sink_of(qualified, func)
        if sink is None:
            return
        label, desc = sink
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        sink_step = Step(self.func.path, line, f"argument to {desc} [{label}]")
        for taints in list(arg_taints) + [t for _, t in kw_taints]:
            for taint in taints:
                self.hits.add(
                    SinkHit(
                        taint=taint.extend(sink_step),
                        sink_label=label,
                        sink_desc=desc,
                        path=self.func.path,
                        line=line,
                        col=col,
                    )
                )

    def _resolve(self, node: ast.Call) -> FunctionInfo | None:
        return self.graph.resolve(node, self.func)

    def _apply_summary(
        self, node: ast.Call, callee: FunctionInfo, arg_taints, kw_taints
    ) -> frozenset[Taint]:
        summary = self.summaries.get(callee.qualname, _EMPTY_SUMMARY)
        line = getattr(node, "lineno", 0)
        # Map call arguments onto callee parameter names.
        params = list(callee.params)
        if (
            params
            and params[0] in ("self", "cls")
            and isinstance(node.func, ast.Attribute)
        ):
            params = params[1:]
        by_param: dict[str, frozenset[Taint]] = {}
        for i, taints in enumerate(arg_taints):
            if i < len(params):
                by_param[params[i]] = taints
        for name, taints in kw_taints:
            if name is not None:
                by_param[name] = taints

        short = callee.qualname.split(".", 1)[-1]
        out: set[Taint] = set()
        call_step = Step(self.func.path, line, f"call {short}()")
        for taint in summary.returns:
            if taint.kind == "param":
                for arg_taint in by_param.get(taint.param, frozenset()):
                    out.add(
                        arg_taint.extend(
                            Step(
                                self.func.path,
                                line,
                                f"argument '{taint.param}' into {short}()",
                            ),
                            *taint.trace,
                        )
                    )
            else:
                out.add(
                    taint.extend(
                        Step(self.func.path, line, f"returned by {short}()")
                    )
                )
        if not self.func.is_flush and not callee.is_flush:
            for hit in summary.sink_hits:
                if hit.taint.kind != "param":
                    continue  # concrete flows are reported inside the callee
                for arg_taint in by_param.get(hit.taint.param, frozenset()):
                    self.hits.add(
                        SinkHit(
                            taint=arg_taint.extend(call_step, *hit.taint.trace),
                            sink_label=hit.sink_label,
                            sink_desc=hit.sink_desc,
                            path=hit.path,
                            line=hit.line,
                            col=hit.col,
                        )
                    )
        return _norm(out)

    # -- iteration sources --------------------------------------------------

    def _eval_iterable(self, node: ast.AST, env: Env) -> frozenset[Taint]:
        """Taint of iterating ``node``: its value taint, which for sets and
        dict views already includes the order source."""
        return self.eval(node, env)

    # -- statement transfer --------------------------------------------------

    def _bind(self, target: ast.AST, taints: frozenset[Taint], env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints, env)
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                env[f"self.{chain[1]}"] = taints
        elif isinstance(target, ast.Subscript):
            # t[k] = tainted: conservatively taint the container variable.
            base = target.value
            existing = self.eval(base, env)
            self._bind(base, _norm(existing | taints), env)

    def transfer(self, block: BasicBlock, env_in: Env) -> Env:
        env = dict(env_in)
        for stmt in block.stmts:
            self._transfer_stmt(stmt, env)
        return env

    def _transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, taints, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                existing = env.get(stmt.target.id, frozenset())
                env[stmt.target.id] = _norm(existing | taints)
            else:
                self._bind(stmt.target, taints, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval_iterable(stmt.iter, env), env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                ret = self.eval(stmt.value, env)
                line = getattr(stmt, "lineno", 0)
                for taint in ret:
                    self.returns.add(
                        taint.extend(Step(self.func.path, line, "returned"))
                    )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Import/Global/Nonlocal/Pass: no taint effect.

    # -- driver --------------------------------------------------------------

    def run(self) -> Summary:
        env0: Env = {}
        for param in self.func.params:
            origin = Step(
                self.func.path, self.func.lineno, f"parameter '{param}'"
            )
            env0[param] = frozenset({Taint("param", param, origin)})
        cfg = build_cfg(self.func.body)
        fixpoint(cfg, env0, self.transfer, _join_env)
        return Summary(
            returns=_norm(self.returns), sink_hits=frozenset(self.hits)
        )


# --------------------------------------------------------------------------
# Interprocedural driver
# --------------------------------------------------------------------------

#: Passes over the call graph before giving up on convergence; deep call
#: chains converge in (depth + 1) passes, and MAX_TRACE bounds the rest.
MAX_PASSES = 12


def analyze(graph: CallGraph) -> tuple[dict[str, Summary], list[SinkHit]]:
    """Run the two-phase analysis; returns (summaries, concrete hits)."""
    summaries: dict[str, Summary] = {}
    for _ in range(MAX_PASSES):
        changed = False
        for func in graph.sorted_functions():
            summary = _Analyzer(graph, func, summaries).run()
            if summaries.get(func.qualname) != summary:
                summaries[func.qualname] = summary
                changed = True
        if not changed:
            break
    hits: list[SinkHit] = []
    for func in graph.sorted_functions():
        summary = summaries.get(func.qualname, _EMPTY_SUMMARY)
        for hit in sorted(summary.sink_hits):
            if hit.taint.kind == "param":
                continue  # only meaningful through a tainted caller
            rule = KIND_RULES[hit.taint.kind]
            if graph.suppressed(
                graph.functions[func.qualname].module, rule, hit.line
            ):
                continue
            hits.append(hit)
    return summaries, hits


def module_body_name(module: str) -> str:
    return f"{module}.{MODULE_BODY}"
