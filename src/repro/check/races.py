"""Happens-before race detection for the virtual cluster.

The paper's one-to-one spike correspondence across partitionings holds
because Compass's Network phase is insensitive to message arrival order:
spike delivery is a bitwise OR into axon buffers (§VII-A).  Any *other*
order-sensitive consumption of wildcard receives — or any unsynchronized
write to a buffer shared between OpenMP threads — would silently break
bit-determinism at scale, exactly the failure mode CoreNEURON's
reproducibility checks and the Fudan low-latency design guard against.

This module attaches a **vector clock** to every simulated rank and
thread and builds the happens-before relation from the event stream the
runtime emits when a sanitizer is installed:

* program order — each actor's events tick its own component;
* message order — a receive merges the send-time clock snapshot;
* collective order — a Reduce-Scatter (or barrier) acts as an
  all-to-all fence: every fetch merges all contributions
  (:func:`repro.runtime.collectives.collective_merge`);
* fork/join — per-tick OpenMP-style teams branch from and re-join the
  owning rank's clock.

Two race classes are reported, each with the witnessing clocks:

* ``wildcard-recv`` — an ``Iprobe``/``Recv`` with ``MPI_ANY_SOURCE``
  while two or more *concurrent* (mutually unordered) messages from
  distinct sources are pending, outside a delivery context declared
  commutative.  Real MPI may deliver either first, so downstream state
  becomes interleaving-dependent.
* ``shared-buffer`` — overlapping writes (or a write racing a read) to
  the same shared region by two actors whose clocks are concurrent.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.runtime.collectives import collective_merge
from repro.runtime.mailbox import ANY_SOURCE


class VectorClock:
    """A map actor → event count, partially ordered componentwise."""

    __slots__ = ("_clock",)

    def __init__(self, init: dict[str, int] | None = None) -> None:
        self._clock: dict[str, int] = dict(init) if init else {}

    def tick(self, actor: str) -> None:
        self._clock[actor] = self._clock.get(actor, 0) + 1

    def merge(self, other: "VectorClock | dict[str, int]") -> None:
        items = other.items() if isinstance(other, VectorClock) else other.items()
        for actor, t in items:
            if t > self._clock.get(actor, 0):
                self._clock[actor] = t

    def get(self, actor: str) -> int:
        return self._clock.get(actor, 0)

    def items(self):
        return self._clock.items()

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def as_dict(self) -> dict[str, int]:
        return dict(self._clock)

    def dominates(self, other: "VectorClock") -> bool:
        """True when every component is >= the other's (other ≼ self)."""
        return all(self._clock.get(a, 0) >= t for a, t in other.items())

    def happens_before(self, other: "VectorClock") -> bool:
        return other.dominates(self) and self._clock != other._clock

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{a}:{t}" for a, t in sorted(self._clock.items()))
        return f"VectorClock({inner})"


@dataclass(frozen=True)
class Race:
    """One detected race, with its vector-clock witness."""

    kind: str  #: "wildcard-recv" or "shared-buffer"
    actors: tuple[str, ...]
    detail: str
    #: event label -> clock snapshot proving the events are concurrent.
    witness: dict[str, dict[str, int]]

    def format(self) -> str:
        lines = [f"RACE[{self.kind}] {self.detail}"]
        for label in sorted(self.witness):
            clock = self.witness[label]
            inner = ", ".join(f"{a}:{t}" for a, t in sorted(clock.items()))
            lines.append(f"    {label}: {{{inner}}}")
        return "\n".join(lines)


@dataclass
class RaceReport:
    """Everything the detector observed, plus the races it found."""

    races: list[Race] = field(default_factory=list)
    events: dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.races

    def format(self) -> str:
        lines = [
            "race detector: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.events.items()))
        ]
        for race in self.races:
            lines.append(race.format())
        lines.append(
            "0 races detected"
            if self.passed
            else f"{len(self.races)} race(s) detected"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Access:
    actor: str
    lo: int
    hi: int
    is_write: bool
    clock: VectorClock


class HappensBeforeDetector:
    """Vector-clock sanitizer driven by the runtime's instrumentation hooks.

    Install via ``VirtualMpiCluster(n_ranks, sanitizer=detector)`` or, at
    a higher level, ``Compass(network, config, sanitize=True)``.
    """

    def __init__(self, n_ranks: int, threads_per_rank: int = 1) -> None:
        self.n_ranks = n_ranks
        self.threads_per_rank = threads_per_rank
        self.clocks: dict[str, VectorClock] = {
            self.rank_actor(r): VectorClock() for r in range(n_ranks)
        }
        self.races: list[Race] = []
        self.events: dict[str, int] = {}
        #: seq -> (source rank, clock snapshot at send time).
        self._msg_clocks: dict[int, tuple[int, VectorClock]] = {}
        #: staged collective contributions: actor -> clock snapshot.
        self._collective_stage: dict[str, VectorClock] = {}
        #: shared-region access log: region key -> accesses this epoch.
        self._accesses: dict[object, list[_Access]] = {}
        #: dedup keys of already-reported races.
        self._reported: set = set()
        self._commutative_depth = 0

    # -- actors ------------------------------------------------------------

    @staticmethod
    def rank_actor(rank: int) -> str:
        return f"rank{rank}"

    @staticmethod
    def thread_actor(rank: int, thread: int) -> str:
        return f"rank{rank}.t{thread}"

    def _clock_of(self, actor: str) -> VectorClock:
        if actor not in self.clocks:
            self.clocks[actor] = VectorClock()
        return self.clocks[actor]

    def _count(self, event: str) -> None:
        self.events[event] = self.events.get(event, 0) + 1

    # -- commutative delivery windows -------------------------------------

    @contextmanager
    def commutative_delivery(self):
        """Declare that receives inside the block consume messages
        commutatively (e.g. bitwise-OR spike delivery, §VII-A), so
        wildcard ordering cannot influence results."""
        self._commutative_depth += 1
        try:
            yield self
        finally:
            self._commutative_depth -= 1

    @property
    def _in_commutative(self) -> bool:
        return self._commutative_depth > 0

    # -- point-to-point hooks ----------------------------------------------

    def on_send(self, source: int, dest: int, tag: int, seq: int) -> None:
        self._count("sends")
        clock = self._clock_of(self.rank_actor(source))
        clock.tick(self.rank_actor(source))
        self._msg_clocks[seq] = (source, clock.copy())

    def on_iprobe(self, rank: int, source: int, tag: int, candidates) -> None:
        self._count("iprobes")
        self._check_wildcard(rank, source, candidates, "iprobe")

    def on_recv(
        self,
        rank: int,
        seq: int,
        source: int,
        candidates,
        commutative: bool = False,
    ) -> None:
        self._count("recvs")
        if not commutative:
            self._check_wildcard(rank, source, candidates, "recv")
        actor = self.rank_actor(rank)
        entry = self._msg_clocks.get(seq)
        if entry is not None:
            self._clock_of(actor).merge(entry[1])
        self._clock_of(actor).tick(actor)

    def _check_wildcard(self, rank: int, source: int, candidates, where: str) -> None:
        """Flag a wildcard match while concurrent messages from distinct
        sources are pending — the Iprobe-order-dependent receive."""
        if source != ANY_SOURCE or self._in_commutative:
            return
        seqs = [m.seq for m in candidates if m.seq in self._msg_clocks]
        for i, sa in enumerate(seqs):
            src_a, clk_a = self._msg_clocks[sa]
            for sb in seqs[i + 1 :]:
                src_b, clk_b = self._msg_clocks[sb]
                if src_a == src_b or not clk_a.concurrent(clk_b):
                    continue
                key = (rank, frozenset((sa, sb)))
                if key in self._reported:
                    continue
                self._reported.add(key)
                self.races.append(
                    Race(
                        kind="wildcard-recv",
                        actors=(self.rank_actor(src_a), self.rank_actor(src_b)),
                        detail=(
                            f"rank{rank} {where} with ANY_SOURCE while "
                            f"concurrent messages #{sa} (from rank{src_a}) and "
                            f"#{sb} (from rank{src_b}) are pending; arrival "
                            "order is interleaving-dependent"
                        ),
                        witness={
                            f"send#{sa}@rank{src_a}": clk_a.as_dict(),
                            f"send#{sb}@rank{src_b}": clk_b.as_dict(),
                        },
                    )
                )

    # -- mailbox observer hooks --------------------------------------------

    def on_mailbox_deliver(self, rank: int, message) -> None:
        self._count("deliveries")

    def on_mailbox_pop(self, rank: int, message) -> None:
        self._count("pops")

    # -- collective hooks ---------------------------------------------------

    def on_collective_contribute(self, rank: int) -> None:
        self._count("collective_contributions")
        actor = self.rank_actor(rank)
        clock = self._clock_of(actor)
        clock.tick(actor)
        self._collective_stage[actor] = clock.copy()

    def on_collective_fetch(self, rank: int) -> None:
        self._count("collective_fetches")
        actor = self.rank_actor(rank)
        merged = collective_merge(
            self._collective_stage[a] for a in sorted(self._collective_stage)
        )
        clock = self._clock_of(actor)
        clock.merge(merged)
        clock.tick(actor)

    def on_collective_finish(self) -> None:
        """The collective is a fence: pre-fence accesses are ordered before
        every later event, so the shared-access log can be dropped."""
        self._collective_stage.clear()
        self._accesses.clear()
        self._msg_clocks.clear()

    # -- simulated OpenMP teams --------------------------------------------

    def fork_threads(self, rank: int, n_threads: int) -> list[str]:
        """Branch ``n_threads`` thread clocks off the rank's clock."""
        parent = self._clock_of(self.rank_actor(rank))
        actors = []
        for t in range(n_threads):
            actor = self.thread_actor(rank, t)
            clock = parent.copy()
            clock.tick(actor)
            self.clocks[actor] = clock
            actors.append(actor)
        return actors

    def join_threads(self, rank: int, n_threads: int) -> None:
        """Merge the team's clocks back into the owning rank."""
        actor = self.rank_actor(rank)
        clock = self._clock_of(actor)
        for t in range(n_threads):
            clock.merge(self._clock_of(self.thread_actor(rank, t)))
        clock.tick(actor)

    # -- shared-buffer hooks -------------------------------------------------

    def on_shared_write(self, actor: str, region: object, lo: int, hi: int) -> None:
        self._count("shared_writes")
        self._record_access(actor, region, lo, hi, is_write=True)

    def on_shared_read(self, actor: str, region: object, lo: int, hi: int) -> None:
        self._count("shared_reads")
        self._record_access(actor, region, lo, hi, is_write=False)

    def _record_access(
        self, actor: str, region: object, lo: int, hi: int, is_write: bool
    ) -> None:
        clock = self._clock_of(actor)
        clock.tick(actor)
        snapshot = clock.copy()
        log = self._accesses.setdefault(region, [])
        for prior in log:
            if prior.actor == actor:
                continue
            if not (is_write or prior.is_write):
                continue  # read/read never conflicts
            if prior.hi <= lo or hi <= prior.lo:
                continue  # disjoint spans
            if not prior.clock.concurrent(snapshot):
                continue
            key = (region, frozenset((prior.actor, actor)), prior.lo, prior.hi, lo, hi)
            if key in self._reported:
                continue
            self._reported.add(key)
            a_kind = "write" if prior.is_write else "read"
            b_kind = "write" if is_write else "read"
            self.races.append(
                Race(
                    kind="shared-buffer",
                    actors=(prior.actor, actor),
                    detail=(
                        f"unsynchronized {a_kind} [{prior.lo}, {prior.hi}) by "
                        f"{prior.actor} and {b_kind} [{lo}, {hi}) by {actor} "
                        f"on shared region {region!r}"
                    ),
                    witness={
                        f"{a_kind}@{prior.actor}": prior.clock.as_dict(),
                        f"{b_kind}@{actor}": snapshot.as_dict(),
                    },
                )
            )
        log.append(_Access(actor, lo, hi, is_write, snapshot))

    # -- results ----------------------------------------------------------

    def report(self) -> RaceReport:
        return RaceReport(races=list(self.races), events=dict(self.events))
