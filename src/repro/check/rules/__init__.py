"""Lint rules for the determinism sanitizer.

Importing this package registers every rule; :func:`all_rules` then
returns fresh instances.  New rule modules must be imported here to be
picked up by the engine.
"""

from repro.check.rules import determinism  # noqa: F401  (registers rules)
from repro.check.rules.base import (
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    register,
    rules_by_id,
)

__all__ = [
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "register",
    "rules_by_id",
]
