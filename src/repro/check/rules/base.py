"""Lint-rule infrastructure: violations, suppression, and the registry.

A rule is a small class that inspects one module's AST and yields
:class:`Violation` records.  Rules are registered with :func:`register`
so the engine (and the CLI's ``--rule`` filter) can enumerate them by
stable rule id.

Suppression
-----------
A violation is suppressed by a comment on the offending line::

    for name in table.values():  # repro: allow[DET103] layout-ordered

or, for wrapped expressions, on the line immediately above the
offending construct::

    # repro: allow[DET103] table is insertion-ordered by construction
    sizes = [hi - lo for (lo, hi) in table.values()]

The marker must name the rule id explicitly — there is no blanket
"allow everything" form, so each suppression documents exactly which
discipline it opts out of.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Matches ``# repro: allow[DET103]`` (optionally followed by a reason).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z]+\d+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module under check."""

    path: str
    source: str
    tree: ast.Module
    #: True when the module is on a simulation path whose behaviour is
    #: observable across ranks (runtime, core, compiler, arch, cocomac).
    rank_visible: bool = True
    #: line number -> set of rule ids suppressed on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str, rank_visible: bool = True) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            for match in _SUPPRESS_RE.finditer(text):
                suppressions.setdefault(lineno, set()).add(match.group(1))
        return cls(
            path=path,
            source=source,
            tree=tree,
            rank_visible=rank_visible,
            suppressions=suppressions,
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Suppressed on the offending line or the line just above it."""
        return rule_id in self.suppressions.get(
            line, set()
        ) or rule_id in self.suppressions.get(line - 1, set())


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and implement
    :meth:`check`, yielding violations.  ``rank_visible_only`` restricts
    a rule to simulation-path modules.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    rank_visible_only: bool = False

    def check(self, ctx: ModuleContext):
        raise NotImplementedError

    def run(self, ctx: ModuleContext) -> list[Violation]:
        if self.rank_visible_only and not ctx.rank_visible:
            return []
        return [
            v for v in self.check(ctx) if not ctx.suppressed(v.rule_id, v.line)
        ]

    def violation(self, ctx: ModuleContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Stable registry: rule id -> rule class, in definition order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in _REGISTRY.values()]


def rules_by_id(ids) -> list[Rule]:
    missing = [i for i in ids if i not in _REGISTRY]
    if missing:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule ids {missing}; known: {known}")
    return [_REGISTRY[i]() for i in ids]
