"""The determinism lint rules (DET101–DET112).

Each rule enforces one discipline that keeps the simulator
bit-deterministic across rank counts and thread interleavings — the
property behind the paper's one-to-one spike correspondence claim:

* DET101 — no wall-clock reads in simulation paths;
* DET102 — no module-level (globally seeded) RNG in simulation paths;
* DET103 — no iteration over unordered ``set`` / ``dict.values()`` /
  ``dict.keys()`` in rank-visible code without ``sorted()``;
* DET104 — no mutable default arguments;
* DET105 — no bare or broad exception handlers;
* DET106 — no host-clock waits or timeouts in recovery/simulation paths
  (``time.sleep``, ``signal.alarm``, socket timeouts, blocking-call
  ``timeout=`` arguments): failure detection and recovery backoff must
  advance on the simulated clock (:mod:`repro.runtime.timing`), or a
  faulted run's result would depend on host scheduling;
* DET107 — no file writes in rank-visible code outside a declared flush
  boundary: exporting is an observation, not a simulation effect, so
  every write must happen inside a function marked ``# repro: obs-flush``
  (on the ``def`` line or the line above) — the discipline that keeps
  tracing/metrics emission side-effect-free on the simulation path;
* DET108 — no nondeterministic scheduling-order sources in the serving
  layers (``repro.serve`` and the ``repro.shard`` fleet tier): heap
  pushes must carry an explicit tuple entry with a monotonic tie-break
  field, and ``dict.items()`` iteration that can feed queue, batch, or
  routing order must be ``sorted()``;
* DET109 — no environment or filesystem-order reads in rank-visible
  paths: ``os.environ`` / ``os.getenv`` values differ between hosts and
  launches, and ``os.listdir`` / ``os.scandir`` / ``Path.iterdir`` /
  ``.glob`` return entries in OS-dependent order — wrap listings in
  ``sorted()`` or suppress with a documented reason;
* DET110 — no implicit-clock telemetry emission in the serving layers
  (``repro.serve``, ``repro.shard``, ``repro.obs.live``): tracer calls
  must pass an explicit simulated timestamp (``ts_us=``), and the
  phase-window emitters (``span``/``begin``/``end``/``tick_summary``),
  whose timestamps come from the tracer's internal per-tick phase
  counters, are banned there outright — serving-layer events live on
  the service's own simulated clock, and an implicit timestamp would
  silently interleave them with core-simulator phase windows;
* DET111 — no profiler introspection in rank-visible code outside a
  declared host-profiling boundary: ``tracemalloc`` reads,
  ``sys._current_frames``, and ``resource.getrusage`` measure the host
  and may only appear inside functions marked ``# repro: host-prof``
  (on the ``def`` line or the line above) — the discipline that keeps
  the :mod:`repro.obs.prof` layer provably isolated from deterministic
  state and digests;
* DET112 — no host-parallel nondeterminism in rank-visible code outside
  a declared exec-host boundary: ``os.cpu_count()`` /
  ``multiprocessing.cpu_count()`` reads, the fork start method
  (``get_context("fork")``, ``set_start_method("fork")``, ``os.fork``),
  and argless (host-entropy-seeded) RNG construction may only appear
  inside functions marked ``# repro: exec-host`` (on the ``def`` line or
  the line above) — the discipline that keeps the :mod:`repro.exec`
  pool's simulated results independent of the machine they ran on.

``time.perf_counter`` is explicitly allowed: host-time measurement is
observational (it feeds metrics, never rank-visible state).  Likewise
``np.random.default_rng`` and friends are allowed — they construct
explicitly seeded generators, which is exactly the discipline DET102
exists to push code towards.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.check.rules.base import ModuleContext, Rule, register

#: ``time.<attr>`` calls that read the wall clock.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "localtime", "gmtime"}
)

#: ``datetime``/``date`` constructors that read the wall clock.
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: ``np.random.<attr>`` names that are explicitly-seeded constructors,
#: not draws from the hidden global stream.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "SFC64", "MT19937"}
)

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when the base is not a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register
class WallClockRule(Rule):
    rule_id = "DET101"
    title = "wall-clock read in a simulation path"
    rationale = (
        "time.time()/datetime.now() make behaviour depend on when the "
        "simulation runs; simulated time must come from the tick counter "
        "and the timing model.  time.perf_counter() is allowed for host "
        "metrics."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2:
                continue
            if chain[0] == "time" and chain[-1] in _WALL_CLOCK_TIME_ATTRS:
                yield self.violation(
                    ctx, node, f"wall-clock call time.{chain[-1]}() in simulation path"
                )
            elif chain[-1] in _WALL_CLOCK_DATETIME_ATTRS and (
                "datetime" in chain[:-1] or "date" in chain[:-1]
            ):
                yield self.violation(
                    ctx, node, f"wall-clock call {'.'.join(chain)}() in simulation path"
                )


@register
class GlobalRngRule(Rule):
    rule_id = "DET102"
    title = "module-level RNG in a simulation path"
    rationale = (
        "random.* and np.random.* draw from hidden global state shared "
        "across the process, so results depend on call order and on "
        "unrelated code; use an explicitly seeded np.random.default_rng "
        "or repro.util.rng streams."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        imports_random = any(
            (isinstance(n, ast.Import) and any(a.name == "random" for a in n.names))
            or (isinstance(n, ast.ImportFrom) and n.module == "random")
            for n in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] == "random" and imports_random:
                yield self.violation(
                    ctx, node, f"global-state RNG call random.{chain[1]}()"
                )
            elif (
                len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _NP_RANDOM_CONSTRUCTORS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"global-state RNG call {chain[0]}.random.{chain[2]}(); "
                    "use an explicitly seeded default_rng",
                )


@register
class UnorderedIterationRule(Rule):
    rule_id = "DET103"
    title = "iteration over an unordered collection in rank-visible code"
    rationale = (
        "set iteration order is not specified, and dict view order "
        "encodes insertion history that may differ across ranks; wrap "
        "the iterable in sorted() or suppress with a comment explaining "
        "why the order is deterministic."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._scan_iterable(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._scan_iterable(ctx, gen.iter)

    def _scan_iterable(self, ctx: ModuleContext, expr: ast.AST):
        """Flag unordered sources anywhere in the iterable expression,
        skipping subtrees already wrapped in ``sorted()``."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
            ):
                continue  # sorted(...) fixes the order; don't descend
            if isinstance(node, (ast.Set, ast.SetComp)):
                yield self.violation(
                    ctx, node, "iteration over a set has unspecified order; use sorted()"
                )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                    yield self.violation(
                        ctx,
                        node,
                        f"iteration over {node.func.id}() has unspecified order; use sorted()",
                    )
                elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "values",
                    "keys",
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f".{node.func.attr}() iteration order encodes insertion "
                        "history; use sorted() or suppress with a reason",
                    )
            stack.extend(ast.iter_child_nodes(node))


@register
class MutableDefaultRule(Rule):
    rule_id = "DET104"
    title = "mutable default argument"
    rationale = (
        "a mutable default is shared across calls, so one call's state "
        "leaks into the next — hidden cross-call (and cross-rank) "
        "coupling; default to None and construct inside the function."
    )

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx, default, f"mutable default argument in {name}()"
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )


@register
class BroadExceptRule(Rule):
    rule_id = "DET105"
    title = "bare or broad exception handler"
    rationale = (
        "except Exception swallows programming errors (TypeError, "
        "KeyError) along with expected failures, letting a silently "
        "corrupted rank diverge; catch the specific ReproError subclasses "
        "from repro.errors and let the rest propagate."
    )

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            if self._reraises(node):
                continue
            what = "bare except:" if node.type is None else f"except {node.type.id}"
            yield self.violation(
                ctx,
                node,
                f"{what} without re-raise; catch specific repro.errors types",
            )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """True when the handler body contains a bare ``raise``."""
        return any(
            isinstance(n, ast.Raise) and n.exc is None for n in ast.walk(handler)
        )


#: ``signal.<attr>`` calls that arm host-clock timers.
_HOST_TIMER_SIGNAL_ATTRS = frozenset({"alarm", "setitimer"})

#: Attribute calls that install host-clock deadlines on I/O objects.
_HOST_TIMEOUT_METHODS = frozenset({"settimeout", "setdefaulttimeout"})


@register
class HostClockWaitRule(Rule):
    rule_id = "DET106"
    title = "host-clock wait or timeout in a recovery/simulation path"
    rationale = (
        "time.sleep(), signal.alarm()/setitimer(), socket timeouts, and "
        "timeout= arguments gate progress on the host scheduler, so a "
        "faulted run's behaviour (which retry fires, which rank is "
        "declared dead first) would vary run to run; recovery backoff "
        "and failure detection must advance on the simulated clock "
        "(repro.runtime.timing / the tick counter)."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] == "time" and chain[1] == "sleep":
                yield self.violation(
                    ctx, node, "time.sleep() blocks on the host clock; model the "
                    "wait in simulated seconds instead"
                )
            elif (
                len(chain) == 2
                and chain[0] == "signal"
                and chain[1] in _HOST_TIMER_SIGNAL_ATTRS
            ):
                yield self.violation(
                    ctx, node, f"signal.{chain[1]}() arms a host-clock timer; use "
                    "a simulated-time deadline (runtime.collectives.phase_timeout)"
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _HOST_TIMEOUT_METHODS
            ):
                yield self.violation(
                    ctx, node, f".{node.func.attr}() installs a host-clock "
                    "deadline; failure detection must use simulated time"
                )
            else:
                yield from self._timeout_kwarg(ctx, node)

    def _timeout_kwarg(self, ctx: ModuleContext, node: ast.Call):
        for kw in node.keywords:
            if kw.arg != "timeout":
                continue
            if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                continue  # timeout=None means "wait forever", not a deadline
            yield self.violation(
                ctx, node, "timeout= gates a blocking call on the host clock; "
                "derive deadlines from the simulated timing model"
            )


#: Marks a function as a declared observability flush boundary.
_OBS_FLUSH_RE = re.compile(r"#\s*repro:\s*obs-flush")

#: Two-part attribute chains that serialise straight to a file.
_FILE_DUMP_CHAINS = frozenset(
    {
        ("json", "dump"),
        ("pickle", "dump"),
        ("np", "save"),
        ("np", "savez"),
        ("np", "savez_compressed"),
        ("np", "savetxt"),
        ("numpy", "save"),
        ("numpy", "savez"),
        ("numpy", "savez_compressed"),
        ("numpy", "savetxt"),
    }
)

#: Path-object methods that write their receiver's file.
_FILE_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


@register
class FlushBoundaryRule(Rule):
    rule_id = "DET107"
    title = "file write outside an observability flush boundary"
    rationale = (
        "simulation-path code must stay side-effect-free: exporting "
        "traces, metrics, models, or checkpoints is an *observation* and "
        "belongs in a function explicitly marked '# repro: obs-flush' (on "
        "the def line or the line above), so every byte leaving the "
        "process goes through a declared, auditable flush boundary."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        lines = ctx.source.splitlines()
        yield from self._scan(ctx, ctx.tree, False, lines)

    def _scan(self, ctx: ModuleContext, node: ast.AST, exempt: bool, lines):
        for child in ast.iter_child_nodes(node):
            child_exempt = exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = exempt or self._is_flush(child, lines)
            if isinstance(child, ast.Call) and not child_exempt:
                yield from self._check_call(ctx, child)
            yield from self._scan(ctx, child, child_exempt, lines)

    @staticmethod
    def _is_flush(node: ast.AST, lines: list[str]) -> bool:
        """Marked on the ``def`` line or the line immediately above it."""
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines) and _OBS_FLUSH_RE.search(lines[lineno - 1]):
                return True
        return False

    def _check_call(self, ctx: ModuleContext, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = node.args[1] if len(node.args) >= 2 else None
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if mode is None:
                return  # default mode "r" only reads
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and not any(c in mode.value for c in "wax+")
            ):
                return  # provably read-only
            yield self.violation(
                ctx,
                node,
                "open() for writing outside an obs-flush function; mark the "
                "enclosing function '# repro: obs-flush' or route output "
                "through the repro.obs exporters",
            )
            return
        if isinstance(func, ast.Attribute) and func.attr in _FILE_WRITE_METHODS:
            yield self.violation(
                ctx,
                node,
                f".{func.attr}() writes a file outside an obs-flush function",
            )
            return
        chain = _attr_chain(func)
        if len(chain) == 2 and (chain[0], chain[1]) in _FILE_DUMP_CHAINS:
            yield self.violation(
                ctx,
                node,
                f"{chain[0]}.{chain[1]}() serialises to a file outside an "
                "obs-flush function",
            )


#: heapq mutators whose entry argument decides pop order.
_HEAP_PUSH_FUNCS = frozenset({"heappush", "heappushpop", "heapreplace"})


@register
class SchedulingOrderRule(Rule):
    rule_id = "DET108"
    title = "nondeterministic scheduling source in the serving layer"
    rationale = (
        "the service's schedule IS its output: a heap entry without an "
        "explicit tuple carrying a monotonic tie-break field falls back "
        "to comparing payload objects (or raises on ties), and dict "
        ".items() order encodes insertion history — either can reorder "
        "equal-priority jobs between runs.  Push (priority, ..., seq) "
        "tuples and wrap .items() iteration in sorted()."
    )

    #: Directory names whose modules carry scheduling state: the
    #: single-cluster service (repro.serve) and the fleet tier above it
    #: (repro.shard) — ring walks, routing, and autoscale decisions are
    #: schedule-defining in exactly the same way queue pops are.
    _SCOPED_DIRS = frozenset({"serve", "shard"})

    @classmethod
    def _in_scope(cls, path: str) -> bool:
        return not cls._SCOPED_DIRS.isdisjoint(Path(path).parts)

    def check(self, ctx: ModuleContext):
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_heap_push(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._scan_items(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._scan_items(ctx, gen.iter)

    def _check_heap_push(self, ctx: ModuleContext, node: ast.Call):
        chain = _attr_chain(node.func)
        named = isinstance(node.func, ast.Name) and node.func.id in _HEAP_PUSH_FUNCS
        qualified = (
            len(chain) == 2 and chain[0] == "heapq" and chain[1] in _HEAP_PUSH_FUNCS
        )
        if not (named or qualified):
            return
        fname = chain[-1] if qualified else node.func.id
        if len(node.args) < 2:
            return
        entry = node.args[1]
        if isinstance(entry, ast.Tuple) and len(entry.elts) >= 2:
            return
        yield self.violation(
            ctx,
            node,
            f"{fname}() entry is not an explicit tuple with a tie-break "
            "field; push (priority, ..., seq, payload) so equal-priority "
            "pops are deterministic",
        )

    def _scan_items(self, ctx: ModuleContext, expr: ast.AST):
        """Flag ``.items()`` sources not wrapped in ``sorted()``."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
            ):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "items"
            ):
                yield self.violation(
                    ctx,
                    node,
                    ".items() iteration order encodes insertion history and "
                    "can feed the schedule; wrap it in sorted()",
                )
            stack.extend(ast.iter_child_nodes(node))


#: ``os.<attr>`` calls that list a directory in OS-dependent order.
_FS_LIST_OS_FUNCS = frozenset({"listdir", "scandir"})

#: Path-object methods that yield entries in OS-dependent order.
_FS_LIST_METHODS = frozenset({"iterdir", "glob", "rglob"})


@register
class EnvFsOrderRule(Rule):
    rule_id = "DET109"
    title = "environment or filesystem-order read in a rank-visible path"
    rationale = (
        "os.environ / os.getenv values vary across hosts and launches, "
        "and os.listdir / os.scandir / Path.iterdir / .glob yield "
        "entries in OS-dependent order, so any rank-visible value "
        "derived from them differs run to run; sort directory listings "
        "with sorted() and keep environment reads out of simulation "
        "paths (or suppress with a documented reason)."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        imports_os = any(
            (isinstance(n, ast.Import) and any(
                a.name == "os" or a.name.startswith("os.") for a in n.names
            ))
            or (isinstance(n, ast.ImportFrom) and n.module == "os")
            for n in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if imports_os and isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain[:2] in (["os", "environ"], ["os", "environb"]):
                    yield self.violation(
                        ctx,
                        node,
                        f"os.{chain[1]} read in a rank-visible path; "
                        "environment state differs across hosts and launches",
                    )
            elif imports_os and isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) == 2 and chain[0] == "os" and chain[1] == "getenv":
                    yield self.violation(
                        ctx,
                        node,
                        "os.getenv() read in a rank-visible path; environment "
                        "state differs across hosts and launches",
                    )
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._scan_listing(ctx, node.iter, imports_os)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._scan_listing(ctx, gen.iter, imports_os)

    def _scan_listing(self, ctx: ModuleContext, expr: ast.AST, imports_os: bool):
        """Flag unsorted directory-listing iterables, skipping subtrees
        already wrapped in ``sorted()`` (the DET103 convention)."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
            ):
                continue
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    imports_os
                    and len(chain) == 2
                    and chain[0] == "os"
                    and chain[1] in _FS_LIST_OS_FUNCS
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"iteration over os.{chain[1]}() is OS-order-"
                        "dependent; wrap it in sorted()",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_LIST_METHODS
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"iteration over .{node.func.attr}() is OS-order-"
                        "dependent; wrap it in sorted()",
                    )
            stack.extend(ast.iter_child_nodes(node))


#: Tracer methods that accept an explicit simulated timestamp.
_EXPLICIT_TS_METHODS = frozenset({"instant", "complete", "flow"})

#: Tracer methods timestamped by the tracer's internal phase counters.
_PHASE_CLOCK_METHODS = frozenset({"span", "begin", "end", "tick_summary"})


@register
class ExplicitTimestampRule(Rule):
    rule_id = "DET110"
    title = "implicit-clock telemetry emission in the serving layer"
    rationale = (
        "serving-layer events (queue, batch, route, rollup, alert) live "
        "on the service's simulated clock, but the tracer's span/begin/"
        "end/tick_summary methods stamp events from internal per-tick "
        "phase counters — an implicit timestamp would interleave service "
        "events with core-simulator phase windows and break byte-"
        "identical traces across rank layouts.  Emit with instant/"
        "complete/flow and pass ts_us= explicitly."
    )

    #: Directory names whose modules emit on the service clock: the
    #: single-cluster service, the fleet tier, and the live-telemetry
    #: pipeline (``repro/obs/live`` — matched as the consecutive pair so
    #: the post-hoc ``repro/obs`` analysis modules stay out of scope).
    _SCOPED_DIRS = frozenset({"serve", "shard"})

    @classmethod
    def _in_scope(cls, path: str) -> bool:
        parts = Path(path).parts
        if not cls._SCOPED_DIRS.isdisjoint(parts):
            return True
        return any(a == "obs" and b == "live" for a, b in zip(parts, parts[1:]))

    def check(self, ctx: ModuleContext):
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2:
                continue
            receiver, method = chain[:-1], chain[-1]
            if not any("tracer" in part.lower() for part in receiver):
                continue
            if method in _PHASE_CLOCK_METHODS:
                yield self.violation(
                    ctx,
                    node,
                    f".{method}() stamps events from the tracer's phase "
                    "counters; serving-layer code must emit instant/"
                    "complete/flow with an explicit ts_us=",
                )
            elif method in _EXPLICIT_TS_METHODS:
                ts = next(
                    (kw.value for kw in node.keywords if kw.arg == "ts_us"), None
                )
                if ts is None or (
                    isinstance(ts, ast.Constant) and ts.value is None
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f".{method}() without an explicit simulated "
                        "timestamp; pass ts_us= from the service clock",
                    )


#: Marks a function as a declared host-profiling boundary.
_HOST_PROF_RE = re.compile(r"#\s*repro:\s*host-prof")

#: Attribute-chain tails that introspect host execution state.  Any
#: ``tracemalloc.*`` call counts; the rest are matched as exact chains.
_HOST_INTROSPECTION_CHAINS = frozenset(
    {
        ("sys", "_current_frames"),
        ("sys", "settrace"),
        ("sys", "setprofile"),
        ("resource", "getrusage"),
    }
)


@register
class HostProfBoundaryRule(Rule):
    rule_id = "DET111"
    title = "profiler introspection outside a host-prof boundary"
    rationale = (
        "tracemalloc reads, sys._current_frames(), and resource.getrusage "
        "measure the host interpreter — values that differ between "
        "machines and runs.  Rank-visible code may only touch them inside "
        "a function explicitly marked '# repro: host-prof' (on the def "
        "line or the line above), keeping the repro.obs.prof layer "
        "provably unable to leak host state into deterministic digests."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        lines = ctx.source.splitlines()
        yield from self._scan(ctx, ctx.tree, False, lines)

    def _scan(self, ctx: ModuleContext, node: ast.AST, exempt: bool, lines):
        for child in ast.iter_child_nodes(node):
            child_exempt = exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = exempt or self._is_host_prof(child, lines)
            if isinstance(child, ast.Call) and not child_exempt:
                yield from self._check_call(ctx, child)
            yield from self._scan(ctx, child, child_exempt, lines)

    @staticmethod
    def _is_host_prof(node: ast.AST, lines: list[str]) -> bool:
        """Marked on the ``def`` line or the line immediately above it."""
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines) and _HOST_PROF_RE.search(lines[lineno - 1]):
                return True
        return False

    def _check_call(self, ctx: ModuleContext, node: ast.Call):
        chain = _attr_chain(node.func)
        if len(chain) < 2:
            return
        if chain[0] == "tracemalloc":
            yield self.violation(
                ctx,
                node,
                f"tracemalloc.{'.'.join(chain[1:])}() reads host allocator "
                "state outside a '# repro: host-prof' function",
            )
        elif tuple(chain) in _HOST_INTROSPECTION_CHAINS:
            yield self.violation(
                ctx,
                node,
                f"{'.'.join(chain)}() introspects host execution outside a "
                "'# repro: host-prof' function",
            )


#: Marks a function as declared host-execution territory (worker-count
#: decisions, spawn plumbing) where host-core facts may be consulted.
_EXEC_HOST_RE = re.compile(r"#\s*repro:\s*exec-host")

#: Call-chain tails that read the host core count.
_CPU_COUNT_TAILS = frozenset({"cpu_count", "process_cpu_count"})

#: RNG constructors that must never be built unseeded in rank-visible
#: code: an argless construction seeds from host entropy, so two host
#: workers would disagree with the sequential backend.
_UNSEEDED_RNG_NAMES = frozenset(
    {"default_rng", "Random", "SeedSequence", "PCG64", "Philox", "SFC64", "MT19937"}
)


@register
class ExecHostBoundaryRule(Rule):
    rule_id = "DET112"
    title = "host-parallel nondeterminism outside an exec-host boundary"
    rationale = (
        "Host-core counts, the fork start method, and unseeded per-worker "
        "RNG construction make simulated results depend on the machine the "
        "run landed on.  os.cpu_count()/multiprocessing.cpu_count() may "
        "steer host worker counts only inside a function explicitly marked "
        "'# repro: exec-host' (on the def line or the line above); the "
        "fork start method (get_context('fork'), set_start_method('fork'), "
        "os.fork) inherits parent interpreter state workers must not see "
        "— the pool backends spawn; and every worker-side RNG must be "
        "constructed from an explicit model-derived seed."
    )
    rank_visible_only = True

    def check(self, ctx: ModuleContext):
        lines = ctx.source.splitlines()
        yield from self._scan(ctx, ctx.tree, False, lines)

    def _scan(self, ctx: ModuleContext, node: ast.AST, exempt: bool, lines):
        for child in ast.iter_child_nodes(node):
            child_exempt = exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = exempt or self._is_exec_host(child, lines)
            if isinstance(child, ast.Call):
                yield from self._check_call(ctx, child, child_exempt)
            yield from self._scan(ctx, child, child_exempt, lines)

    @staticmethod
    def _is_exec_host(node: ast.AST, lines: list[str]) -> bool:
        """Marked on the ``def`` line or the line immediately above it."""
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines) and _EXEC_HOST_RE.search(lines[lineno - 1]):
                return True
        return False

    @staticmethod
    def _forks(node: ast.Call) -> bool:
        """First argument is the string constant ``"fork"``/``"forkserver"``."""
        args = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg == "method"
        ]
        return any(
            isinstance(a, ast.Constant) and a.value in ("fork", "forkserver")
            for a in args
        )

    def _check_call(self, ctx: ModuleContext, node: ast.Call, exempt: bool):
        chain = _attr_chain(node.func)
        if not chain:
            return
        tail = chain[-1]
        if not exempt and len(chain) >= 2 and tail in _CPU_COUNT_TAILS:
            yield self.violation(
                ctx,
                node,
                f"{'.'.join(chain)}() reads the host core count outside a "
                "'# repro: exec-host' function; derive worker counts from "
                "the layout, not the machine",
            )
        elif len(chain) == 2 and chain == ["os", "fork"]:
            yield self.violation(
                ctx,
                node,
                "os.fork() clones live interpreter state into the child; "
                "pool workers must spawn",
            )
        elif tail in ("get_context", "set_start_method") and self._forks(node):
            yield self.violation(
                ctx,
                node,
                f"{'.'.join(chain)}() selects the fork start method — "
                "forked workers inherit parent RNG and buffer state; use "
                "'spawn'",
            )
        elif (
            tail in _UNSEEDED_RNG_NAMES
            and not node.args
            and not node.keywords
        ):
            yield self.violation(
                ctx,
                node,
                f"{'.'.join(chain)}() constructs an unseeded RNG — per-"
                "worker streams must be seeded from the model "
                "(network seed + rank), never from host entropy",
            )
