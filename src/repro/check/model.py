"""Compile-time model checking with structured diagnostics.

:mod:`repro.compiler.verification` answers "does the compiled network
deliver what its CoreObject promised?" — a statistical regression check.
This module asks a stricter, structural question: **can this model be
simulated at all without undefined behaviour?**  Every check produces a
:class:`Diagnostic` (a stable ``check_id``, a severity, and a machine-
readable context dict) so callers and CI can diff reports across runs.

Checks:

* ``region_layout``        — region gid ranges contiguous, ordered, and
  matching the CoreObject's core counts;
* ``dangling_axon_target`` — every connected neuron points at a core
  and axon that exist, with a legal delay;
* ``crossbar_index_bounds`` — crossbar storage has the right packed
  shape, padding bits beyond ``num_neurons`` are clear, and every axon
  type indexes a real entry of the 4-type weight table;
* ``ipfp_balance``         — region in/out connection degrees fit the
  neuron/axon capacity (the invariant the IPFP step establishes);
  explicit marginal targets can be supplied for balanced models;
* ``placement_capacity``   — the region-aligned partition gives every
  rank at least one core (a region cannot be split across more
  processes than it has cores).

:class:`ParallelCompassCompiler` runs :func:`check_model` automatically
at the end of every compilation unless constructed with
``model_check=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.params import MAX_DELAY, NUM_AXON_TYPES
from repro.compiler.pcc import CompiledModel
from repro.errors import CompilationError

#: Number of offending entries echoed into a diagnostic's context.
_MAX_EXAMPLES = 5


@dataclass(frozen=True)
class Diagnostic:
    """One model-checker finding."""

    check_id: str
    severity: str  #: "error", "warning", or "info"
    message: str
    context: dict = field(default_factory=dict)

    def format(self) -> str:
        return f"{self.severity.upper()} [{self.check_id}] {self.message}"


@dataclass
class ModelCheckReport:
    """All diagnostics from one :func:`check_model` run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def passed(self) -> bool:
        return not self.errors

    def add(self, check_id: str, severity: str, message: str, **context) -> None:
        self.diagnostics.append(Diagnostic(check_id, severity, message, context))

    def format(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            "model check passed"
            if self.passed
            else f"model check failed: {len(self.errors)} error(s)"
        )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.passed:
            summary = "; ".join(f"{d.check_id}: {d.message}" for d in self.errors)
            raise CompilationError(f"model check failed: {summary}")


def check_model(
    compiled: CompiledModel,
    ipfp_tolerance: float = 0.05,
    row_targets: np.ndarray | None = None,
    col_targets: np.ndarray | None = None,
) -> ModelCheckReport:
    """Run every structural check on a compiled model."""
    report = ModelCheckReport()
    _check_region_layout(compiled, report)
    _check_dangling_targets(compiled.network, report)
    _check_crossbar_bounds(compiled.network, report)
    matrix = compiled.coreobject.connection_matrix()
    out_caps = np.array(
        [r.n_cores * compiled.network.num_neurons for r in compiled.coreobject.regions],
        dtype=np.int64,
    )
    in_caps = np.array(
        [r.n_cores * compiled.network.num_axons for r in compiled.coreobject.regions],
        dtype=np.int64,
    )
    names = [r.name for r in compiled.coreobject.regions]
    for diag in check_ipfp_balance(
        matrix,
        out_caps,
        in_caps,
        names=names,
        tolerance=ipfp_tolerance,
        row_targets=row_targets,
        col_targets=col_targets,
    ):
        report.diagnostics.append(diag)
    _check_placement(compiled, report)
    return report


# -- individual checks ---------------------------------------------------------


def _check_region_layout(compiled: CompiledModel, report: ModelCheckReport) -> None:
    cursor = 0
    for region in compiled.coreobject.regions:
        span = compiled.region_ranges.get(region.name)
        if span is None:
            report.add(
                "region_layout",
                "error",
                f"region {region.name!r} has no gid range",
                region=region.name,
            )
            return
        lo, hi = span
        if lo != cursor or hi - lo != region.n_cores:
            report.add(
                "region_layout",
                "error",
                f"region {region.name!r} occupies [{lo}, {hi}) but should "
                f"occupy [{cursor}, {cursor + region.n_cores})",
                region=region.name,
                expected=(cursor, cursor + region.n_cores),
                actual=(lo, hi),
            )
            return
        cursor = hi
    if cursor != compiled.network.n_cores:
        report.add(
            "region_layout",
            "error",
            f"regions cover {cursor} cores but the network has "
            f"{compiled.network.n_cores}",
            covered=cursor,
            n_cores=compiled.network.n_cores,
        )


def _check_dangling_targets(network, report: ModelCheckReport) -> None:
    src_core, src_neuron = np.nonzero(network.target_gid >= 0)
    gid = network.target_gid[src_core, src_neuron]
    axon = network.target_axon[src_core, src_neuron]
    delay = network.target_delay[src_core, src_neuron]
    bad = (
        (gid >= network.n_cores)
        | (axon < 0)
        | (axon >= network.num_axons)
        | (delay < 1)
        | (delay > MAX_DELAY)
    )
    n_bad = int(bad.sum())
    if n_bad == 0:
        report.add(
            "dangling_axon_target",
            "info",
            f"all {gid.size} connections target existing (core, axon) pairs",
            connections=int(gid.size),
        )
        return
    idx = np.nonzero(bad)[0][:_MAX_EXAMPLES]
    examples = [
        {
            "src_core": int(src_core[i]),
            "src_neuron": int(src_neuron[i]),
            "target_gid": int(gid[i]),
            "target_axon": int(axon[i]),
            "delay": int(delay[i]),
        }
        for i in idx
    ]
    report.add(
        "dangling_axon_target",
        "error",
        f"{n_bad} connection(s) point outside the network "
        f"(cores < {network.n_cores}, axons < {network.num_axons}, "
        f"delays 1..{MAX_DELAY})",
        count=n_bad,
        examples=examples,
    )


def _check_crossbar_bounds(network, report: ModelCheckReport) -> None:
    expected_shape = (
        network.n_cores,
        network.num_axons,
        (network.num_neurons + 7) // 8,
    )
    if network.crossbars.shape != expected_shape:
        report.add(
            "crossbar_index_bounds",
            "error",
            f"crossbar storage has shape {network.crossbars.shape}, "
            f"expected {expected_shape}",
            actual=tuple(network.crossbars.shape),
            expected=expected_shape,
        )
        return
    pad_bits = network.crossbars.shape[-1] * 8 - network.num_neurons
    if pad_bits:
        # Set bits beyond num_neurons would address nonexistent neurons
        # when the packed rows are expanded in the synapse phase.
        pad_mask = (0xFF << (8 - pad_bits)) & 0xFF
        dirty = int((network.crossbars[..., -1] & pad_mask).any())
        if dirty:
            report.add(
                "crossbar_index_bounds",
                "error",
                f"crossbar padding bits beyond neuron {network.num_neurons} "
                "are set; packed rows would address nonexistent neurons",
                pad_bits=pad_bits,
            )
            return
    max_type = int(network.axon_types.max(initial=0))
    if max_type >= NUM_AXON_TYPES:
        bad_cores = np.unique(
            np.nonzero(network.axon_types >= NUM_AXON_TYPES)[0]
        )[:_MAX_EXAMPLES]
        report.add(
            "crossbar_index_bounds",
            "error",
            f"axon type {max_type} indexes past the {NUM_AXON_TYPES}-entry "
            "weight table",
            max_type=max_type,
            example_cores=[int(c) for c in bad_cores],
        )
        return
    report.add(
        "crossbar_index_bounds",
        "info",
        "crossbar shape, padding bits, and axon types are in bounds",
    )


def check_ipfp_balance(
    matrix: np.ndarray,
    out_caps: np.ndarray,
    in_caps: np.ndarray,
    names: list[str] | None = None,
    tolerance: float = 0.05,
    row_targets: np.ndarray | None = None,
    col_targets: np.ndarray | None = None,
) -> list[Diagnostic]:
    """Check a region connection matrix against capacity and balance.

    Capacity overflow (a region demanding more neurons or axons than it
    has) is always an **error** — the wiring stage would raise
    :class:`~repro.errors.WiringError` mid-compile.  When explicit
    ``row_targets`` / ``col_targets`` are given (a model that claims IPFP
    balance, like the CoCoMac pipeline's), marginals deviating beyond
    ``tolerance`` (relative) are errors too; without targets, imbalance
    between a region's in- and out-utilisation is reported as info.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    row_sums = matrix.sum(axis=1)
    col_sums = matrix.sum(axis=0)
    n = matrix.shape[0]
    names = names if names is not None else [str(i) for i in range(n)]
    diags: list[Diagnostic] = []
    for i in range(n):
        if row_sums[i] > out_caps[i]:
            diags.append(
                Diagnostic(
                    "ipfp_balance",
                    "error",
                    f"region {names[i]!r}: {int(row_sums[i])} outgoing "
                    f"connections exceed {int(out_caps[i])} neurons",
                    {"region": names[i], "out": int(row_sums[i]), "cap": int(out_caps[i])},
                )
            )
        if col_sums[i] > in_caps[i]:
            diags.append(
                Diagnostic(
                    "ipfp_balance",
                    "error",
                    f"region {names[i]!r}: {int(col_sums[i])} incoming "
                    f"connections exceed {int(in_caps[i])} axons",
                    {"region": names[i], "in": int(col_sums[i]), "cap": int(in_caps[i])},
                )
            )
    if row_targets is not None or col_targets is not None:
        for targets, sums, which in (
            (row_targets, row_sums, "row"),
            (col_targets, col_sums, "column"),
        ):
            if targets is None:
                continue
            targets = np.asarray(targets, dtype=float)
            scale = np.where(targets > 0, targets, 1.0)
            rel = np.abs(sums - targets) / scale
            worst = int(np.argmax(rel))
            if rel[worst] > tolerance:
                diags.append(
                    Diagnostic(
                        "ipfp_balance",
                        "error",
                        f"{which} marginal of region {names[worst]!r} is "
                        f"{int(sums[worst])}, off its balance target "
                        f"{targets[worst]:g} by {rel[worst]:.1%} "
                        f"(tolerance {tolerance:.1%})",
                        {
                            "region": names[worst],
                            "actual": int(sums[worst]),
                            "target": float(targets[worst]),
                            "relative_error": float(rel[worst]),
                        },
                    )
                )
    if not any(d.severity == "error" for d in diags):
        out_util = row_sums / np.maximum(out_caps, 1)
        in_util = col_sums / np.maximum(in_caps, 1)
        diags.append(
            Diagnostic(
                "ipfp_balance",
                "info",
                f"capacities respected; peak utilisation out={out_util.max():.0%} "
                f"in={in_util.max():.0%}",
                {
                    "max_out_utilisation": float(out_util.max()),
                    "max_in_utilisation": float(in_util.max()),
                },
            )
        )
    return diags


def _check_placement(compiled: CompiledModel, report: ModelCheckReport) -> None:
    n_regions = len(compiled.coreobject.regions)
    try:
        partition = compiled.partition_for(n_regions)
    except ValueError as exc:
        # A degenerate layout (e.g. a zero-width region) cannot even
        # produce boundaries; report it rather than crash the checker.
        report.add(
            "placement_capacity",
            "error",
            f"region-aligned partition for {n_regions} processes is "
            f"degenerate: {exc}",
            n_processes=n_regions,
        )
        return
    sizes = np.array(
        [
            partition.range_of_rank(r)[1] - partition.range_of_rank(r)[0]
            for r in range(partition.n_ranks)
        ]
    )
    covered = int(sizes.sum())
    if covered != compiled.network.n_cores or (sizes <= 0).any():
        empty = [int(r) for r in np.nonzero(sizes <= 0)[0][:_MAX_EXAMPLES]]
        report.add(
            "placement_capacity",
            "error",
            f"region-aligned partition for {n_regions} processes covers "
            f"{covered}/{compiled.network.n_cores} cores with "
            f"{len(empty)} empty rank(s)",
            empty_ranks=empty,
            covered=covered,
        )
        return
    report.add(
        "placement_capacity",
        "info",
        f"region-aligned partition for {n_regions} processes is full and "
        "non-empty",
        n_processes=n_regions,
    )
