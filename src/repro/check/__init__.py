"""Determinism sanitizer: static and dynamic correctness tooling.

Compass's headline results — perfect weak scaling and one-to-one spike
correspondence across partitionings — only hold if the simulation is
bit-deterministic across rank counts and interleavings.  This package is
the tooling that keeps that property enforced rather than assumed:

* :mod:`repro.check.lint` — an AST-based lint engine with determinism
  rules (no wall-clock or global-RNG calls in simulation paths, no
  unordered iteration in rank-visible code, no mutable default
  arguments, no broad exception handlers);
* :mod:`repro.check.flow` — an interprocedural nondeterminism taint
  analysis (the FLOW rule series) proving no nondeterminism source
  reaches a rank-visible sink unsanitized, with witness paths, SARIF
  output, and a committed-baseline gate;
* :mod:`repro.check.races` — a happens-before race detector for the
  virtual cluster, built on vector clocks attached to simulated ranks
  and threads;
* :mod:`repro.check.model` — a compile-time model checker run at the end
  of every PCC compilation (dangling axon targets, crossbar index
  bounds, IPFP balance, placement capacity);
* :mod:`repro.check.serialize` — the shared finding serializer behind
  ``--format text|json|sarif`` on every checker subcommand.

All are exposed through ``repro-compass check {lint,flow,races,model}``.
"""

from repro.check.flow import FlowFinding, FlowReport, run_flow
from repro.check.lint import LintReport, run_lint
from repro.check.model import Diagnostic, ModelCheckReport, check_model
from repro.check.races import HappensBeforeDetector, Race, RaceReport, VectorClock
from repro.check.serialize import CheckResult, to_json, to_sarif

__all__ = [
    "CheckResult",
    "Diagnostic",
    "FlowFinding",
    "FlowReport",
    "HappensBeforeDetector",
    "LintReport",
    "ModelCheckReport",
    "Race",
    "RaceReport",
    "VectorClock",
    "check_model",
    "run_flow",
    "run_lint",
    "to_json",
    "to_sarif",
]
