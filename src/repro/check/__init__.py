"""Determinism sanitizer: static and dynamic correctness tooling.

Compass's headline results — perfect weak scaling and one-to-one spike
correspondence across partitionings — only hold if the simulation is
bit-deterministic across rank counts and interleavings.  This package is
the tooling that keeps that property enforced rather than assumed:

* :mod:`repro.check.lint` — an AST-based lint engine with determinism
  rules (no wall-clock or global-RNG calls in simulation paths, no
  unordered iteration in rank-visible code, no mutable default
  arguments, no broad exception handlers);
* :mod:`repro.check.races` — a happens-before race detector for the
  virtual cluster, built on vector clocks attached to simulated ranks
  and threads;
* :mod:`repro.check.model` — a compile-time model checker run at the end
  of every PCC compilation (dangling axon targets, crossbar index
  bounds, IPFP balance, placement capacity).

All three are exposed through ``repro-compass check {lint,races,model}``.
"""

from repro.check.lint import LintReport, run_lint
from repro.check.model import Diagnostic, ModelCheckReport, check_model
from repro.check.races import HappensBeforeDetector, Race, RaceReport, VectorClock

__all__ = [
    "Diagnostic",
    "HappensBeforeDetector",
    "LintReport",
    "ModelCheckReport",
    "Race",
    "RaceReport",
    "VectorClock",
    "check_model",
    "run_lint",
]
