"""Unit helpers: human-readable sizes/times and a few physical constants.

The performance layer reports numbers at Blue Gene scale (GB/tick, racks,
hundreds of seconds); these helpers keep the report code tidy and make the
benchmark output self-describing.
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

#: Wall-clock duration of one simulated TrueNorth tick (§II: 1000 Hz clock).
TICK_SECONDS = 1e-3

#: Spike wire format size used by the paper's bandwidth estimate (§VI-B).
SPIKE_BYTES = 20


def fmt_count(n: float) -> str:
    """Format a count with K/M/B/T suffix, matching the paper's usage."""
    n = float(n)
    for factor, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(n) >= factor:
            return f"{n / factor:.3g}{suffix}"
    return f"{n:.3g}"


def fmt_bytes(n: float) -> str:
    """Format a byte count in binary units."""
    n = float(n)
    for factor, suffix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if abs(n) >= factor:
            return f"{n / factor:.3g} {suffix}"
    return f"{n:.3g} B"


def fmt_seconds(s: float) -> str:
    """Format a duration, switching units below one second."""
    if s >= 1.0:
        return f"{s:.3g} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3g} ms"
    if s >= 1e-6:
        return f"{s * 1e6:.3g} us"
    return f"{s * 1e9:.3g} ns"


def slowdown_vs_realtime(wall_seconds: float, ticks: int) -> float:
    """How many times slower than real time a run was.

    The paper's headline "388× slower than real time" is
    ``194 s / (500 ticks × 1 ms)``.
    """
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    return wall_seconds / (ticks * TICK_SECONDS)
