"""The single sanctioned host-clock accessor (HOST-ONLY).

Simulated-timeline code must never consult the host clock: failure
detection, recovery backoff, scheduling, and SLO accounting all advance
on simulated time (rules DET101/DET106).  The one legitimate use of the
host clock is *measurement* — reporting how many host seconds a phase of
the virtual cluster cost — and every such read goes through
:func:`host_perf_counter` so the intent is explicit and grep-able.

Importing this module from code that feeds rank-visible *state* is a
design error even though the lint engine cannot prove it; the marker in
the function name is the contract.
"""

from __future__ import annotations

import time


def host_perf_counter() -> float:
    """Monotonic host seconds — for host-cost *measurement* only.

    The returned value must never influence simulated behaviour: no
    branching on it, no feeding it into simulated timers, schedules, or
    deadlines.  It exists solely so ``RunMetrics.host`` can report what
    the simulation cost the machine it ran on.
    """
    return time.perf_counter()


def host_perf_counter_ns() -> int:
    """Monotonic host nanoseconds — same contract as :func:`host_perf_counter`.

    Integer nanoseconds avoid float rounding when the host profiler
    (:mod:`repro.obs.prof`) accumulates many short phase intervals; the
    value is host-only measurement data and must never feed rank-visible
    state.
    """
    return time.perf_counter_ns()
