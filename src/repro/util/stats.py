"""Small statistics helpers shared by the model builders and reports.

The robust helpers (:func:`median`, :func:`mad`, :func:`robust_outlier`,
:func:`max_over_mean`) are pure Python on plain floats — exact, order-
stable, and shared by the perf-regression gate
(:mod:`repro.obs.analysis.regress`) and the imbalance analyzer
(:mod:`repro.obs.analysis.imbalance`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Consistency constant: 1.4826·MAD estimates the standard deviation of
#: normally distributed data.
MAD_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    """Exact median of a non-empty sequence (mean of the middle two)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("median of empty sequence")
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median (unscaled)."""
    center = median(values)
    return median([abs(float(v) - center) for v in values])


def robust_outlier(
    value: float,
    baseline: Sequence[float],
    k: float = 4.0,
    rel_tol: float = 0.15,
    min_n: int = 4,
) -> bool:
    """Is ``value`` a high-side outlier against ``baseline``?

    With ``min_n`` or more baseline points the threshold is the robust
    ``median + k·1.4826·MAD``, floored at ``median·(1+rel_tol)`` so a
    degenerate zero-MAD history (identical repeats) still tolerates
    measurement noise.  Shorter histories fall back to the pure relative
    tolerance.  Only regressions (``value`` above the baseline) count —
    improvements are never outliers.
    """
    center = median(baseline)
    rel_threshold = center + rel_tol * abs(center)
    if len(baseline) < min_n:
        return value > rel_threshold
    mad_threshold = center + k * MAD_SIGMA * mad(baseline)
    return value > max(mad_threshold, rel_threshold)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sequence (exact, stable).

    ``q`` is in [0, 100].  The nearest-rank convention returns an actual
    observed value (never an interpolation), so latency reports built
    from it are byte-identical whenever the underlying simulated
    latencies are — the property the serving-layer SLO accounting
    (:mod:`repro.serve`) relies on.
    """
    return percentile_sorted(sorted(float(v) for v in values), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an *already sorted* sequence.

    The hierarchical fleet reduction (:mod:`repro.shard.fleet`) merges
    pre-sorted per-shard latency lists with ``heapq.merge`` and reads
    percentiles straight off the merged sequence; re-sorting there would
    turn the O(N log S) merge back into a flat O(N log N) sort.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q={q!r} outside [0, 100]")
    if q == 0.0:
        return float(ordered[0])
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[rank - 1])


def max_over_mean(values: Sequence[float]) -> float:
    """Max/mean imbalance factor (1.0 = perfectly balanced, or empty/zero)."""
    vals = [float(v) for v in values]
    if not vals:
        return 1.0
    mean = sum(vals) / len(vals)
    return max(vals) / mean if mean > 0 else 1.0


def mean_rate_hz(spike_count: int, n_neurons: int, ticks: int) -> float:
    """Mean firing rate in Hz given 1 ms ticks.

    ``rate = spikes / neurons / simulated_seconds``; with 1 ms ticks the
    simulated duration is ``ticks / 1000`` seconds.
    """
    if n_neurons <= 0 or ticks <= 0:
        raise ValueError("n_neurons and ticks must be positive")
    return spike_count / n_neurons / (ticks / 1000.0)


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty input")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def lognormal_volumes(
    n: int, rng: np.random.Generator, sigma: float = 0.9, mean: float = 1.0
) -> np.ndarray:
    """Draw plausible relative region volumes (log-normal, unit mean).

    Brain-region volumes span ~2 orders of magnitude; a log-normal with
    sigma≈0.9 reproduces that spread.  The result is normalised to mean 1 so
    downstream code can scale by total core budget.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    v = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    return v * (mean / v.mean())


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, CDF heights) for quick distribution checks."""
    values = np.sort(np.asarray(values, dtype=float))
    heights = np.arange(1, values.size + 1) / values.size
    return values, heights
