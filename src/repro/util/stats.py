"""Small statistics helpers shared by the model builders and reports."""

from __future__ import annotations

import numpy as np


def mean_rate_hz(spike_count: int, n_neurons: int, ticks: int) -> float:
    """Mean firing rate in Hz given 1 ms ticks.

    ``rate = spikes / neurons / simulated_seconds``; with 1 ms ticks the
    simulated duration is ``ticks / 1000`` seconds.
    """
    if n_neurons <= 0 or ticks <= 0:
        raise ValueError("n_neurons and ticks must be positive")
    return spike_count / n_neurons / (ticks / 1000.0)


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty input")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def lognormal_volumes(
    n: int, rng: np.random.Generator, sigma: float = 0.9, mean: float = 1.0
) -> np.ndarray:
    """Draw plausible relative region volumes (log-normal, unit mean).

    Brain-region volumes span ~2 orders of magnitude; a log-normal with
    sigma≈0.9 reproduces that spread.  The result is normalised to mean 1 so
    downstream code can scale by total core budget.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    v = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    return v * (mean / v.mean())


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, CDF heights) for quick distribution checks."""
    values = np.sort(np.asarray(values, dtype=float))
    heights = np.arange(1, values.size + 1) / values.size
    return values, heights
