"""Deterministic pseudo-random number generation.

The paper stresses (§II) that TrueNorth and Compass share *configurable-seed*
pseudo-random number generators so that the software simulator is bit-exact
with the hardware ("Compass has become the key contract between our hardware
architects and software algorithm/application designers").  We model the
hardware PRNG as a 32-bit linear congruential generator — simple enough to
be plausibly realised in hardware, and trivially reproducible.

Two implementations are provided with identical sequences:

* :class:`Lcg32` — a scalar stream, used by the readable scalar reference
  neuron implementation;
* :class:`LcgArray` — a NumPy-vectorised array of independent streams with
  *conditional advance*, used by the production vectorised neuron kernel.

Per-neuron streams are derived from a core seed with :func:`derive_seed`
(a SplitMix64-style mix) so that the draw order consumed by one neuron is
independent of how many draws its neighbours consume — this is what makes
the scalar and vectorised implementations bit-identical and what makes the
simulation result independent of partitioning.
"""

from __future__ import annotations

import numpy as np

#: Numerical Recipes LCG multiplier/increment (32-bit).
LCG_A = 1664525
LCG_C = 1013904223
_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

# SplitMix64 constants, used only for seed derivation.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One SplitMix64 output step (pure-int, 64-bit wraparound)."""
    x = (x + _SM_GAMMA) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * _SM_M1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_M2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(base: int, *indices: int) -> int:
    """Derive a well-mixed 32-bit seed from a base seed and index path.

    ``derive_seed(seed, core, neuron)`` gives every neuron its own stream.
    The derivation is associative-free on purpose: each index is folded in
    with a full SplitMix64 round, so ``(0, 1)`` and ``(1, 0)`` collide with
    probability ~2**-64 per pair.
    """
    state = _splitmix64(base & _MASK64)
    for idx in indices:
        state = _splitmix64(state ^ ((idx & _MASK64) * _SM_GAMMA & _MASK64))
    return state & _MASK32


class Lcg32:
    """Scalar 32-bit LCG stream: ``x <- (A*x + C) mod 2**32``.

    The *output* of a step is the new state's top bits; callers use
    :meth:`next_u32`, :meth:`next_u8`, or :meth:`next_float`.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _MASK32

    def next_u32(self) -> int:
        """Advance one step and return the full 32-bit state."""
        self.state = (LCG_A * self.state + LCG_C) & _MASK32
        return self.state

    def next_u8(self) -> int:
        """Advance and return the top 8 bits (best-quality LCG bits)."""
        return self.next_u32() >> 24

    def next_float(self) -> float:
        """Advance and return a float uniform in ``[0, 1)``."""
        return self.next_u32() / 4294967296.0

    def bernoulli(self, threshold_u8: int) -> bool:
        """Advance and return ``True`` with probability ``threshold_u8/256``.

        This is the hardware-style comparison used for stochastic synapse
        and leak modes: draw 8 bits, compare against the magnitude.
        """
        return self.next_u8() < threshold_u8

    def clone(self) -> "Lcg32":
        c = Lcg32(0)
        c.state = self.state
        return c


class LcgArray:
    """A vector of independent LCG streams with conditional advance.

    State is held as ``uint64`` to avoid NumPy overflow warnings; only the
    low 32 bits are significant.  :meth:`advance` steps *only* the streams
    selected by a boolean mask, which is how the vectorised neuron kernel
    reproduces the scalar rule "a neuron consumes one draw per stochastic
    event it participates in".
    """

    __slots__ = ("state",)

    def __init__(self, seeds: np.ndarray) -> None:
        seeds = np.asarray(seeds, dtype=np.uint64)
        self.state = seeds & np.uint64(_MASK32)

    @classmethod
    def from_base_seed(cls, base: int, shape: tuple[int, ...]) -> "LcgArray":
        """Create streams for every flat index of ``shape`` via derive_seed."""
        n = int(np.prod(shape)) if shape else 1
        seeds = np.fromiter(
            (derive_seed(base, i) for i in range(n)), dtype=np.uint64, count=n
        )
        return cls(seeds.reshape(shape))

    @property
    def shape(self) -> tuple[int, ...]:
        return self.state.shape

    def advance(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Step the selected streams; return the new 32-bit states.

        Unselected lanes keep their state and report their *old* state in
        the returned array (callers must apply the same mask to outputs).
        """
        a = np.uint64(LCG_A)
        c = np.uint64(LCG_C)
        m = np.uint64(_MASK32)
        if mask is None:
            self.state = (a * self.state + c) & m
            return self.state.copy()
        mask = np.asarray(mask, dtype=bool)
        nxt = (a * self.state + c) & m
        self.state = np.where(mask, nxt, self.state)
        return self.state.copy()

    def next_u8(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Conditionally advance; return top-8-bit outputs as ``uint32``."""
        return (self.advance(mask) >> np.uint64(24)).astype(np.uint32)

    def bernoulli(self, threshold_u8: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Vectorised hardware Bernoulli: draw < threshold (per lane).

        Lanes excluded by ``mask`` return False and do not advance.
        """
        draws = self.next_u8(mask)
        hit = draws < np.asarray(threshold_u8, dtype=np.uint32)
        if mask is not None:
            hit = hit & np.asarray(mask, dtype=bool)
        return hit

    def clone(self) -> "LcgArray":
        c = LcgArray(self.state.copy())
        return c

    def state_equal(self, other: "LcgArray") -> bool:
        return bool(np.array_equal(self.state, other.state))
