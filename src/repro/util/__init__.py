"""Low-level utilities: deterministic PRNGs, bit packing, units, statistics."""

from repro.util.rng import Lcg32, LcgArray, derive_seed
from repro.util.bitops import (
    pack_bits,
    unpack_bits,
    get_bit,
    set_bit,
    popcount_rows,
)

__all__ = [
    "Lcg32",
    "LcgArray",
    "derive_seed",
    "pack_bits",
    "unpack_bits",
    "get_bit",
    "set_bit",
    "popcount_rows",
]
