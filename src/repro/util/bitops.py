"""Bit-packing helpers for the binary synaptic crossbar.

The paper's first listed difference from the older C2 simulator (§I) is that
"the synapse is simplified to a bit, resulting in 32× less storage required
for the synapse data structure".  We honour that by storing crossbars packed
8 synapses per byte (NumPy ``packbits`` layout, big-endian within a byte),
and provide the small algebra the simulator needs on packed rows.
"""

from __future__ import annotations

import numpy as np

#: Lookup table: byte value -> number of set bits.
_POPCOUNT8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1
).astype(np.uint8)


def pack_bits(dense: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 array along its last axis, 8 entries per byte.

    ``dense`` of shape ``(..., n)`` becomes ``uint8`` of shape
    ``(..., ceil(n/8))``.  Bit 7 of byte 0 is element 0 (NumPy 'big' order).
    """
    dense = np.asarray(dense)
    return np.packbits(dense.astype(bool), axis=-1)


def unpack_bits(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a bool array of width ``n``."""
    packed = np.asarray(packed, dtype=np.uint8)
    dense = np.unpackbits(packed, axis=-1, count=n)
    return dense.astype(bool)


def get_bit(packed: np.ndarray, index: int) -> np.ndarray:
    """Read bit ``index`` along the last axis of a packed array."""
    byte = np.asarray(packed, dtype=np.uint8)[..., index >> 3]
    shift = 7 - (index & 7)
    return ((byte >> shift) & 1).astype(bool)


def set_bit(packed: np.ndarray, index: int, value: bool | np.ndarray = True) -> None:
    """Write bit ``index`` along the last axis of a packed array, in place."""
    packed = np.asarray(packed)
    shift = 7 - (index & 7)
    bit = np.uint8(1 << shift)
    col = packed[..., index >> 3]
    value = np.asarray(value, dtype=bool)
    packed[..., index >> 3] = np.where(value, col | bit, col & ~bit)


def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Number of set bits per row (sum over the last, packed axis)."""
    return _POPCOUNT8[np.asarray(packed, dtype=np.uint8)].sum(axis=-1).astype(np.int64)
