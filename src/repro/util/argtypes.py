"""Shared ``argparse`` type validators for the repro CLI.

Every subcommand family (run, resilience, obs, serve) takes counts that
must be positive, tolerances that must be nonzero, and structured fault
specifications.  These validators centralise the parsing and the error
messages so a bad ``--ticks`` reads identically everywhere.
"""

from __future__ import annotations

import argparse


def positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (ticks, ranks, cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def positive_float(text: str) -> float:
    """argparse type for tolerances/factors/rates that must be > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def non_negative_float(text: str) -> float:
    """argparse type for delays/waits that may be zero but not negative."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value}")
    return value


def crash_spec(text: str) -> tuple[int, int]:
    """Parse a ``TICK:RANK`` crash specification (e.g. ``40:1``)."""
    parts = text.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"expected TICK:RANK (e.g. 40:1), got {text!r}"
        )
    try:
        tick, rank = int(parts[0]), int(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected TICK:RANK as integers, got {text!r}"
        )
    if tick < 0 or rank < 0:
        raise argparse.ArgumentTypeError(f"tick and rank must be >= 0: {text!r}")
    return tick, rank


def message_spec(text: str) -> tuple[int, int, int]:
    """Parse a ``TICK:SRC:DEST`` message-fault specification."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected TICK:SRC:DEST (e.g. 12:0:1), got {text!r}"
        )
    try:
        tick, src, dest = (int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected TICK:SRC:DEST as integers, got {text!r}"
        )
    if tick < 0 or src < 0 or dest < 0:
        raise argparse.ArgumentTypeError(f"fields must be >= 0: {text!r}")
    return tick, src, dest
