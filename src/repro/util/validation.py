"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless condition."""
    if not condition:
        raise ConfigurationError(message)


def check_range(name: str, value: Any, lo: Any = None, hi: Any = None) -> Any:
    """Check ``lo <= value <= hi`` (either bound may be None) and return it."""
    if lo is not None and value < lo:
        raise ConfigurationError(f"{name}={value!r} below minimum {lo!r}")
    if hi is not None and value > hi:
        raise ConfigurationError(f"{name}={value!r} above maximum {hi!r}")
    return value


def check_positive(name: str, value: Any) -> Any:
    """Check ``value > 0`` and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name}={value!r} must be positive")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Check that ``value`` is a positive power of two and return it."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name}={value!r} must be a power of two")
    return value
