"""The CoreObject compact network description (§IV).

"The high-level network description describing the network connectivity is
expressed in a relatively small and compact CoreObject file."  A CoreObject
names functional regions (how many cores, what neuron prototype, what
crossbar statistics) and the neuron→axon connection counts between regions.
It serialises to a small JSON document — kilobytes — whereas the explicit
model it compiles into scales with cores × synapses (terabytes at paper
scale): that gap is the paper's 3-orders-of-magnitude set-up argument.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.arch.params import MAX_DELAY, NUM_AXON_TYPES, NeuronParameters, ResetMode
from repro.errors import ConfigurationError
from repro.util.validation import check_positive, check_range, require


@dataclass(frozen=True)
class RegionSpec:
    """One functional region: a population of identically-specified cores.

    ``region_class`` distinguishes cortical from sub-cortical regions, which
    the CoCoMac model uses for the 60/40 vs 80/20 white/gray split (§V-C).
    ``axon_type_fractions`` gives the proportion of each of the four axon
    types on every core in the region.
    """

    name: str
    n_cores: int
    neuron: NeuronParameters = field(default_factory=NeuronParameters)
    crossbar_density: float = 0.125
    axon_type_fractions: tuple[float, float, float, float] = (1.0, 0.0, 0.0, 0.0)
    region_class: str = "cortical"

    def __post_init__(self) -> None:
        require(bool(self.name), "region name must be non-empty")
        check_positive("n_cores", self.n_cores)
        check_range("crossbar_density", self.crossbar_density, 0.0, 1.0)
        require(
            len(self.axon_type_fractions) == NUM_AXON_TYPES,
            f"axon_type_fractions needs {NUM_AXON_TYPES} entries",
        )
        total = float(sum(self.axon_type_fractions))
        require(abs(total - 1.0) < 1e-9, "axon_type_fractions must sum to 1")
        require(
            self.region_class in ("cortical", "thalamic", "basal_ganglia", "other"),
            f"unknown region_class {self.region_class!r}",
        )


@dataclass(frozen=True)
class ConnectionSpec:
    """Neuron→axon connection demand between two regions.

    ``count`` source neurons in ``src`` each get wired to one freshly
    allocated axon in ``dst``.  ``src == dst`` describes gray-matter
    (intra-region) connectivity; anything else is white matter.
    """

    src: str
    dst: str
    count: int
    delay: int = 1

    def __post_init__(self) -> None:
        check_positive("count", self.count)
        check_range("delay", self.delay, 1, MAX_DELAY)


@dataclass
class CoreObject:
    """A complete compact model description."""

    name: str
    regions: list[RegionSpec]
    connections: list[ConnectionSpec]
    seed: int = 0

    def __post_init__(self) -> None:
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate region names in CoreObject")
        known = set(names)
        for c in self.connections:
            if c.src not in known or c.dst not in known:
                raise ConfigurationError(
                    f"connection {c.src}->{c.dst} references unknown region"
                )

    # -- derived ---------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return sum(r.n_cores for r in self.regions)

    def region(self, name: str) -> RegionSpec:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(name)

    def region_index(self) -> dict[str, int]:
        return {r.name: i for i, r in enumerate(self.regions)}

    def connection_matrix(self) -> np.ndarray:
        """(R, R) integer matrix of neuron→axon connection counts."""
        idx = self.region_index()
        m = np.zeros((len(self.regions), len(self.regions)), dtype=np.int64)
        for c in self.connections:
            m[idx[c.src], idx[c.dst]] += c.count
        return m

    def validate_capacity(self, neurons_per_core: int = 256, axons_per_core: int = 256) -> None:
        """Check realizability: out-degree ≤ neurons, in-degree ≤ axons.

        This is the invariant the IPFP balancing step establishes for the
        CoCoMac model; hand-written CoreObjects are checked here.
        """
        m = self.connection_matrix()
        for i, r in enumerate(self.regions):
            out_cap = r.n_cores * neurons_per_core
            in_cap = r.n_cores * axons_per_core
            if m[i].sum() > out_cap:
                raise ConfigurationError(
                    f"region {r.name}: {m[i].sum()} outgoing connections exceed "
                    f"{out_cap} available neurons"
                )
            if m[:, i].sum() > in_cap:
                raise ConfigurationError(
                    f"region {r.name}: {m[:, i].sum()} incoming connections exceed "
                    f"{in_cap} available axons"
                )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "coreobject/1",
            "name": self.name,
            "seed": self.seed,
            "regions": [
                {
                    "name": r.name,
                    "n_cores": r.n_cores,
                    "region_class": r.region_class,
                    "crossbar_density": r.crossbar_density,
                    "axon_type_fractions": list(r.axon_type_fractions),
                    "neuron": _neuron_to_dict(r.neuron),
                }
                for r in self.regions
            ],
            "connections": [
                {"src": c.src, "dst": c.dst, "count": c.count, "delay": c.delay}
                for c in self.connections
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreObject":
        if data.get("format") != "coreobject/1":
            raise ConfigurationError(f"unknown CoreObject format {data.get('format')!r}")
        regions = [
            RegionSpec(
                name=r["name"],
                n_cores=r["n_cores"],
                region_class=r.get("region_class", "cortical"),
                crossbar_density=r.get("crossbar_density", 0.125),
                axon_type_fractions=tuple(r.get("axon_type_fractions", (1, 0, 0, 0))),
                neuron=_neuron_from_dict(r.get("neuron", {})),
            )
            for r in data["regions"]
        ]
        connections = [
            ConnectionSpec(
                src=c["src"], dst=c["dst"], count=c["count"], delay=c.get("delay", 1)
            )
            for c in data["connections"]
        ]
        return cls(
            name=data["name"],
            regions=regions,
            connections=connections,
            seed=data.get("seed", 0),
        )

    def to_json(self, path: str | Path | None = None) -> str:  # repro: obs-flush
        text = json.dumps(self.to_dict(), indent=1)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "CoreObject":
        """Parse from a JSON string or a file path."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        else:
            text = source
        return cls.from_dict(json.loads(text))

    def description_nbytes(self) -> int:
        """Size of the compact description (the 'small' side of §IV)."""
        return len(self.to_json().encode())


def _neuron_to_dict(n: NeuronParameters) -> dict:
    return {
        "weights": list(n.weights),
        "stochastic_weights": list(n.stochastic_weights),
        "leak": n.leak,
        "stochastic_leak": n.stochastic_leak,
        "threshold": n.threshold,
        "reset_mode": int(n.reset_mode),
        "reset_value": n.reset_value,
        "floor": n.floor,
        "threshold_mask": n.threshold_mask,
        "leak_reversal": n.leak_reversal,
    }


def _neuron_from_dict(d: dict) -> NeuronParameters:
    if not d:
        return NeuronParameters()
    return NeuronParameters(
        weights=tuple(d.get("weights", (1, 1, 1, 1))),
        stochastic_weights=tuple(bool(x) for x in d.get("stochastic_weights", (False,) * 4)),
        leak=d.get("leak", 0),
        stochastic_leak=d.get("stochastic_leak", False),
        threshold=d.get("threshold", 1),
        reset_mode=ResetMode(d.get("reset_mode", 0)),
        reset_value=d.get("reset_value", 0),
        floor=d.get("floor", -(2**17)),
        threshold_mask=d.get("threshold_mask", 0),
        leak_reversal=bool(d.get("leak_reversal", False)),
    )
