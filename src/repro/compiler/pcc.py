"""The Parallel Compass Compiler driver (§IV).

Compilation pipeline:

1. **Layout** — regions get contiguous gid ranges, in CoreObject order.
2. **Local configuration** — each PCC process (one per region) configures
   its cores: random crossbars at the region's density, axon types drawn
   from the region's type mix, the region's neuron prototype.
3. **Wiring** — for every connection spec the *target* region's PCC
   process allocates axons (round-robin across cores, §V-C) and — when
   source and target live on different PCC processes — ships the
   ``(core id, axon id)`` pairs to the source process in one aggregated
   (simulated) MPI message; the source process binds them to freshly
   allocated source neurons.  Gray-matter (intra-region) wiring takes the
   shared-memory path with no messages.
4. **Instantiation** — the explicit :class:`~repro.arch.network.CoreNetwork`
   is handed to Compass; compiler-side scratch state is dropped.

The result records compile metrics (wall time, exchange messages/bytes)
for the §IV set-up-time reproduction, and can propose a region-aligned
Compass partition so white matter ≡ inter-process communication (§V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.network import CoreNetwork
from repro.arch.params import NUM_AXON_TYPES, NUM_AXONS, NUM_NEURONS
from repro.compiler.allocator import AxonAllocator, NeuronAllocator
from repro.compiler.coreobject import CoreObject
from repro.core.partition import Partition
from repro.errors import CompilationError
from repro.obs import Observability
from repro.runtime.mpi import VirtualMpiCluster
from repro.util.bitops import pack_bits
from repro.util.hostclock import host_perf_counter
from repro.util.rng import derive_seed

#: Bytes exchanged per allocated axon in the wiring handshake: a global
#: core id (8) plus an axon id (4), matching the paper's aggregated
#: per-process-pair exchange.
_HANDSHAKE_BYTES_PER_AXON = 12

#: Cores per chunk when generating random crossbars (bounds peak memory).
_CROSSBAR_CHUNK = 256


@dataclass
class CompileMetrics:
    """Cost accounting for one compile run."""

    wall_seconds: float = 0.0
    exchange_messages: int = 0
    exchange_bytes: int = 0
    white_matter_connections: int = 0
    gray_matter_connections: int = 0

    @property
    def total_connections(self) -> int:
        return self.white_matter_connections + self.gray_matter_connections


@dataclass
class CompiledModel:
    """Output of the PCC: an explicit network plus region bookkeeping."""

    network: CoreNetwork
    coreobject: CoreObject
    region_ranges: dict[str, tuple[int, int]]
    metrics: CompileMetrics = field(default_factory=CompileMetrics)

    def region_of_gid(self, gid: int) -> str:
        for name, (lo, hi) in self.region_ranges.items():
            if lo <= gid < hi:
                return name
        raise KeyError(f"gid {gid} outside every region")

    def partition_for(self, n_processes: int) -> Partition:
        """Region-aligned partition: regions own whole process sets.

        Processes are apportioned to regions proportionally to core count
        (largest remainder), every region getting at least one — §V's
        "non-overlapping sets of 1 or more processes".  Falls back to the
        uniform implicit map when there are fewer processes than regions.
        """
        n_regions = len(self.region_ranges)
        if n_processes < n_regions:
            return Partition(self.network.n_cores, n_processes)
        sizes = np.array(
            # repro: allow[DET103] region_ranges view order is the layout order.
            [hi - lo for (lo, hi) in self.region_ranges.values()],
            dtype=float,
        )
        share = sizes / sizes.sum() * n_processes
        procs = np.maximum(1, np.floor(share)).astype(int)
        # Largest-remainder distribution of the leftover processes.
        while procs.sum() < n_processes:
            procs[np.argmax(share - procs)] += 1
        while procs.sum() > n_processes:
            over = np.where(procs > 1)[0]
            procs[over[np.argmin((share - procs)[over])]] -= 1
        boundaries = [0]
        # repro: allow[DET103] region_ranges view order is the layout order.
        for (lo, hi), p in zip(self.region_ranges.values(), procs):
            splits = np.linspace(lo, hi, p + 1).astype(np.int64)[1:]
            boundaries.extend(int(s) for s in splits)
        return Partition.from_boundaries(np.array(boundaries, dtype=np.int64))


class ParallelCompassCompiler:
    """Compile CoreObjects into explicit TrueNorth networks.

    ``model_check=True`` (the default) runs the structural model checker
    (:func:`repro.check.model.check_model`) on the result and raises
    :class:`~repro.errors.CompilationError` with the diagnostics when
    the compiled network could not be simulated soundly.
    """

    def __init__(
        self,
        validate: bool = True,
        model_check: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.validate = validate
        self.model_check = model_check
        self.obs = obs if obs is not None else Observability.off()

    def compile(self, obj: CoreObject) -> CompiledModel:
        t_start = host_perf_counter()
        tr = self.obs.tracer
        pr = self.obs.prof
        if tr.enabled:
            # Compile spans live on their own trace process track (the
            # Perfetto exporter routes cat="compile" to pid 1), laid out
            # in the tick-0 window; attributes are counts, never host
            # times, so compile traces stay deterministic too.
            tr.begin_tick(0)
            tr.begin(
                "compile",
                rank=-1,
                cat="compile",
                regions=len(obj.regions),
                connections=len(obj.connections),
            )
        if self.validate:
            obj.validate_capacity(NUM_NEURONS, NUM_AXONS)

        # 1. Layout: contiguous gid ranges in region order.
        region_ranges: dict[str, tuple[int, int]] = {}
        cursor = 0
        for r in obj.regions:
            region_ranges[r.name] = (cursor, cursor + r.n_cores)
            cursor += r.n_cores
        network = CoreNetwork(cursor, seed=obj.seed)
        metrics = CompileMetrics()
        if pr.enabled:
            pr.phase("pcc.layout", -1, host_perf_counter() - t_start, work=cursor)
        if tr.enabled:
            tr.instant(
                "pcc.layout",
                rank=-1,
                phase="tick",
                cat="compile",
                cores=cursor,
                regions=len(region_ranges),
            )

        # 2. Local per-region configuration.
        for i, r in enumerate(obj.regions):
            tc0 = host_perf_counter() if pr.enabled else 0.0
            self._configure_region(network, obj, r, region_ranges[r.name])
            if pr.enabled:
                pr.phase(
                    "pcc.configure", i, host_perf_counter() - tc0, work=r.n_cores
                )
            if tr.enabled:
                tr.instant(
                    "pcc.configure",
                    rank=i,
                    phase="tick",
                    cat="compile",
                    region=r.name,
                    cores=r.n_cores,
                )

        # 3. Wiring, with one simulated PCC process per region.
        cluster = VirtualMpiCluster(max(len(obj.regions), 1))
        region_rank = {r.name: i for i, r in enumerate(obj.regions)}
        axon_alloc = {
            r.name: AxonAllocator(region_ranges[r.name][0], r.n_cores, NUM_AXONS)
            for r in obj.regions
        }
        neuron_alloc = {
            r.name: NeuronAllocator(region_ranges[r.name][0], r.n_cores, NUM_NEURONS)
            for r in obj.regions
        }
        for conn_index, conn in enumerate(obj.connections):
            tw0 = host_perf_counter() if pr.enabled else 0.0
            tgt_gids, tgt_axons = axon_alloc[conn.dst].allocate(conn.count)
            # §V-C: neurons on one source core must "distribute their
            # connections as broadly as possible across the set of
            # possible target cores".  Both allocators are round-robin in
            # the same order, which would pair source core i with target
            # core i; a seeded permutation of the target sequence
            # decorrelates the pairing without changing the allocated
            # resource set.
            perm = np.random.default_rng(
                derive_seed(obj.seed, conn_index, 0xD1F)
            ).permutation(conn.count)
            tgt_gids, tgt_axons = tgt_gids[perm], tgt_axons[perm]
            if conn.src != conn.dst:
                # Target PCC process ships the allocated pairs to the source
                # PCC process, aggregated into one message (§IV).
                ep = cluster.endpoints[region_rank[conn.dst]]
                payload = (tgt_gids, tgt_axons)
                nbytes = conn.count * _HANDSHAKE_BYTES_PER_AXON
                ep.isend(region_rank[conn.src], payload, nbytes, tag=1)
                msg = cluster.endpoints[region_rank[conn.src]].recv(
                    source=region_rank[conn.dst], tag=1
                )
                tgt_gids, tgt_axons = msg.payload
                metrics.exchange_messages += 1
                metrics.exchange_bytes += nbytes
                metrics.white_matter_connections += conn.count
            else:
                metrics.gray_matter_connections += conn.count
            src_gids, src_neurons = neuron_alloc[conn.src].allocate(conn.count)
            network.connect_many(
                src_gids, src_neurons, tgt_gids, tgt_axons, conn.delay
            )
            if pr.enabled:
                pr.phase(
                    "pcc.wire",
                    region_rank[conn.dst],
                    host_perf_counter() - tw0,
                    work=conn.count,
                )
            if tr.enabled:
                tr.instant(
                    "pcc.wire",
                    rank=region_rank[conn.dst],
                    phase="tick",
                    cat="compile",
                    src=conn.src,
                    dst=conn.dst,
                    count=conn.count,
                    white=conn.src != conn.dst,
                )

        if self.validate:
            network.validate()
        compiled = CompiledModel(
            network=network,
            coreobject=obj,
            region_ranges=region_ranges,
            metrics=metrics,
        )
        if self.model_check:
            from repro.check.model import check_model

            tm0 = host_perf_counter() if pr.enabled else 0.0
            check_model(compiled).raise_if_failed()
            if pr.enabled:
                pr.phase(
                    "pcc.model_check",
                    -1,
                    host_perf_counter() - tm0,
                    work=network.n_cores,
                )
            if tr.enabled:
                tr.instant(
                    "pcc.model_check",
                    rank=-1,
                    phase="tick",
                    cat="compile",
                    cores=network.n_cores,
                )
        reg = self.obs.registry
        reg.counter(
            "pcc_exchange_messages_total",
            help="Inter-process wiring handshake messages during compilation.",
        ).inc(value=metrics.exchange_messages)
        reg.counter(
            "pcc_exchange_bytes_total",
            help="Bytes exchanged in wiring handshakes during compilation.",
            unit="bytes",
        ).inc(value=metrics.exchange_bytes)
        if tr.enabled:
            tr.end(
                rank=-1,
                cat="compile",
                exchange_messages=metrics.exchange_messages,
                exchange_bytes=metrics.exchange_bytes,
                white=metrics.white_matter_connections,
                gray=metrics.gray_matter_connections,
            )
        metrics.wall_seconds = host_perf_counter() - t_start
        return compiled

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _configure_region(
        network: CoreNetwork, obj: CoreObject, region, gid_range: tuple[int, int]
    ) -> None:
        lo, hi = gid_range
        n = network.num_neurons
        a = network.num_axons
        # Neuron prototype, broadcast across the region.
        network.neuron_params.set_neuron(slice(lo, hi), slice(None), region.neuron)
        # Axon types: deterministic proportional mix, identical per core.
        counts = _apportion(region.axon_type_fractions, a)
        types = np.repeat(np.arange(NUM_AXON_TYPES, dtype=np.uint8), counts)
        network.axon_types[lo:hi] = types[None, :]
        # Random crossbars at the region's density, chunked to bound memory.
        # Seeded per region so compilation order cannot change the model.
        rng = np.random.default_rng(derive_seed(obj.seed, lo, 0xC0))
        for chunk_lo in range(lo, hi, _CROSSBAR_CHUNK):
            chunk_hi = min(chunk_lo + _CROSSBAR_CHUNK, hi)
            dense = rng.random((chunk_hi - chunk_lo, a, n)) < region.crossbar_density
            network.crossbars[chunk_lo:chunk_hi] = pack_bits(dense)


def _apportion(fractions: tuple[float, ...], total: int) -> np.ndarray:
    """Integer apportionment of ``total`` slots by largest remainder."""
    raw = np.asarray(fractions, dtype=float) * total
    out = np.floor(raw).astype(np.int64)
    deficit = total - int(out.sum())
    if deficit < 0:
        raise CompilationError("fractions exceed 1")
    order = np.argsort(-(raw - np.floor(raw)))
    out[order[:deficit]] += 1
    return out
