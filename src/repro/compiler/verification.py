"""Compiled-model verification — §I use-case (a): "verifying TrueNorth
correctness via regression testing".

Given a :class:`~repro.compiler.pcc.CompiledModel`, re-derive the
properties its CoreObject promised and check the explicit network delivers
them: connection counts per region pair, axon exclusivity, delay values,
crossbar densities, axon-type mixes, and dangling-reference freedom.

The report is machine-readable (a dict of named checks) so hardware teams
can diff runs; :func:`verify_compiled` raises on the first violation when
``strict`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.params import NUM_AXON_TYPES
from repro.compiler.pcc import CompiledModel
from repro.errors import CompilationError, WiringError
from repro.util.bitops import popcount_rows


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_compiled`."""

    checks: dict[str, bool] = field(default_factory=dict)
    details: dict[str, str] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks[name] = bool(ok)
        if detail:
            self.details[name] = detail

    def failures(self) -> list[str]:
        return [k for k, ok in self.checks.items() if not ok]


def verify_compiled(
    model: CompiledModel,
    density_tolerance: float = 0.05,
    strict: bool = False,
) -> VerificationReport:
    """Check a compiled network against its CoreObject specification."""
    report = VerificationReport()
    net = model.network
    obj = model.coreobject
    ranges = model.region_ranges

    # 1. Layout: ranges contiguous, ordered, covering the network.
    spans = list(ranges.values())
    contiguous = spans[0][0] == 0 and spans[-1][1] == net.n_cores and all(
        a[1] == b[0] for a, b in zip(spans, spans[1:])
    )
    report.record("layout_contiguous", contiguous)

    # 2. Dangling references.  Only the expected wiring failure is caught
    # and reported; anything else is a genuine bug and must propagate.
    try:
        net.validate()
        report.record("no_dangling_targets", True)
    except WiringError as exc:
        report.record("no_dangling_targets", False, str(exc))

    # 3. Connection counts per region pair match the CoreObject.
    expected = obj.connection_matrix()
    idx = obj.region_index()
    actual = np.zeros_like(expected)
    region_of = np.empty(net.n_cores, dtype=np.int64)
    for name, (lo, hi) in ranges.items():
        region_of[lo:hi] = idx[name]
    src_g, src_n = np.nonzero(net.target_gid >= 0)
    tgt = net.target_gid[src_g, src_n]
    np.add.at(actual, (region_of[src_g], region_of[tgt]), 1)
    counts_ok = np.array_equal(actual, expected)
    report.record(
        "connection_counts",
        counts_ok,
        "" if counts_ok else f"max abs diff {np.abs(actual - expected).max()}",
    )

    # 4. Axon exclusivity: no target axon driven by two neurons.
    pairs = tgt * net.num_axons + net.target_axon[src_g, src_n]
    exclusive = pairs.size == np.unique(pairs).size
    report.record("axon_exclusivity", exclusive)

    # 5. Delays: per region pair, the multiset of realised delays matches
    #    the multiset the specs demand (several specs may connect the same
    #    pair with different delays).
    from collections import Counter

    expected_delays: dict[tuple[str, str], Counter] = {}
    for conn in obj.connections:
        expected_delays.setdefault((conn.src, conn.dst), Counter())[
            conn.delay
        ] += conn.count
    delays_ok = True
    for (src_name, dst_name), want in expected_delays.items():
        s_lo, s_hi = ranges[src_name]
        d_lo, d_hi = ranges[dst_name]
        sel = (
            (src_g >= s_lo)
            & (src_g < s_hi)
            & (tgt >= d_lo)
            & (tgt < d_hi)
        )
        got = Counter(net.target_delay[src_g[sel], src_n[sel]].tolist())
        if got != want:
            delays_ok = False
            break
    report.record("delays_match_spec", delays_ok)

    # 6. Crossbar density per region within tolerance of the spec.
    density_ok = True
    worst = 0.0
    for r in obj.regions:
        lo, hi = ranges[r.name]
        bits = popcount_rows(
            net.crossbars[lo:hi].reshape(-1, net.crossbars.shape[-1])
        ).sum()
        density = bits / ((hi - lo) * net.num_axons * net.num_neurons)
        err = abs(density - r.crossbar_density)
        worst = max(worst, err)
        if err > density_tolerance:
            density_ok = False
    report.record("crossbar_density", density_ok, f"worst abs error {worst:.4f}")

    # 7. Axon-type mix per region matches the spec exactly (deterministic
    #    apportionment).
    mix_ok = True
    for r in obj.regions:
        lo, hi = ranges[r.name]
        counts = np.bincount(
            net.axon_types[lo:hi].ravel(), minlength=NUM_AXON_TYPES
        )
        expected_counts = np.round(
            np.asarray(r.axon_type_fractions) * net.num_axons
        ) * (hi - lo)
        if not np.allclose(counts, expected_counts, atol=hi - lo):
            mix_ok = False
    report.record("axon_type_mix", mix_ok)

    if strict and not report.passed:
        raise CompilationError(
            f"compiled model failed verification: {report.failures()}"
        )
    return report
