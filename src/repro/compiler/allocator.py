"""Axon and neuron allocation within a region.

§V-C: "to provide the highest possible challenge to cache performance, we
chose to ensure that all locally connecting neurons on the same TrueNorth
core distribute their connections as broadly as possible across the set of
possible target TrueNorth cores."  Both allocators therefore hand out
resources *round-robin across cores* (core-major stride) rather than
filling one core before the next: request *k* axons from an *n*-core region
and you touch ``min(k, n)`` distinct cores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WiringError


class _RoundRobinAllocator:
    """Shared machinery: dispense (core, slot) pairs core-major."""

    kind = "resource"

    def __init__(self, gid_lo: int, n_cores: int, slots_per_core: int) -> None:
        if n_cores <= 0 or slots_per_core <= 0:
            raise ValueError("allocator needs positive capacity")
        self.gid_lo = gid_lo
        self.n_cores = n_cores
        self.slots_per_core = slots_per_core
        self._next = 0  # global counter in round-robin order

    @property
    def capacity(self) -> int:
        return self.n_cores * self.slots_per_core

    @property
    def allocated(self) -> int:
        return self._next

    @property
    def remaining(self) -> int:
        return self.capacity - self._next

    def allocate(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Dispense ``count`` (gid, slot) pairs, round-robin across cores."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.remaining:
            raise WiringError(
                f"{self.kind} allocator exhausted: requested {count}, "
                f"remaining {self.remaining} of {self.capacity}"
            )
        idx = np.arange(self._next, self._next + count, dtype=np.int64)
        self._next += count
        gids = self.gid_lo + (idx % self.n_cores)
        slots = (idx // self.n_cores) % self.slots_per_core
        return gids, slots


class AxonAllocator(_RoundRobinAllocator):
    """Dispenses free (core, axon) pairs of a target region."""

    kind = "axon"


class NeuronAllocator(_RoundRobinAllocator):
    """Dispenses free (core, neuron) outputs of a source region.

    Every TrueNorth neuron has exactly one output connection, so a region
    of *n* cores can source at most ``n × 256`` connections.
    """

    kind = "neuron"
