"""The Parallel Compass Compiler (PCC, §IV).

The PCC translates a *compact* description of functional regions and their
connectivity — a :class:`~repro.compiler.coreobject.CoreObject` — into the
explicit neuron parameters, synaptic crossbars, and neuron→axon wiring that
Compass simulates.  Key properties reproduced from the paper:

* each PCC process compiles at most one functional region; regions occupy
  contiguous gid ranges so intra-region spiking stays on as few Compass
  processes as necessary (shared memory), reserving MPI for inter-region
  (white-matter) spiking;
* inter-region wiring is an aggregated axon-handshake over (simulated)
  MPI: the target region's process allocates axons and returns (core id,
  axon id) pairs to the source region's process;
* realizability — every axon/neuron request satisfiable — is guaranteed by
  balancing the connection matrix with the iterative proportional fitting
  procedure (Sinkhorn–Knopp, :mod:`repro.compiler.ipfp`);
* in-situ generation replaces reading/writing an explicit multi-terabyte
  model file (:mod:`repro.compiler.diskmodel` implements that baseline).
"""

from repro.compiler.coreobject import CoreObject, RegionSpec, ConnectionSpec
from repro.compiler.ipfp import balance_matrix, BalanceResult
from repro.compiler.allocator import AxonAllocator, NeuronAllocator
from repro.compiler.pcc import ParallelCompassCompiler, CompiledModel
from repro.compiler.diskmodel import write_model_file, read_model_file

__all__ = [
    "CoreObject",
    "RegionSpec",
    "ConnectionSpec",
    "balance_matrix",
    "BalanceResult",
    "AxonAllocator",
    "NeuronAllocator",
    "ParallelCompassCompiler",
    "CompiledModel",
    "write_model_file",
    "read_model_file",
]
