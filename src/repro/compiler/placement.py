"""Region → node placement optimisation.

§IV: the PCC "works to minimize MPI message counts ... by assigning
TrueNorth cores in the same functional region to as few Compass processes
as necessary".  This module extends that idea one level down: once
regions own process *sets*, where those sets sit **on the torus** decides
how many link-hops every white-matter spike pays.  We optimise the region
*ordering* (regions occupy contiguous node spans, so the order is the
placement) greedily: seed with the most connected region, then repeatedly
append the region with the strongest traffic to the already-placed
prefix, keeping chatty region pairs close on the torus.

This is an extension beyond the paper (which reports no topology-aware
placement); the ablation bench quantifies what it would have bought.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.torus import TorusTopology


@dataclass(frozen=True)
class PlacementCost:
    """Traffic-weighted distance of one region ordering."""

    order: tuple[int, ...]
    byte_hops: float  #: sum over region pairs of flow x torus hops
    mean_hops: float  #: flow-weighted mean hop count


def _region_centres(order: np.ndarray, procs: np.ndarray, n_nodes: int) -> np.ndarray:
    """Centre node index of each region's contiguous node span."""
    spans = procs[order].astype(float)
    spans *= n_nodes / spans.sum()
    ends = np.cumsum(spans)
    starts = ends - spans
    centres_in_order = (starts + ends) / 2.0
    centres = np.empty(len(order))
    centres[order] = centres_in_order
    return centres


def placement_cost(
    flow: np.ndarray,
    procs: np.ndarray,
    order: np.ndarray,
    torus: TorusTopology,
) -> PlacementCost:
    """Evaluate a region ordering on a torus.

    ``flow[i, j]`` is bytes (or spikes) per tick from region *i* to *j*;
    ``procs[i]`` the region's process count.  Regions occupy contiguous
    node spans in ``order``; distances use each span's centre node.
    """
    flow = np.asarray(flow, dtype=float)
    order = np.asarray(order, dtype=np.int64)
    centres = _region_centres(order, np.asarray(procs), torus.n_nodes)
    nodes = np.clip(centres.astype(np.int64), 0, torus.n_nodes - 1)
    off = flow.copy()
    np.fill_diagonal(off, 0.0)
    src, dst = np.nonzero(off > 0)
    hops = torus.hops(nodes[src], nodes[dst]).astype(float)
    weights = off[src, dst]
    byte_hops = float((weights * hops).sum())
    total = float(weights.sum())
    return PlacementCost(
        order=tuple(int(i) for i in order),
        byte_hops=byte_hops,
        mean_hops=byte_hops / total if total else 0.0,
    )


def optimize_region_order(flow: np.ndarray) -> np.ndarray:
    """Greedy traffic-affinity ordering of regions.

    Start from the region with the largest total traffic; repeatedly
    append the unplaced region with the heaviest combined flow to the
    most recently placed tail (a linear-arrangement heuristic: heavy
    pairs become neighbours in the order, hence neighbours on the torus).
    """
    flow = np.asarray(flow, dtype=float)
    sym = flow + flow.T
    np.fill_diagonal(sym, 0.0)
    n = sym.shape[0]
    placed = [int(np.argmax(sym.sum(axis=1)))]
    remaining = set(range(n)) - set(placed)
    #: affinity of each unplaced region to the placed tail (last few count
    #: more — they are physically closest to the insertion point).
    while remaining:
        tail = placed[-min(len(placed), 8) :]
        weights = np.array(
            [sum(sym[r, t] for t in tail) for r in sorted(remaining)]
        )
        candidates = sorted(remaining)
        best = candidates[int(np.argmax(weights))]
        placed.append(best)
        remaining.discard(best)
    return np.array(placed, dtype=np.int64)


def placement_improvement(
    flow: np.ndarray,
    procs: np.ndarray,
    n_nodes: int,
    torus_dims: int = 5,
) -> tuple[PlacementCost, PlacementCost]:
    """(default order cost, optimised order cost) for one configuration."""
    torus = TorusTopology.for_nodes(n_nodes, torus_dims)
    default = placement_cost(
        flow, procs, np.arange(flow.shape[0], dtype=np.int64), torus
    )
    optimised = placement_cost(flow, procs, optimize_region_order(flow), torus)
    return default, optimised
