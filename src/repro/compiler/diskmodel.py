"""Explicit model files: the baseline the in-situ compiler replaces.

§IV: "For large scale simulation of millions of TrueNorth cores, the
network model specification for Compass can be on the order of several
terabytes.  Offline generation and copying such large files is impractical.
Parallel model generation using the compiler requires only few minutes as
compared to several hours to read or write it to disk."

This module implements that baseline faithfully — a complete serialisation
of the explicit network — so the benchmark can measure in-situ compilation
against write+read of the explicit model, and extrapolate both to paper
scale with :func:`explicit_model_nbytes`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.arch.network import CoreNetwork
from repro.arch.params import NUM_AXON_TYPES
from repro.errors import ConfigurationError

_FORMAT = "compass-explicit/1"


def write_model_file(network: CoreNetwork, path: str | Path) -> int:  # repro: obs-flush
    """Serialise the complete explicit model; returns bytes written."""
    path = Path(path)
    np.savez(
        path,
        format=np.frombuffer(_FORMAT.encode(), dtype=np.uint8),
        n_cores=np.int64(network.n_cores),
        seed=np.int64(network.seed),
        num_axons=np.int64(network.num_axons),
        num_neurons=np.int64(network.num_neurons),
        crossbars=network.crossbars,
        axon_types=network.axon_types,
        target_gid=network.target_gid,
        target_axon=network.target_axon,
        target_delay=network.target_delay,
        weights=network.neuron_params.weights,
        stochastic_weights=network.neuron_params.stochastic_weights,
        leak=network.neuron_params.leak,
        stochastic_leak=network.neuron_params.stochastic_leak,
        threshold=network.neuron_params.threshold,
        reset_mode=network.neuron_params.reset_mode,
        reset_value=network.neuron_params.reset_value,
        floor=network.neuron_params.floor,
    )
    actual = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    return actual.stat().st_size


def read_model_file(path: str | Path) -> CoreNetwork:
    """Reconstruct a :class:`CoreNetwork` from an explicit model file."""
    with np.load(Path(path)) as data:
        fmt = bytes(data["format"]).decode()
        if fmt != _FORMAT:
            raise ConfigurationError(f"unknown model file format {fmt!r}")
        network = CoreNetwork(
            int(data["n_cores"]),
            seed=int(data["seed"]),
            num_axons=int(data["num_axons"]),
            num_neurons=int(data["num_neurons"]),
        )
        network.crossbars[...] = data["crossbars"]
        network.axon_types[...] = data["axon_types"]
        network.target_gid[...] = data["target_gid"]
        network.target_axon[...] = data["target_axon"]
        network.target_delay[...] = data["target_delay"]
        p = network.neuron_params
        p.weights[...] = data["weights"]
        p.stochastic_weights[...] = data["stochastic_weights"]
        p.leak[...] = data["leak"]
        p.stochastic_leak[...] = data["stochastic_leak"]
        p.threshold[...] = data["threshold"]
        p.reset_mode[...] = data["reset_mode"]
        p.reset_value[...] = data["reset_value"]
        p.floor[...] = data["floor"]
    network.validate()
    return network


#: Calibrated per-connection wiring cost of the parallel compiler,
#: set so the 256M-core model on 16384 nodes compiles in the paper's
#: 107 wall-clock seconds ("mostly due to the communication costs in the
#: white matter wiring phase", §VI-B footnote).
PCC_SECONDS_PER_CONNECTION = 2.6e-5

#: Sustained file-system bandwidth assumptions for the disk baseline.
PARALLEL_FS_BANDWIDTH = 2e9  # bytes/s, striped parallel file system
SERIAL_FS_BANDWIDTH = 1e8  # bytes/s, one writer


def modeled_compile_seconds(
    n_connections: int, n_processes: int,
    cost_per_connection: float = PCC_SECONDS_PER_CONNECTION,
) -> float:
    """Modeled in-situ compile time at scale (calibrated to §IV's 107 s)."""
    if n_processes <= 0:
        raise ValueError("n_processes must be positive")
    return n_connections * cost_per_connection / n_processes


def modeled_disk_seconds(n_bytes: float, bandwidth: float = PARALLEL_FS_BANDWIDTH) -> float:
    """Write + read time for an explicit model file of ``n_bytes``."""
    return 2.0 * n_bytes / bandwidth


def explicit_model_nbytes(
    n_cores: int, num_axons: int = 256, num_neurons: int = 256
) -> int:
    """Bytes of the explicit model for ``n_cores`` cores (uncompressed).

    Per core: packed crossbar (axons × neurons/8), axon types (axons),
    neuron targets (16 B each), and neuron parameters.  At the paper's
    256M-core scale this evaluates to several terabytes — the §IV argument
    for in-situ generation.
    """
    crossbar = num_axons * (num_neurons // 8)
    axon_types = num_axons
    targets = num_neurons * (8 + 4 + 4)
    params = num_neurons * (
        NUM_AXON_TYPES * 4  # weights
        + NUM_AXON_TYPES  # stochastic flags
        + 4 + 1 + 4 + 1 + 4 + 4  # leak, stoch, threshold, mode, reset, floor
    )
    return n_cores * (crossbar + axon_types + targets + params)
