"""Iterative proportional fitting (Sinkhorn–Knopp) matrix balancing.

§IV: "We require a realizability mechanism for connections to guarantee
that each target process has enough TrueNorth cores to satisfy incoming
connection requests. ... This is equivalent to normalizing the connection
matrix to have identical pre-specified column sum and row sums — a
generalization of doubly stochastic matrices.  This procedure is known as
iterative proportional fitting procedure (IPFP) in statistics, and as
matrix balancing in linear algebra."  (Sinkhorn & Knopp 1967; Marshall &
Olkin 1968; Knight 2008.)

Given a non-negative matrix ``M`` and target row sums ``r`` / column sums
``c`` (with ``sum(r) == sum(c)``), find diagonal scalings ``D1 M D2`` whose
marginals match the targets.  Convergence requires the zero pattern of
``M`` to *support* the targets; the classic sufficient condition — total
support / full positivity on the needed rows and columns — is checked
pragmatically by monitoring the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompilationError


@dataclass(frozen=True)
class BalanceResult:
    """Outcome of :func:`balance_matrix`."""

    matrix: np.ndarray  #: balanced matrix (same shape as the input)
    row_scale: np.ndarray  #: D1 diagonal
    col_scale: np.ndarray  #: D2 diagonal
    iterations: int
    residual: float  #: max relative marginal error at termination

    @property
    def converged(self) -> bool:
        return np.isfinite(self.residual)


def balance_matrix(
    matrix: np.ndarray,
    row_sums: np.ndarray,
    col_sums: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> BalanceResult:
    """Scale ``matrix`` to the prescribed marginals by alternating updates.

    Raises :class:`CompilationError` when the targets are inconsistent
    (``sum(row_sums) != sum(col_sums)``), the matrix has a zero row/column
    with a non-zero target, or the iteration stalls above ``tol``.
    """
    m = np.asarray(matrix, dtype=float)
    r = np.asarray(row_sums, dtype=float)
    c = np.asarray(col_sums, dtype=float)
    if m.ndim != 2:
        raise CompilationError("balance_matrix requires a 2-D matrix")
    if r.shape != (m.shape[0],) or c.shape != (m.shape[1],):
        raise CompilationError("marginal target shapes do not match the matrix")
    if np.any(m < 0) or np.any(r < 0) or np.any(c < 0):
        raise CompilationError("IPFP requires non-negative inputs")
    if not np.isclose(r.sum(), c.sum(), rtol=1e-9):
        raise CompilationError(
            f"inconsistent targets: sum(rows)={r.sum():g} != sum(cols)={c.sum():g}"
        )
    zero_row_bad = (m.sum(axis=1) == 0) & (r > 0)
    zero_col_bad = (m.sum(axis=0) == 0) & (c > 0)
    if zero_row_bad.any() or zero_col_bad.any():
        raise CompilationError(
            "zero row/column with non-zero marginal target: pattern cannot "
            "support the prescribed sums"
        )

    row_scale = np.ones(m.shape[0])
    col_scale = np.ones(m.shape[1])
    work = m.copy()
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        cur_rows = work.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            row_update = np.where(cur_rows > 0, r / cur_rows, 1.0)
            work *= row_update[:, None]
            row_scale *= row_update

            cur_cols = work.sum(axis=0)
            col_update = np.where(cur_cols > 0, c / cur_cols, 1.0)
            work *= col_update[None, :]
            col_scale *= col_update

        if not (np.isfinite(row_scale).all() and np.isfinite(col_scale).all()):
            # Diverging scalings: the zero pattern cannot support the
            # targets (insufficient total support).
            raise CompilationError(
                "IPFP diverged: the matrix pattern cannot support the "
                "prescribed marginals"
            )
        residual = _max_marginal_error(work, r, c)
        if residual <= tol:
            break
    if residual > tol:
        raise CompilationError(
            f"IPFP failed to converge: residual {residual:g} > tol {tol:g} "
            f"after {iterations} iterations"
        )
    return BalanceResult(
        matrix=work,
        row_scale=row_scale,
        col_scale=col_scale,
        iterations=iterations,
        residual=float(residual),
    )


def _max_marginal_error(m: np.ndarray, r: np.ndarray, c: np.ndarray) -> float:
    """Largest relative deviation of the current marginals from targets."""
    row_err = _relative_error(m.sum(axis=1), r)
    col_err = _relative_error(m.sum(axis=0), c)
    return float(max(row_err, col_err))


def _relative_error(actual: np.ndarray, target: np.ndarray) -> float:
    scale = np.where(target > 0, target, 1.0)
    return float(np.abs(actual - target).max(initial=0.0) / scale.max(initial=1.0))


def round_preserving_sums(matrix: np.ndarray, target_row_sums: np.ndarray) -> np.ndarray:
    """Round a balanced float matrix to integers, preserving row sums.

    Uses largest-remainder rounding per row: floor everything, then award
    the remaining units to the entries with the largest fractional parts.
    Integer connection counts are what the wiring stage consumes.
    """
    m = np.asarray(matrix, dtype=float)
    targets = np.asarray(target_row_sums)
    out = np.floor(m).astype(np.int64)
    for i in range(m.shape[0]):
        deficit = int(round(float(targets[i]))) - int(out[i].sum())
        if deficit < 0:
            # Floating error pushed floors above target: trim largest entries.
            order = np.argsort(-out[i])
            for j in order[: -deficit or None]:
                if deficit == 0:
                    break
                if out[i, j] > 0:
                    out[i, j] -= 1
                    deficit += 1
            continue
        if deficit > 0:
            frac = m[i] - np.floor(m[i])
            # Prefer entries that are actually present in the pattern.
            frac = np.where(m[i] > 0, frac, -1.0)
            order = np.argsort(-frac)
            out[i, order[:deficit]] += 1
    return out
