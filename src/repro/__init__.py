"""repro — reproduction of *Compass: A scalable simulator for an architecture
for Cognitive Computing* (Preissl et al., SC 2012).

The package implements, from scratch and in pure Python/NumPy:

* the TrueNorth neurosynaptic-core architecture model (:mod:`repro.arch`);
* a deterministic virtual parallel machine standing in for Blue Gene/Q and
  Blue Gene/P, with simulated MPI and PGAS communication layers
  (:mod:`repro.runtime`);
* the Compass functional simulator itself — the paper's main contribution —
  with both MPI and PGAS backends (:mod:`repro.core`);
* the Parallel Compass Compiler (PCC) including IPFP matrix balancing
  (:mod:`repro.compiler`);
* a synthetic CoCoMac macaque-brain network model (:mod:`repro.cocomac`);
* the performance-reproduction layer that regenerates every figure in the
  paper's evaluation (:mod:`repro.perf`);
* a small application library of functional primitives, encoders, and demo
  networks (:mod:`repro.apps`).

Quickstart
----------

>>> from repro import build_quickstart_network, Compass
>>> net = build_quickstart_network()
>>> sim = Compass.from_network(net, n_processes=2, seed=7)
>>> result = sim.run(ticks=64)
>>> result.total_spikes >= 0
True
"""

from repro.version import __version__
from repro.arch.params import CoreParameters, NeuronParameters
from repro.arch.core import NeurosynapticCore
from repro.arch.network import CoreNetwork
from repro.core.config import CompassConfig
from repro.core.simulator import Compass
from repro.core.pgas_simulator import PgasCompass
from repro.compiler.coreobject import CoreObject
from repro.compiler.pcc import ParallelCompassCompiler
from repro.cocomac.model import build_macaque_model
from repro.apps.quicknet import build_quickstart_network

__all__ = [
    "__version__",
    "NeuronParameters",
    "CoreParameters",
    "NeurosynapticCore",
    "CoreNetwork",
    "CompassConfig",
    "Compass",
    "PgasCompass",
    "CoreObject",
    "ParallelCompassCompiler",
    "build_macaque_model",
    "build_quickstart_network",
]
