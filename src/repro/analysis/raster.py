"""Raster rendering for terminals and downstream tooling."""

from __future__ import annotations

import numpy as np

from repro.core.simulator import SpikeRecorder


def raster_matrix(
    recorder: SpikeRecorder,
    gid: int,
    ticks: int,
    n_neurons: int = 256,
) -> np.ndarray:
    """Boolean (ticks, neurons) raster for one core."""
    t, g, n = recorder.to_arrays()
    out = np.zeros((ticks, n_neurons), dtype=bool)
    sel = (g == gid) & (t < ticks)
    out[t[sel], n[sel]] = True
    return out


def ascii_raster(
    recorder: SpikeRecorder,
    gid: int,
    ticks: int,
    n_neurons: int = 256,
    max_rows: int = 32,
    mark: str = "|",
    blank: str = ".",
    skip_silent: bool = True,
) -> str:
    """Text raster: one line per neuron, one column per tick.

    Only the first ``max_rows`` neurons are shown; silent neurons are
    skipped by default so active structure stays visible.
    """
    m = raster_matrix(recorder, gid, ticks, n_neurons)
    lines = []
    shown = 0
    for j in range(n_neurons):
        if shown >= max_rows:
            break
        row = m[:, j]
        if skip_silent and not row.any():
            continue
        lines.append(
            f"n{j:03d} " + "".join(mark if v else blank for v in row)
        )
        shown += 1
    if not lines:
        return "(no spikes recorded)"
    return "\n".join(lines)
