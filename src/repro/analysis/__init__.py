"""Spike-train analysis tools.

§I lists "studying TrueNorth dynamics" and "hypotheses testing ...
regarding neural codes and function" among Compass's purposes; this
package provides the measurement side: inter-spike-interval statistics,
population rates, synchrony, and text rasters over recorded spike traces.
"""

from repro.analysis.stats import (
    SpikeTrainStats,
    interspike_intervals,
    isi_cv,
    fano_factor,
    population_rate,
    region_rates,
    synchrony_index,
    spike_train_stats,
)
from repro.analysis.raster import ascii_raster, raster_matrix

__all__ = [
    "SpikeTrainStats",
    "interspike_intervals",
    "isi_cv",
    "fano_factor",
    "population_rate",
    "region_rates",
    "synchrony_index",
    "spike_train_stats",
    "ascii_raster",
    "raster_matrix",
]
