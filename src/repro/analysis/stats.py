"""Spike-train statistics over recorded (tick, gid, neuron) traces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.simulator import SpikeRecorder


def _trace(recorder: SpikeRecorder) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return recorder.to_arrays()


def interspike_intervals(recorder: SpikeRecorder) -> np.ndarray:
    """All ISIs (in ticks) pooled across neurons."""
    t, g, n = _trace(recorder)
    if t.size == 0:
        return np.zeros(0, dtype=np.int64)
    # Sort by (neuron identity, time); diffs within each neuron are ISIs.
    key = g * (n.max() + 1 if n.size else 1) + n
    order = np.lexsort((t, key))
    key_s, t_s = key[order], t[order]
    same = key_s[1:] == key_s[:-1]
    return (t_s[1:] - t_s[:-1])[same]


def isi_cv(recorder: SpikeRecorder) -> float:
    """Coefficient of variation of the pooled ISI distribution.

    CV ≈ 1 for Poisson-like irregular firing; 0 for clockwork firing.
    Returns NaN when fewer than two ISIs exist.
    """
    isis = interspike_intervals(recorder)
    if isis.size < 2 or isis.mean() == 0:
        return float("nan")
    return float(isis.std() / isis.mean())


def fano_factor(recorder: SpikeRecorder, window: int, ticks: int) -> float:
    """Variance/mean of population spike counts in fixed windows."""
    if window <= 0 or ticks < window:
        raise ValueError("need 0 < window <= ticks")
    t, _, _ = _trace(recorder)
    n_windows = ticks // window
    counts = np.bincount(
        np.minimum(t // window, n_windows - 1), minlength=n_windows
    )[:n_windows]
    mean = counts.mean()
    if mean == 0:
        return float("nan")
    return float(counts.var() / mean)


def population_rate(recorder: SpikeRecorder, n_neurons: int, ticks: int) -> np.ndarray:
    """Instantaneous population rate in Hz per tick, shape (ticks,)."""
    t, _, _ = _trace(recorder)
    counts = np.bincount(t[t < ticks], minlength=ticks)[:ticks]
    return counts / n_neurons * 1000.0


def region_rates(
    recorder: SpikeRecorder,
    region_ranges: dict[str, tuple[int, int]],
    ticks: int,
    neurons_per_core: int = 256,
) -> dict[str, float]:
    """Mean rate (Hz) per named region of a compiled model."""
    t, g, _ = _trace(recorder)
    out: dict[str, float] = {}
    for name, (lo, hi) in region_ranges.items():
        spikes = int(((g >= lo) & (g < hi)).sum())
        neurons = (hi - lo) * neurons_per_core
        out[name] = spikes / neurons / (ticks / 1000.0)
    return out


def synchrony_index(recorder: SpikeRecorder, n_neurons: int, ticks: int) -> float:
    """Normalised population synchrony in [0, ~1].

    Variance of the instantaneous population rate divided by what the same
    mean rate would produce if neurons were independent Poisson processes;
    values ≫ 1 indicate synchronised bursting, ≈ 1 asynchrony.
    """
    t, _, _ = _trace(recorder)
    counts = np.bincount(t[t < ticks], minlength=ticks)[:ticks].astype(float)
    mean = counts.mean()
    if mean == 0:
        return float("nan")
    return float(counts.var() / mean)


@dataclass(frozen=True)
class SpikeTrainStats:
    """Summary bundle produced by :func:`spike_train_stats`."""

    total_spikes: int
    mean_rate_hz: float
    isi_cv: float
    synchrony: float
    active_fraction: float  #: fraction of neurons that spiked at least once


def spike_train_stats(
    recorder: SpikeRecorder, n_neurons: int, ticks: int
) -> SpikeTrainStats:
    """One-call summary of a run's spiking behaviour."""
    t, g, n = _trace(recorder)
    distinct = len(set(zip(g.tolist(), n.tolist())))
    rate = t.size / n_neurons / (ticks / 1000.0) if ticks else 0.0
    return SpikeTrainStats(
        total_spikes=int(t.size),
        mean_rate_hz=float(rate),
        isi_cv=isi_cv(recorder),
        synchrony=synchrony_index(recorder, n_neurons, ticks),
        active_fraction=distinct / n_neurons if n_neurons else 0.0,
    )
