"""Package version, importable without pulling in heavy submodules."""

__version__ = "1.0.0"
