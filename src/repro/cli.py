"""Command-line interface: ``repro-compass``.

Subcommands:

* ``info``                      — package, machine, and architecture facts;
* ``compile <coreobject.json>`` — run the PCC, optionally save the
  explicit model and verify it;
* ``run <model>``               — simulate an explicit model file (or the
  built-in quickstart network) and print run statistics;
* ``exec run|info``             — the execution backend layer (see
  ``docs/execution.md``): run a model on an explicitly chosen backend
  (``mpi``/``pgas``/``pool``/``pool-mpi``, with a host-core utilization
  line for the host-parallel pool), and list registered backends plus
  host-core facts;
* ``macaque``                   — build, compile, and run a macaque model;
* ``figures [name|all]``        — regenerate the paper's evaluation tables;
* ``check lint|flow|races|model`` — the determinism sanitizer (see
  ``docs/checker.md``): static lint rules, the interprocedural
  nondeterminism taint analysis with baseline gating, the
  happens-before race detector on a live run, and the structural model
  checker; ``lint``/``flow``/``races`` take ``--format text|json|sarif``;
* ``resilience inject|report``  — run under an injected fault schedule
  and recover (see ``docs/resilience.md``): ``inject`` verifies the
  recovered spike raster, ``report`` prints the recovery-overhead table;
* ``obs trace|metrics|diff``    — the observability layer (see
  ``docs/observability.md``): deterministic span traces
  (Perfetto/JSONL), Prometheus metric export, and first-divergence
  localisation between two event logs;
* ``obs analyze|flame|gate``    — trace analytics (see
  ``docs/perf_analysis.md``): critical-path + imbalance reports and
  folded flame stacks from a JSONL event log, and the perf-regression
  gate over ``BENCH_*.json`` results vs the bench history;
* ``obs prof|why``              — host-side profiling (see
  ``docs/profiling.md``): sampling profiler + tracemalloc memory
  attribution + host-cost divergence report over a run, and automated
  cross-run regression root-cause ranking (bench results, traces, or
  the bench history);
* ``serve run|submit|report``   — the deterministic multi-tenant
  simulation service (see ``docs/serving.md``): seeded load against the
  admission/batching/fair-share pipeline with an SLO latency report,
  single-job submission, and report-file pretty-printing;
* ``shard run|report``          — the sharded fleet tier (see
  ``docs/serving.md``, "Sharded fleet"): seeded fleet-scale load across
  N consistent-hash-routed shard clusters with spill-over, watermark
  autoscaling, and a cross-shard FleetReport.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.util.argtypes import (
    crash_spec as _crash_spec,
    message_spec as _message_spec,
    non_negative_float as _non_negative_float,
    positive_float as _positive_float,
    positive_int as _positive_int,
)
from repro.version import __version__


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.arch.params import MAX_DELAY, NUM_AXON_TYPES, NUM_AXONS, NUM_NEURONS
    from repro.runtime.machine import BLUE_GENE_P, BLUE_GENE_Q

    print(f"repro-compass {__version__}")
    print(
        "reproduction of: Preissl et al., 'Compass: A scalable simulator for "
        "an architecture for Cognitive Computing', SC 2012"
    )
    print(
        f"\ncore geometry: {NUM_AXONS} axons x {NUM_NEURONS} neurons, "
        f"{NUM_AXON_TYPES} axon types, delays 1..{MAX_DELAY}"
    )
    for spec in (BLUE_GENE_Q, BLUE_GENE_P):
        print(
            f"\n{spec.name}: {spec.cpu_cores_per_node} cores/node, "
            f"{spec.memory_per_node // 2**30} GiB/node, "
            f"{spec.nodes_per_rack} nodes/rack, {spec.torus_dims}-D torus"
        )
    from repro.serve.server import BACKENDS

    print(f"\nserve backends: {', '.join(BACKENDS)} (see docs/serving.md)")
    from repro.shard.router import FleetConfig

    fleet = FleetConfig()
    print(
        f"shard fleet: consistent-hash ring over {fleet.shards} shards x "
        f"{fleet.vnodes} vnodes (default), spill={fleet.spill}, "
        f"hot_depth={fleet.hot_depth}; per-shard backends: "
        f"{', '.join(BACKENDS)} (see docs/serving.md, 'Sharded fleet')"
    )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.compiler.coreobject import CoreObject
    from repro.compiler.diskmodel import write_model_file
    from repro.compiler.pcc import ParallelCompassCompiler
    from repro.compiler.verification import verify_compiled

    obj = CoreObject.from_json(args.coreobject)
    compiled = ParallelCompassCompiler().compile(obj)
    m = compiled.metrics
    print(
        f"compiled {obj.name!r}: {compiled.network.n_cores} cores, "
        f"{m.total_connections} connections "
        f"({m.white_matter_connections} white / {m.gray_matter_connections} gray) "
        f"in {m.wall_seconds:.2f}s, {m.exchange_messages} wiring exchanges"
    )
    if args.verify:
        report = verify_compiled(compiled)
        status = "PASS" if report.passed else f"FAIL {report.failures()}"
        print(f"verification: {status}")
        if not report.passed:
            return 1
    if args.output:
        n = write_model_file(compiled.network, args.output)
        print(f"wrote explicit model: {args.output} ({n} bytes)")
    return 0


def _run_backend(args: argparse.Namespace) -> str:
    """Resolve the execution backend from ``--backend``/legacy ``--pgas``."""
    backend = getattr(args, "backend", None)
    if backend:
        return backend
    return "pgas" if getattr(args, "pgas", False) else "mpi"


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler.diskmodel import read_model_file
    from repro.exec import ExecLayout, make_adapter

    if args.model == "quickstart":
        from repro.apps.quicknet import build_quickstart_network

        network = build_quickstart_network()
    else:
        network = read_model_file(args.model)

    backend = _run_backend(args)
    if args.profile and backend.startswith("pool"):
        print(
            "error: --profile needs in-process rank state "
            "(use a sequential backend)",
            file=sys.stderr,
        )
        return 2
    layout = ExecLayout(
        n_processes=args.processes,
        threads_per_process=args.threads,
        record_spikes=args.stats,
        workers=getattr(args, "workers", 1) or 1,
    )
    with make_adapter(backend) as sim:
        sim.prepare(network, layout)
        result = sim.run(args.ticks)
        print(
            f"ran {args.ticks} ticks on {args.processes} processes ({backend}): "
            f"{result.total_spikes} spikes, {result.mean_rate_hz:.2f} Hz, "
            f"{sim.metrics.messages_per_tick():.1f} msgs/tick, "
            f"host {sim.metrics.host.total:.2f}s"
        )
        if hasattr(sim, "host_utilization"):
            u = sim.host_utilization()
            print(
                f"host cores: {u['workers']} worker(s), "
                f"cpu {u['cpu_s']:.2f}s / wall {u['wall_s']:.2f}s = "
                f"{u['utilization']:.2f}x core utilization"
            )
        if args.stats:
            from repro.analysis.stats import spike_train_stats

            s = spike_train_stats(sim.recorder, network.n_neurons, args.ticks)
            print(
                f"stats: isi_cv={s.isi_cv:.2f} synchrony={s.synchrony:.2f} "
                f"active={s.active_fraction:.0%}"
            )
        if args.profile:
            from repro.core.profiling import profile_report

            print(profile_report(sim))
        if args.trace:
            # --trace without --stats is rejected at parse time in main().
            from repro.core.trace import write_trace

            nbytes = write_trace(sim.recorder, args.trace)
            print(f"wrote spike trace: {args.trace} ({nbytes} bytes)")
    return 0


_BACKEND_NOTES = {
    "sequential": "in-process MPI-style reference backend",
    "mpi": "alias of sequential",
    "pgas": "in-process one-sided (PGAS) backend",
    "pool": "host-parallel workers, shared-memory spike windows",
    "pool-pgas": "alias of pool",
    "pool-mpi": "host-parallel workers, pickled mailbox batches",
}


def _cmd_exec_info(args: argparse.Namespace) -> int:
    from repro.exec import backend_names

    print("execution backends (docs/execution.md):")
    for name in backend_names():
        print(f"  {name:<11} {_BACKEND_NOTES.get(name, '')}")
    # Host facts are exec-host territory: they steer worker counts only,
    # never simulated results.  # repro: exec-host
    cores = os.cpu_count() or 1
    print(
        f"\nhost: {cores} core(s), start method 'spawn' "
        "(workers are seeded from the model, never from host entropy)"
    )
    if cores < 2:
        print(
            "note: single-core host — pool backends stay byte-identical "
            "but will not beat sequential throughput"
        )
    return 0


def _cmd_exec_run(args: argparse.Namespace) -> int:
    return _cmd_run(args)


def _cmd_macaque(args: argparse.Namespace) -> int:
    from repro.cocomac.model import build_macaque_model
    from repro.core.config import CompassConfig
    from repro.core.simulator import Compass

    model = build_macaque_model(total_cores=args.cores, seed=args.seed)
    net = model.compiled.network
    print(
        f"macaque model: {model.n_regions} regions, {net.n_cores} cores, "
        f"{model.white_matter_fraction:.0%} white matter"
    )
    sim = Compass(net, CompassConfig(n_processes=args.processes))
    result = sim.run(args.ticks)
    print(
        f"ran {args.ticks} ticks: {result.total_spikes} spikes, "
        f"{result.mean_rate_hz:.2f} Hz mean rate"
    )
    return 0


def _emit_check_output(args: argparse.Namespace, text: str) -> None:
    """Print a checker document and honour a ``--out`` copy."""
    out = getattr(args, "out", None)
    if out:
        _write_report(out, text)
        print(f"wrote {args.format} report: {out}")
    end = "" if text.endswith("\n") else "\n"
    print(text, end=end)


def _cmd_check_lint(args: argparse.Namespace) -> int:
    from repro.check.lint import run_lint
    from repro.check.rules import rules_by_id
    from repro.check.serialize import lint_results, lint_rule_metas, to_json, to_sarif

    paths = args.paths
    if not paths:
        # Default to linting the installed package itself.
        from pathlib import Path

        import repro

        paths = [Path(repro.__file__).parent]
    try:
        rules = rules_by_id(args.rule) if args.rule else None
        report = run_lint(paths, rules=rules)
    except KeyError as exc:
        # str(KeyError) wraps its argument in quotes; unwrap for display.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        text = to_json(
            "repro.check.lint",
            lint_results(report.violations),
            summary={"files_checked": report.files_checked},
        )
    elif args.format == "sarif":
        text = to_sarif(
            "repro.check.lint", lint_rule_metas(), lint_results(report.violations)
        )
    else:
        text = report.format()
    _emit_check_output(args, text)
    return 0 if report.passed else 1


def _cmd_check_races(args: argparse.Namespace) -> int:
    from repro.core.config import CompassConfig
    from repro.core.simulator import Compass

    if args.model == "macaque":
        from repro.cocomac.model import build_macaque_model

        cores = args.cores if args.cores is not None else 128
        network = build_macaque_model(
            total_cores=cores, seed=args.seed
        ).compiled.network
    else:
        from repro.apps.quicknet import build_quickstart_network

        cores = args.cores if args.cores is not None else 16
        network = build_quickstart_network(n_cores=cores, seed=args.seed)

    cfg = CompassConfig(
        n_processes=args.processes, threads_per_process=args.threads
    )
    sim = Compass(network, cfg, sanitize=True)
    sim.run(args.ticks)
    report = sim.race_report()
    if args.format == "json":
        from repro.check.serialize import race_results, to_json

        text = to_json(
            "repro.check.races",
            race_results(report),
            summary={
                "ticks": args.ticks,
                "processes": args.processes,
                "threads": args.threads,
                "model": args.model,
                "cores": network.n_cores,
            },
        )
    elif args.format == "sarif":
        from repro.check.serialize import RACE_RULES, race_results, to_sarif

        text = to_sarif("repro.check.races", RACE_RULES, race_results(report))
    else:
        text = (
            f"ran {args.ticks} sanitized ticks on {args.processes} ranks x "
            f"{args.threads} threads ({args.model}, {network.n_cores} cores)\n"
        ) + report.format()
    _emit_check_output(args, text)
    return 0 if report.passed else 1


def _cmd_check_flow(args: argparse.Namespace) -> int:
    from repro.check.flow import load_baseline, run_flow, write_baseline
    from repro.check.flow.report import FLOW_RULES, TOOL_NAME
    from repro.check.serialize import to_json, to_sarif

    paths = args.paths
    if not paths:
        # Default to analysing the installed package itself.
        from pathlib import Path

        import repro

        paths = [Path(repro.__file__).parent]
    if args.bless:
        if not args.baseline:
            print("error: --bless requires --baseline FILE", file=sys.stderr)
            return 2
        report = run_flow(paths, baseline=None)
        write_baseline(args.baseline, report.findings)
        print(
            f"blessed {len(report.findings)} finding(s) into baseline: "
            f"{args.baseline}"
        )
        return 0
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = run_flow(paths, baseline=baseline)
    report.baseline_path = str(args.baseline) if args.baseline else None
    if args.format == "json":
        text = to_json(
            TOOL_NAME,
            report.to_results(),
            summary={
                "files_checked": report.files_checked,
                "functions_analyzed": report.functions_analyzed,
                "unresolved_calls": report.unresolved_calls,
                "new_findings": len(report.new_findings),
                "baseline": report.baseline_path,
            },
        )
    elif args.format == "sarif":
        text = to_sarif(TOOL_NAME, FLOW_RULES, report.to_results())
    else:
        text = report.format()
    _emit_check_output(args, text)
    return 0 if report.passed else 1


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.check.model import check_model
    from repro.compiler.coreobject import CoreObject
    from repro.compiler.pcc import ParallelCompassCompiler

    from repro.errors import ReproError

    try:
        obj = CoreObject.from_json(args.coreobject)
        # The checker is run explicitly below so a failing model still
        # produces a full diagnostic listing instead of a raised error.
        compiled = ParallelCompassCompiler(model_check=False).compile(obj)
    except FileNotFoundError:
        print(f"error: no such file: {args.coreobject}", file=sys.stderr)
        return 2
    except ReproError as exc:
        # The model is broken before the structural checks can even run.
        print(f"ERROR [compile] {exc}")
        print("model check failed: model does not compile")
        return 1
    report = check_model(compiled)
    print(report.format())
    return 0 if report.passed else 1


_FIGURES = ("fig4a", "fig4b", "fig5", "fig6", "fig7", "headline")


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.cocomac.export import export_model
    from repro.cocomac.model import build_macaque_coreobject

    model = build_macaque_coreobject(total_cores=args.cores, seed=args.seed)
    for path in export_model(model, args.directory):
        print(f"wrote {path}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.perf.report import format_table, paper_vs_model

    if args.csv:
        from repro.perf.sweep import export_all

        for path in export_all(args.csv):
            print(f"wrote {path}")
        return 0

    wanted = _FIGURES if args.name == "all" else (args.name,)
    for name in wanted:
        if name == "fig4a":
            from repro.perf.weak_scaling import weak_scaling_series

            rows = [
                (f"{p.racks:g}", p.cpus, round(p.times.total, 1), f"{p.slowdown:.0f}x")
                for p in weak_scaling_series()
            ]
            print(format_table(["racks", "cpus", "total_s", "slowdown"], rows,
                               title="Fig 4(a) weak scaling"))
        elif name == "fig4b":
            from repro.perf.weak_scaling import weak_scaling_series

            rows = [
                (f"{p.racks:g}", f"{p.messages_per_tick/1e6:.2f}M",
                 f"{p.spikes_per_tick/1e6:.2f}M", f"{p.bytes_per_tick/1e9:.2f}")
                for p in weak_scaling_series()
            ]
            print(format_table(["racks", "msgs/tick", "spikes/tick", "GB/tick"],
                               rows, title="Fig 4(b) messaging"))
        elif name == "fig5":
            from repro.perf.strong_scaling import strong_scaling_series

            rows = [
                (f"{p.racks:g}", round(p.times.total, 1), f"{p.speedup:.1f}x")
                for p in strong_scaling_series()
            ]
            print(format_table(["racks", "total_s", "speedup"], rows,
                               title="Fig 5 strong scaling (32M cores)"))
        elif name == "fig6":
            from repro.perf.thread_scaling import thread_scaling_series

            rows = [
                (p.threads, f"{p.speedup_total:.2f}x") for p in thread_scaling_series()
            ]
            print(format_table(["threads", "speedup"], rows,
                               title="Fig 6 thread scaling (64M cores)"))
        elif name == "fig7":
            from repro.perf.realtime import realtime_series

            rows = [
                (p.backend, f"{p.racks:g}", round(p.seconds, 2),
                 "yes" if p.realtime else "no")
                for p in realtime_series()
            ]
            print(format_table(["impl", "racks", "seconds", "real-time"], rows,
                               title="Fig 7 PGAS vs MPI (81K cores)"))
        elif name == "headline":
            from repro.perf.headline import headline_summary

            s = headline_summary()
            print(paper_vs_model(s["paper"], s["model"]))
        print()
    return 0


def _resilience_network(args: argparse.Namespace):
    if args.model == "macaque":
        from repro.cocomac.model import build_macaque_model

        cores = args.cores if args.cores is not None else 128
        return build_macaque_model(
            total_cores=cores, seed=args.seed
        ).compiled.network
    from repro.apps.quicknet import build_quickstart_network

    cores = args.cores if args.cores is not None else 8
    return build_quickstart_network(n_cores=cores, seed=args.seed)


def _resilience_schedule(args: argparse.Namespace):
    from repro.resilience import (
        FaultSchedule,
        MessageCorruption,
        MessageDrop,
        MessageDuplicate,
        RankCrash,
    )

    events = []
    for tick, rank in args.crash_at or ():
        events.append(RankCrash(tick=tick, rank=rank))
    for kind, specs in (
        (MessageDrop, args.drop_at),
        (MessageDuplicate, args.dup_at),
        (MessageCorruption, args.corrupt_at),
    ):
        for tick, src, dest in specs or ():
            events.append(kind(tick=tick, source=src, dest=dest))
    if events:
        return FaultSchedule(events)
    return FaultSchedule.random(
        seed=args.fault_seed,
        ticks=args.ticks,
        n_ranks=args.processes,
        crashes=args.crashes,
        drops=args.drops,
        duplicates=args.duplicates,
        corruptions=args.corruptions,
    )


def _resilience_run(args: argparse.Namespace):
    """Shared machinery of ``resilience inject`` and ``resilience report``."""
    from repro.exec import ExecLayout, make_adapter
    from repro.resilience import RecoveryPolicy, ResilientRunner

    network = _resilience_network(args)
    layout = ExecLayout(n_processes=args.processes, record_spikes=True)

    def factory():
        return make_adapter("mpi").prepare(network, layout)

    runner = ResilientRunner(
        factory,
        schedule=_resilience_schedule(args),
        checkpoint_interval=args.interval,
        policy=RecoveryPolicy(kind=args.policy),
    )
    result = runner.run(args.ticks)
    return factory, runner, result


def _cmd_resilience_inject(args: argparse.Namespace) -> int:
    from repro.resilience import spike_digest

    factory, runner, result = _resilience_run(args)
    inj = runner.injector
    print(
        f"ran {args.ticks} ticks on {args.processes} ranks under "
        f"{len(runner.schedule)} fault event(s) (policy={args.policy}, "
        f"interval={args.interval})"
    )
    print(
        f"faults: {len(inj.crashes)} crash(es), {inj.dropped} dropped, "
        f"{inj.duplicated} duplicated, {inj.corrupted} corrupted; "
        f"{len(runner.report.failures)} recovery(ies), "
        f"{runner.report.lost_ticks} lost tick(s)"
    )
    digest = spike_digest(result.spikes)
    print(f"spike digest: {digest}")
    if args.verify:
        clean = factory().run(args.ticks)
        ok = spike_digest(clean.spikes) == digest
        print(f"verify vs uninterrupted run: {'MATCH' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    return 0


def _obs_network(args: argparse.Namespace, obs):
    """Build the model for an observed run; macaque compiles under ``obs``."""
    if args.model == "macaque":
        from repro.cocomac.model import build_macaque_coreobject
        from repro.compiler.pcc import ParallelCompassCompiler

        cores = args.cores if args.cores is not None else 128
        model = build_macaque_coreobject(total_cores=cores, seed=args.seed)
        return ParallelCompassCompiler(obs=obs).compile(model.coreobject).network
    from repro.apps.quicknet import build_quickstart_network

    cores = args.cores if args.cores is not None else 16
    return build_quickstart_network(n_cores=cores, seed=args.seed)


def _obs_run(args: argparse.Namespace, obs):
    """Run the configured simulation under ``obs``; returns the simulator.

    Explicit fault options route the run through the resilience driver so
    the trace carries fault/checkpoint/recovery instants; otherwise the
    simulator runs directly on the chosen backend.
    """
    from repro.exec import ExecLayout, make_adapter

    network = _obs_network(args, obs)
    layout = ExecLayout(
        n_processes=args.processes, threads_per_process=args.threads
    )
    has_faults = any(
        spec for spec in (args.crash_at, args.drop_at, args.dup_at, args.corrupt_at)
    )
    if has_faults:
        if args.pgas:
            print(
                "error: fault injection requires the MPI backend (drop --pgas)",
                file=sys.stderr,
            )
            return None
        from repro.resilience import RecoveryPolicy, ResilientRunner

        def factory():
            return make_adapter("mpi", obs=obs).prepare(network, layout)

        runner = ResilientRunner(
            factory,
            schedule=_resilience_schedule(args),
            checkpoint_interval=args.interval,
            policy=RecoveryPolicy(kind=args.policy),
        )
        runner.run(args.ticks)
        return runner.sim
    sim = make_adapter(_run_backend(args), obs=obs).prepare(network, layout)
    sim.run(args.ticks)
    return sim


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.obs.jsonl import write_event_log
    from repro.obs.perfetto import (
        to_chrome_trace,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.obs.prometheus import write_textfile

    obs = Observability.with_tracing()
    sim = _obs_run(args, obs)
    if sim is None:
        return 2
    tr = obs.tracer
    errors = validate_chrome_trace(to_chrome_trace(tr))
    if errors:
        for err in errors:
            print(f"error: invalid trace: {err}", file=sys.stderr)
        return 1
    backend = "pgas" if args.pgas else "mpi"
    print(
        f"traced {args.ticks} ticks on {args.processes} processes ({backend}): "
        f"{len(tr.events)} events ({tr.count(ph='X')} spans, "
        f"{tr.count(ph='i')} instants)"
    )
    path = write_chrome_trace(tr, args.out)
    print(f"wrote chrome trace: {path} (load in ui.perfetto.dev)")
    if args.jsonl:
        path = write_event_log(tr, args.jsonl)
        print(f"wrote event log: {path}")
    if args.prom:
        path = write_textfile(obs.registry, args.prom)
        print(f"wrote prometheus textfile: {path}")
    return 0


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.obs.prometheus import render_textfile, write_textfile

    # Metrics need only the registry; the tracer stays the null tracer,
    # which is also the zero-overhead configuration being demonstrated.
    obs = Observability.off()
    sim = _obs_run(args, obs)
    if sim is None:
        return 2
    if args.out:
        path = write_textfile(obs.registry, args.out)
        print(
            f"ran {args.ticks} ticks on {args.processes} processes: "
            f"{len(obs.registry)} instruments"
        )
        print(f"wrote prometheus textfile: {path}")
    else:
        print(render_textfile(obs.registry), end="")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.jsonl import first_divergence, read_event_log

    try:
        a = read_event_log(args.log_a)
        b = read_event_log(args.log_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    div = first_divergence(a, b, name=args.name, kind=args.kind)
    if div is None:
        if args.name:
            n = sum(1 for r in a if r.get("name") == args.name)
            scope = f" named {args.name!r}"
        elif args.kind:
            n = sum(1 for r in a if r.get("kind") == args.kind)
            scope = f" of kind {args.kind!r}"
        else:
            n, scope = len(a), ""
        print(f"logs are identical: {n} records{scope}")
        return 0
    print(div.describe())
    return 1


def _cmd_obs_journey(args: argparse.Namespace) -> int:
    from repro.obs.jsonl import read_event_log
    from repro.obs.live import find_traces, reconstruct_journey

    try:
        records = read_event_log(args.events)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    traces = find_traces(
        records, job=args.job, tenant=args.tenant, trace=args.trace
    )
    if not traces:
        selectors = " ".join(
            f"{k}={v!r}"
            for k, v in (
                ("job", args.job), ("tenant", args.tenant), ("trace", args.trace)
            )
            if v is not None
        )
        print(
            f"error: no job traces match {selectors or 'the log'} "
            f"(was the run traced?)",
            file=sys.stderr,
        )
        return 2
    if len(traces) > 1:
        # Per-shard job ids collide across shards; without --tenant the
        # selector can match one journey per shard.
        print(
            f"note: {len(traces)} traces match (per-shard job ids collide "
            f"across shards); showing the first — disambiguate with "
            f"--tenant or --trace"
        )
    print(reconstruct_journey(records, traces[0]).format())
    return 0


def _write_report(path: str, text: str) -> None:  # repro: obs-flush
    from pathlib import Path

    Path(path).write_text(text)


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analysis import analyze_report, load_events

    # load_events validates existence/emptiness with a typed AnalysisError
    # (exit code 2 via main's ReproError handler).
    report = analyze_report(load_events(args.events))
    if args.out:
        _write_report(args.out, report)
        print(f"wrote analysis report: {args.out}")
    else:
        print(report, end="")
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from repro.obs.analysis import flame_table, load_events, write_folded

    events = load_events(args.events)
    table = flame_table(events, limit=args.limit)
    if args.folded:
        path = write_folded(events, args.folded)
        print(f"wrote folded flame stacks: {path}")
    if args.out:
        _write_report(args.out, table)
        print(f"wrote flame table: {args.out}")
    else:
        print(table, end="")
    return 0


def _cmd_obs_gate(args: argparse.Namespace) -> int:
    from repro.obs.analysis import (
        append_history,
        format_gate_report,
        gate_results,
        load_bench_results,
        load_history,
        record_from_bench,
    )
    from repro.obs.analysis.regress import failures

    results = load_bench_results(args.results)
    if args.bless:
        path = append_history(
            args.history, [record_from_bench(p) for p in results]
        )
        print(f"blessed {len(results)} bench result(s) into {path}")
    # A missing/empty history raises the typed error that points at
    # --bless (exit code 2 via main's ReproError handler).
    history = load_history(args.history)
    verdicts = gate_results(
        results,
        history,
        rel_tol=args.rel_tol,
        mad_k=args.mad_k,
        min_history=args.min_history,
    )
    report = format_gate_report(verdicts)
    if args.out:
        _write_report(args.out, report)
        print(f"wrote gate report: {args.out}")
    print(report, end="")
    bad = failures(verdicts)
    if bad and args.report_only:
        print(f"(report-only: {len(bad)} regression(s) not enforced)")
        return 0
    return 1 if bad else 0


def _cmd_obs_prof(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.obs.analysis import (
        fold_stacks,
        folded_lines,
        load_events,
        merge_folded,
    )
    from repro.obs.prof import format_host_report

    obs = Observability.with_profiling(
        hz=args.hz, sampler=not args.no_sampler, memory=not args.no_memory
    )
    obs.prof.start()
    try:
        sim = _obs_run(args, obs)
    finally:
        obs.prof.stop()
    if sim is None:
        return 2
    backend = "pgas" if args.pgas else "mpi"
    print(
        f"profiled {args.ticks} ticks on {args.processes} processes "
        f"({backend}): {len(obs.prof.rows())} phase/rank rows, "
        f"{obs.prof.total_work_units} work units"
    )
    if args.folded:
        folded = obs.prof.folded()
        if args.spans:
            folded = merge_folded(folded, fold_stacks(load_events(args.spans)))
        _write_report(
            args.folded,
            "\n".join(folded_lines(folded)) + "\n" if folded else "",
        )
        print(f"wrote folded host stacks: {args.folded}")
    if args.mem_out and obs.prof.mem_report is not None:
        _write_report(args.mem_out, obs.prof.mem_report.to_json())
        print(f"wrote memory report: {args.mem_out}")
    report = format_host_report(obs.prof, limit=args.limit)
    if args.out:
        _write_report(args.out, report)
        print(f"wrote host profile report: {args.out}")
    else:
        print(report, end="")
    return 0


def _cmd_obs_why(args: argparse.Namespace) -> int:
    from repro.errors import AnalysisError
    from repro.obs.analysis import load_history
    from repro.obs.prof import why_history, why_paths

    if args.history:
        if args.old or args.new:
            raise AnalysisError(
                "pass either OLD NEW operands or --history, not both"
            )
        report = why_history(load_history(args.history))
    else:
        if not (args.old and args.new):
            raise AnalysisError(
                "obs why needs OLD and NEW operands (or --history FILE)"
            )
        report = why_paths(args.old, args.new)
    text = report.format(limit=args.limit)
    if args.out:
        _write_report(args.out, text)
        print(f"wrote root-cause report: {args.out}")
    print(text, end="")
    if args.fail_on_regression and any(
        f.gated and f.delta > 0 for f in report.findings
    ):
        return 1
    return 0


def _serve_config(args: argparse.Namespace):
    """Build a validated ServeConfig from serve CLI flags."""
    from repro.serve.server import ServeConfig

    fault_schedule = None
    if getattr(args, "crash_at", None):
        from repro.resilience.faults import FaultSchedule, RankCrash

        fault_schedule = FaultSchedule(
            [RankCrash(tick=t, rank=r) for t, r in args.crash_at]
        )
    return ServeConfig(
        workers=args.workers,
        processes=args.processes,
        threads=args.threads,
        backend=_run_backend(args),
        pool_workers=args.pool_workers,
        max_batch_size=args.max_batch,
        max_batch_delay_us=args.batch_delay_us,
        queue_capacity=args.queue_capacity,
        fault_schedule=fault_schedule,
    )


def _serve_tenants(count: int) -> tuple[str, ...]:
    return tuple(f"tenant-{chr(ord('a') + i)}" for i in range(count))


def _cmd_serve_run(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import ClosedLoopLoad, build_report, open_loop_load
    from repro.serve.server import SimServer

    server = SimServer(_serve_config(args))
    tenants = _serve_tenants(args.tenants)
    if args.mode == "open":
        open_loop_load(
            server,
            rate_per_s=args.rate,
            jobs=args.jobs,
            tenants=tenants,
            model=args.model,
            cores=args.cores,
            ticks_lo=args.ticks_lo,
            ticks_hi=args.ticks_hi,
            deadline_us=args.deadline_us,
            seed=args.seed,
            model_seed=args.model_seed,
        )
    else:
        load = ClosedLoopLoad(
            server,
            clients=args.clients,
            jobs_per_client=args.jobs_per_client,
            think_us=args.think_us,
            tenants=tenants,
            model=args.model,
            cores=args.cores,
            ticks_lo=args.ticks_lo,
            ticks_hi=args.ticks_hi,
            deadline_us=args.deadline_us,
            seed=args.seed,
            model_seed=args.model_seed,
        )
        load.start()
    server.run()
    report = build_report(server)
    text = report.format()
    print(text)
    if args.out:
        _write_report(args.out, text + "\n")
        print(f"wrote latency report: {args.out}")
    if args.json:
        _write_report(args.json, report.to_json() + "\n")
        print(f"wrote json report: {args.json}")
    return 0


def _cmd_serve_submit(args: argparse.Namespace) -> int:
    from repro.serve.jobs import DONE, JobSpec
    from repro.serve.server import SimServer

    server = SimServer(_serve_config(args))
    spec = JobSpec(
        tenant=args.tenant,
        model=args.model,
        cores=args.cores,
        ticks=args.ticks,
        priority=args.priority,
        seed=args.model_seed,
        deadline_us=args.deadline_us,
    )
    jid = server.submit(spec, at_us=0.0)
    server.run()
    job = server.jobs[jid]
    if job.status != DONE:
        print(f"job {jid} rejected: {job.reject_reason}", file=sys.stderr)
        return 1
    deadline = (
        "missed" if job.deadline_missed
        else ("met" if spec.deadline_us is not None else "none")
    )
    print(
        f"job {jid} done: latency={job.latency_us:.1f}us "
        f"(wait={job.wait_us:.1f}us run={job.run_us:.1f}us), "
        f"batch={job.batch_id} size={job.batch_size}, deadline={deadline}"
    )
    return 0


def _cmd_serve_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve.loadgen import LatencyReport

    report = LatencyReport.from_json(Path(args.report).read_text())
    print(report.format())
    return 0


def _jsonl_stream(path: str):  # repro: obs-flush
    """Open a line-streaming JSONL sink; returns (file, write_record)."""
    import json

    fh = open(path, "w")

    def write(record: dict) -> None:
        fh.write(json.dumps(record, sort_keys=True) + "\n")

    return fh, write


def _cmd_shard_run(args: argparse.Namespace) -> int:
    from repro.shard.autoscale import AutoscalePolicy
    from repro.shard.fleet import build_fleet_report
    from repro.shard.loadgen import fleet_open_loop
    from repro.shard.router import FleetConfig, ShardRouter

    from dataclasses import replace

    # Shard servers account for completions in fleet hooks, so per-job
    # records are dropped as they finish: memory stays O(latencies).
    serve = replace(_serve_config(args), keep_records=False)
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(
            interval_us=args.scale_interval_us,
            high_depth_per_worker=args.scale_high,
            low_depth_per_worker=args.scale_low,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            cooldown_intervals=args.scale_cooldown,
        )
    telemetry = None
    if args.slo or args.rollups or args.alerts:
        from repro.obs.live import SLO, TelemetryConfig

        target = args.slo_target_us or args.deadline_us or 100_000.0
        telemetry = TelemetryConfig(
            window_us=args.window_us,
            slos=(SLO("latency", target, args.slo_budget),),
        )
    obs = None
    if args.events:
        from repro.obs import Observability

        obs = Observability.with_tracing()
    config = FleetConfig(
        shards=args.shards,
        vnodes=args.vnodes,
        spill=args.spill,
        hot_depth=args.hot_depth,
        serve=serve,
        autoscale=autoscale,
        fault_shard=args.fault_shard if serve.fault_schedule is not None else -1,
        telemetry=telemetry,
    )
    router = ShardRouter(config, obs=obs)
    sink_files = []
    if router.telemetry is not None:
        if args.rollups:
            fh, write = _jsonl_stream(args.rollups)
            sink_files.append((fh, args.rollups, "rollup stream"))
            router.telemetry.rollup_sink = write
        if args.alerts:
            fh, write = _jsonl_stream(args.alerts)
            sink_files.append((fh, args.alerts, "alert log"))
            router.telemetry.alert_sink = write
    load = fleet_open_loop(
        router,
        rate_per_s=args.rate,
        jobs=args.jobs,
        tenants=args.tenants,
        model=args.model,
        cores=args.cores,
        ticks_lo=args.ticks_lo,
        ticks_hi=args.ticks_hi,
        deadline_us=args.deadline_us,
        seed=args.seed,
        model_seed=args.model_seed,
        hot_fraction=args.hot_fraction,
        hot_tenants=args.hot_tenants,
    )
    router.run()
    for fh, path, label in sink_files:
        fh.close()
        print(f"wrote {label}: {path}")
    report = build_fleet_report(router)
    text = report.format()
    print(f"offered={load.offered} routed={load.routed} "
          f"fleet_rejected={load.fleet_rejected}\n")
    print(text)
    if args.events:
        from repro.obs.jsonl import write_event_log

        path = write_event_log(router.obs.tracer, args.events)
        print(f"wrote event log: {path} (inspect with 'repro obs journey')")
    if args.out:
        _write_report(args.out, text + "\n")
        print(f"wrote fleet report: {args.out}")
    if args.json:
        _write_report(args.json, report.to_json() + "\n")
        print(f"wrote json report: {args.json}")
    return 0


def _cmd_shard_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.shard.fleet import FleetReport

    report = FleetReport.from_json(Path(args.report).read_text())
    print(report.format())
    return 0


def _cmd_resilience_report(args: argparse.Namespace) -> int:
    _, runner, result = _resilience_run(args)
    print(runner.report.format())
    sim_total = result.metrics.simulated.total
    if sim_total > 0:
        frac = runner.report.overhead_fraction(sim_total)
        print(f"\noverhead fraction of simulated run time: {frac:.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compass",
        description="Compass/TrueNorth reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and machine facts").set_defaults(
        func=_cmd_info
    )

    p = sub.add_parser("compile", help="compile a CoreObject JSON file")
    p.add_argument("coreobject", help="path to a CoreObject .json")
    p.add_argument("-o", "--output", help="write the explicit model (.npz)")
    p.add_argument("--verify", action="store_true", help="verify the result")
    p.set_defaults(func=_cmd_compile)

    def _add_run_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("model", help="explicit model .npz, or 'quickstart'")
        sp.add_argument("--ticks", type=_positive_int, default=100)
        sp.add_argument("--processes", type=_positive_int, default=1)
        sp.add_argument("--threads", type=_positive_int, default=1)
        sp.add_argument("--pgas", action="store_true", help="use the PGAS backend")
        sp.add_argument("--stats", action="store_true", help="spike-train statistics")
        sp.add_argument(
            "--profile", action="store_true", help="per-rank load profile"
        )
        sp.add_argument("--trace", help="write the spike trace to this file")

    p = sub.add_parser("run", help="simulate a model")
    _add_run_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "exec",
        help="execution backends: adapter-driven runs + host facts "
        "(see docs/execution.md)",
    )
    exec_sub = p.add_subparsers(dest="exec_cmd", required=True)
    q = exec_sub.add_parser(
        "info", help="list execution backends and host-core facts"
    )
    q.set_defaults(func=_cmd_exec_info)
    q = exec_sub.add_parser(
        "run", help="simulate a model on an explicitly chosen backend"
    )
    _add_run_args(q)
    q.add_argument(
        "--backend",
        default="pool",
        help="execution backend name (see 'repro exec info'; default: pool)",
    )
    q.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="host worker processes (pool backends)",
    )
    q.set_defaults(func=_cmd_exec_run)

    p = sub.add_parser("macaque", help="build + compile + run a macaque model")
    p.add_argument("--cores", type=_positive_int, default=128)
    p.add_argument("--ticks", type=_positive_int, default=200)
    p.add_argument("--processes", type=_positive_int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_macaque)

    p = sub.add_parser(
        "export", help="export the synthetic CoCoMac model (GraphML/CSV/JSON)"
    )
    p.add_argument("directory", help="output directory")
    p.add_argument("--cores", type=_positive_int, default=1024)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "check", help="determinism sanitizer (lint, flow, races, model)"
    )
    check_sub = p.add_subparsers(dest="check_command", required=True)

    def _add_format_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--format",
            choices=("text", "json", "sarif"),
            default="text",
            help="output format (default: text)",
        )
        sp.add_argument(
            "--out", metavar="FILE", help="also write the report to FILE"
        )

    q = check_sub.add_parser("lint", help="run the determinism lint rules")
    q.add_argument("paths", nargs="*", help="files/directories (default: repro pkg)")
    q.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="restrict to specific rule ids (repeatable, e.g. --rule DET103)",
    )
    _add_format_args(q)
    q.set_defaults(func=_cmd_check_lint)

    q = check_sub.add_parser(
        "flow", help="interprocedural nondeterminism taint analysis"
    )
    q.add_argument("paths", nargs="*", help="files/directories (default: repro pkg)")
    q.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted findings; only new findings fail",
    )
    q.add_argument(
        "--bless",
        action="store_true",
        help="rewrite --baseline to accept all current findings, then exit 0",
    )
    _add_format_args(q)
    q.set_defaults(func=_cmd_check_flow)

    q = check_sub.add_parser(
        "races", help="run a sanitized simulation and report races"
    )
    q.add_argument("--ticks", type=_positive_int, default=50)
    q.add_argument("--processes", type=_positive_int, default=4)
    q.add_argument("--threads", type=_positive_int, default=4)
    q.add_argument(
        "--cores",
        type=_positive_int,
        default=None,
        help="network size (default: 16 quickstart, 128 macaque)",
    )
    q.add_argument("--seed", type=int, default=0)
    q.add_argument(
        "--model", choices=("quickstart", "macaque"), default="quickstart"
    )
    _add_format_args(q)
    q.set_defaults(func=_cmd_check_races)

    q = check_sub.add_parser("model", help="model-check a CoreObject compile")
    q.add_argument("coreobject", help="path to a CoreObject .json")
    q.set_defaults(func=_cmd_check_model)

    p = sub.add_parser("figures", help="regenerate paper evaluation tables")
    p.add_argument("name", choices=_FIGURES + ("all",), nargs="?", default="all")
    p.add_argument("--csv", metavar="DIR", help="export all series as CSV instead")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser(
        "resilience", help="fault injection and checkpoint-based recovery"
    )
    res_sub = p.add_subparsers(dest="resilience_command", required=True)
    for name, helptext, func in (
        (
            "inject",
            "run under a fault schedule; recover and verify the raster",
            _cmd_resilience_inject,
        ),
        (
            "report",
            "run under a fault schedule; print the recovery-overhead report",
            _cmd_resilience_report,
        ),
    ):
        q = res_sub.add_parser(name, help=helptext)
        q.add_argument("--ticks", type=_positive_int, default=60)
        q.add_argument("--processes", type=_positive_int, default=2)
        q.add_argument(
            "--interval",
            type=_positive_int,
            default=10,
            help="checkpoint every N ticks",
        )
        q.add_argument("--policy", choices=("restart", "spare"), default="restart")
        q.add_argument(
            "--model", choices=("quickstart", "macaque"), default="quickstart"
        )
        q.add_argument(
            "--cores",
            type=_positive_int,
            default=None,
            help="network size (default: 8 quickstart, 128 macaque)",
        )
        q.add_argument("--seed", type=int, default=0, help="model seed")
        q.add_argument(
            "--crash-at",
            action="append",
            type=_crash_spec,
            metavar="TICK:RANK",
            help="kill RANK at TICK (repeatable)",
        )
        q.add_argument(
            "--drop-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="drop the first SRC→DEST message at/after TICK (repeatable)",
        )
        q.add_argument(
            "--dup-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="duplicate a SRC→DEST message (repeatable)",
        )
        q.add_argument(
            "--corrupt-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="corrupt a SRC→DEST message (repeatable)",
        )
        q.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for a random schedule (when no explicit events given)",
        )
        q.add_argument("--crashes", type=int, default=1)
        q.add_argument("--drops", type=int, default=0)
        q.add_argument("--duplicates", type=int, default=0)
        q.add_argument("--corruptions", type=int, default=0)
        if name == "inject":
            q.add_argument(
                "--verify",
                action="store_true",
                help="also run uninterrupted and compare spike digests",
            )
        q.set_defaults(func=func)

    p = sub.add_parser(
        "obs", help="deterministic span tracing and metrics export"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    for name, helptext, func in (
        (
            "trace",
            "run with span tracing; export Perfetto/JSONL/Prometheus",
            _cmd_obs_trace,
        ),
        (
            "metrics",
            "run with the metric registry; export Prometheus text",
            _cmd_obs_metrics,
        ),
    ):
        q = obs_sub.add_parser(name, help=helptext)
        q.add_argument(
            "--model", choices=("quickstart", "macaque"), default="quickstart"
        )
        q.add_argument(
            "--cores",
            type=_positive_int,
            default=None,
            help="network size (default: 16 quickstart, 128 macaque)",
        )
        q.add_argument("--ticks", type=_positive_int, default=20)
        q.add_argument("--processes", type=_positive_int, default=2)
        q.add_argument("--threads", type=_positive_int, default=1)
        q.add_argument("--seed", type=int, default=0, help="model seed")
        q.add_argument("--pgas", action="store_true", help="use the PGAS backend")
        q.add_argument(
            "--interval",
            type=_positive_int,
            default=10,
            help="checkpoint every N ticks (fault runs)",
        )
        q.add_argument("--policy", choices=("restart", "spare"), default="restart")
        q.add_argument(
            "--crash-at",
            action="append",
            type=_crash_spec,
            metavar="TICK:RANK",
            help="kill RANK at TICK; runs under the recovery driver (repeatable)",
        )
        q.add_argument(
            "--drop-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="drop the first SRC→DEST message at/after TICK (repeatable)",
        )
        q.add_argument(
            "--dup-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="duplicate a SRC→DEST message (repeatable)",
        )
        q.add_argument(
            "--corrupt-at",
            action="append",
            type=_message_spec,
            metavar="TICK:SRC:DEST",
            help="corrupt a SRC→DEST message (repeatable)",
        )
        if name == "trace":
            q.add_argument(
                "--out", default="trace.json", help="chrome-trace output path"
            )
            q.add_argument("--jsonl", help="also write the JSONL event log")
            q.add_argument("--prom", help="also write a Prometheus textfile")
        else:
            q.add_argument(
                "--out", help="write Prometheus text here (default: stdout)"
            )
        q.set_defaults(func=func)

    q = obs_sub.add_parser(
        "diff", help="first divergence between two JSONL event logs"
    )
    q.add_argument("log_a", help="baseline event log (.jsonl)")
    q.add_argument("log_b", help="comparison event log (.jsonl)")
    q.add_argument(
        "--name",
        help="compare only events with this name (e.g. 'tick' for the "
        "partition-invariant per-tick summaries)",
    )
    q.add_argument(
        "--kind",
        choices=("rollup", "alert"),
        help="compare only telemetry records of this kind (rollup/alert "
        "streams from 'shard run --slo')",
    )
    q.set_defaults(func=_cmd_obs_diff)

    q = obs_sub.add_parser(
        "journey",
        help="reconstruct one job's causal chain from a JSONL event log",
    )
    q.add_argument("events", help="JSONL event log (e.g. 'shard run --events')")
    q.add_argument("--job", type=int, help="job id (per shard)")
    q.add_argument("--tenant", help="tenant name, to disambiguate job ids")
    q.add_argument("--trace", help="exact 16-hex trace id")
    q.set_defaults(func=_cmd_obs_journey)

    q = obs_sub.add_parser(
        "analyze",
        help="critical-path + imbalance report from a JSONL event log",
    )
    q.add_argument("events", help="JSONL event log (from 'obs trace --jsonl')")
    q.add_argument("--out", help="write the report here (default: stdout)")
    q.set_defaults(func=_cmd_obs_analyze)

    q = obs_sub.add_parser(
        "flame",
        help="folded flame stacks + self/total table from a JSONL event log",
    )
    q.add_argument("events", help="JSONL event log (from 'obs trace --jsonl')")
    q.add_argument("--folded", help="write folded stacks here (flamegraph.pl)")
    q.add_argument("--out", help="write the self/total table here")
    q.add_argument(
        "--limit",
        type=_positive_int,
        default=40,
        help="rows in the self/total table",
    )
    q.set_defaults(func=_cmd_obs_flame)

    q = obs_sub.add_parser(
        "gate",
        help="perf-regression gate: BENCH_*.json results vs bench history",
    )
    q.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of BENCH_*.json files",
    )
    q.add_argument(
        "--history",
        default="benchmarks/results/bench_history.jsonl",
        help="append-only bench-history file",
    )
    q.add_argument(
        "--rel-tol",
        type=_positive_float,
        default=0.15,
        help="relative tolerance (threshold floor; sole bound for short "
        "histories)",
    )
    q.add_argument(
        "--mad-k",
        type=_positive_float,
        default=4.0,
        help="robust threshold: median + K * 1.4826 * MAD",
    )
    q.add_argument(
        "--min-history",
        type=_positive_int,
        default=4,
        help="history records required before the MAD threshold applies",
    )
    q.add_argument(
        "--report-only",
        action="store_true",
        help="print regressions but exit 0 (CI smoke mode)",
    )
    q.add_argument(
        "--bless",
        action="store_true",
        help="append the current results to the history first (accept a "
        "new baseline / an intentional regression)",
    )
    q.add_argument("--out", help="also write the gate report to this file")
    q.set_defaults(func=_cmd_obs_gate)

    q = obs_sub.add_parser(
        "prof",
        help="host-side sampling + memory profile of a run (repro.obs.prof)",
    )
    q.add_argument(
        "--model", choices=("quickstart", "macaque"), default="quickstart"
    )
    q.add_argument(
        "--cores",
        type=_positive_int,
        default=None,
        help="network size (default: 16 quickstart, 128 macaque)",
    )
    q.add_argument("--ticks", type=_positive_int, default=20)
    q.add_argument("--processes", type=_positive_int, default=2)
    q.add_argument("--threads", type=_positive_int, default=1)
    q.add_argument("--seed", type=int, default=0, help="model seed")
    q.add_argument("--pgas", action="store_true", help="use the PGAS backend")
    q.add_argument(
        "--hz",
        type=_positive_float,
        default=97.0,
        help="stack-sampler rate (host Hz; prime defaults avoid aliasing)",
    )
    q.add_argument(
        "--no-sampler", action="store_true", help="disable the stack sampler"
    )
    q.add_argument(
        "--no-memory",
        action="store_true",
        help="disable tracemalloc memory attribution",
    )
    q.add_argument(
        "--folded", help="write host folded stacks here (stackcollapse format)"
    )
    q.add_argument(
        "--spans",
        help="JSONL event log whose simulated work-unit stacks are merged "
        "into --folded (host;… next to rank N;…)",
    )
    q.add_argument("--mem-out", help="write the memory report JSON here")
    q.add_argument(
        "--limit",
        type=_positive_int,
        default=40,
        help="rows in the divergence table",
    )
    q.add_argument(
        "--out", help="write the divergence report here (default: stdout)"
    )
    # The prof run takes the fault-free path through _obs_run.
    q.set_defaults(
        func=_cmd_obs_prof,
        crash_at=None,
        drop_at=None,
        dup_at=None,
        corrupt_at=None,
        interval=10,
        policy="restart",
    )

    q = obs_sub.add_parser(
        "why",
        help="cross-run regression root-cause: rank metric/phase deltas",
    )
    q.add_argument(
        "old",
        nargs="?",
        help="baseline: BENCH_*.json, a results directory, or an events .jsonl",
    )
    q.add_argument("new", nargs="?", help="comparison side, same kind as OLD")
    q.add_argument(
        "--history",
        help="instead of OLD/NEW, diff the last two blessed entries per "
        "bench in this bench_history.jsonl",
    )
    q.add_argument(
        "--limit", type=_positive_int, default=20, help="ranked rows to print"
    )
    q.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when a gated lower-is-better metric regressed",
    )
    q.add_argument("--out", help="also write the report to this file")
    q.set_defaults(func=_cmd_obs_why)

    p = sub.add_parser(
        "serve", help="deterministic multi-tenant simulation service"
    )
    serve_sub = p.add_subparsers(dest="serve_command", required=True)

    def _serve_server_flags(q: argparse.ArgumentParser) -> None:
        q.add_argument("--workers", type=_positive_int, default=2)
        q.add_argument("--processes", type=_positive_int, default=1)
        q.add_argument("--threads", type=_positive_int, default=1)
        q.add_argument("--pgas", action="store_true", help="use the PGAS backend")
        q.add_argument(
            "--backend",
            choices=("mpi", "pgas", "pool"),
            default=None,
            help="execution backend (overrides --pgas; see 'repro exec info')",
        )
        q.add_argument(
            "--pool-workers",
            type=_positive_int,
            default=2,
            help="host worker processes per batch (pool backend)",
        )
        q.add_argument(
            "--max-batch",
            type=_positive_int,
            default=8,
            help="launch as soon as this many compatible jobs wait",
        )
        q.add_argument(
            "--batch-delay-us",
            type=_non_negative_float,
            default=0.0,
            help="hold the queue head up to this long (simulated us) "
            "waiting for batch companions",
        )
        q.add_argument("--queue-capacity", type=_positive_int, default=256)
        q.add_argument(
            "--model", choices=("quickstart", "macaque"), default="quickstart"
        )
        q.add_argument(
            "--cores", type=_positive_int, default=8, help="network size"
        )
        q.add_argument("--model-seed", type=int, default=42)
        q.add_argument(
            "--deadline-us",
            type=_positive_float,
            default=None,
            help="SLO deadline per job (simulated us; default: no SLO)",
        )
        q.add_argument(
            "--crash-at",
            action="append",
            type=_crash_spec,
            metavar="TICK:RANK",
            help="inject a rank crash into the first launched batch "
            "(repeatable; mpi backend only)",
        )

    q = serve_sub.add_parser(
        "run", help="run a seeded load and print the SLO latency report"
    )
    _serve_server_flags(q)
    q.add_argument("--mode", choices=("open", "closed"), default="open")
    q.add_argument("--seed", type=int, default=0, help="load-generator seed")
    q.add_argument("--tenants", type=_positive_int, default=2)
    q.add_argument(
        "--rate", type=_positive_float, default=100.0, help="open-loop jobs/s"
    )
    q.add_argument(
        "--jobs", type=_positive_int, default=50, help="open-loop job count"
    )
    q.add_argument("--clients", type=_positive_int, default=4)
    q.add_argument("--jobs-per-client", type=_positive_int, default=8)
    q.add_argument("--think-us", type=_non_negative_float, default=1000.0)
    q.add_argument("--ticks-lo", type=_positive_int, default=10)
    q.add_argument("--ticks-hi", type=_positive_int, default=40)
    q.add_argument("--out", help="write the text report here")
    q.add_argument("--json", help="write the JSON report here")
    q.set_defaults(func=_cmd_serve_run)

    q = serve_sub.add_parser(
        "submit", help="submit one job to a fresh service and report it"
    )
    _serve_server_flags(q)
    q.add_argument("--tenant", default="tenant-a")
    q.add_argument("--ticks", type=_positive_int, default=20)
    q.add_argument(
        "--priority", type=int, default=4, help="0 (urgent) .. 9 (batch)"
    )
    q.set_defaults(func=_cmd_serve_submit)

    q = serve_sub.add_parser(
        "report", help="pretty-print a JSON report from 'serve run --json'"
    )
    q.add_argument("report", help="JSON report file")
    q.set_defaults(func=_cmd_serve_report)

    p = sub.add_parser(
        "shard", help="sharded multi-cluster fleet over the serve tier"
    )
    shard_sub = p.add_subparsers(dest="shard_command", required=True)

    q = shard_sub.add_parser(
        "run", help="run a seeded fleet-scale load and print the FleetReport"
    )
    _serve_server_flags(q)
    q.add_argument("--shards", type=_positive_int, default=4)
    q.add_argument(
        "--vnodes",
        type=_positive_int,
        default=64,
        help="virtual nodes per shard on the hash ring",
    )
    q.add_argument(
        "--spill",
        type=int,
        default=1,
        help="clockwise neighbor shards a hot shard may overflow onto "
        "(0 disables spill-over)",
    )
    q.add_argument(
        "--hot-depth",
        type=_positive_int,
        default=32,
        help="queue depth at which the home shard counts as hot",
    )
    q.add_argument(
        "--fault-shard",
        type=int,
        default=0,
        help="shard whose server arms --crash-at faults",
    )
    q.add_argument(
        "--autoscale",
        action="store_true",
        help="enable per-shard watermark autoscaling",
    )
    q.add_argument("--scale-interval-us", type=_positive_float, default=50_000.0)
    q.add_argument(
        "--scale-high",
        type=_positive_float,
        default=4.0,
        help="grow watermark: queue depth per worker",
    )
    q.add_argument(
        "--scale-low",
        type=_non_negative_float,
        default=1.0,
        help="shrink watermark: queue depth per worker",
    )
    q.add_argument("--min-workers", type=_positive_int, default=1)
    q.add_argument("--max-workers", type=_positive_int, default=8)
    q.add_argument("--scale-cooldown", type=_positive_int, default=2)
    q.add_argument("--seed", type=int, default=0, help="load-generator seed")
    q.add_argument(
        "--tenants",
        type=_positive_int,
        default=100,
        help="synthetic tenant population size (names t0..tN-1)",
    )
    q.add_argument(
        "--rate", type=_positive_float, default=400.0, help="open-loop jobs/s"
    )
    q.add_argument(
        "--jobs", type=_positive_int, default=400, help="open-loop job count"
    )
    q.add_argument(
        "--hot-fraction",
        type=_non_negative_float,
        default=0.0,
        help="fraction of traffic concentrated on the first "
        "--hot-tenants tenants (popularity skew)",
    )
    q.add_argument("--hot-tenants", type=_positive_int, default=1)
    q.add_argument("--ticks-lo", type=_positive_int, default=10)
    q.add_argument("--ticks-hi", type=_positive_int, default=40)
    q.add_argument(
        "--slo",
        action="store_true",
        help="enable live telemetry: windowed rollups + burn-rate alerting",
    )
    q.add_argument(
        "--window-us",
        type=_positive_float,
        default=50_000.0,
        help="rollup window length (simulated us)",
    )
    q.add_argument(
        "--slo-target-us",
        type=_positive_float,
        default=None,
        help="SLO latency target (default: --deadline-us, else 100000)",
    )
    q.add_argument(
        "--slo-budget",
        type=_positive_float,
        default=0.05,
        help="SLO error budget (fraction of jobs allowed over target)",
    )
    q.add_argument("--rollups", help="stream rollup records here (.jsonl)")
    q.add_argument("--alerts", help="stream the alert log here (.jsonl)")
    q.add_argument(
        "--events",
        help="trace the run and write the JSONL event log here "
        "(enables causal job traces; see 'repro obs journey')",
    )
    q.add_argument("--out", help="write the text report here")
    q.add_argument("--json", help="write the JSON report here")
    q.set_defaults(func=_cmd_shard_run)

    q = shard_sub.add_parser(
        "report", help="pretty-print a JSON report from 'shard run --json'"
    )
    q.add_argument("report", help="JSON report file")
    q.set_defaults(func=_cmd_shard_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run" and args.trace and not args.stats:
        # Reject the misconfiguration before any work happens, not after
        # the (possibly long) run has already completed.
        parser.error("--trace requires --stats (spike recording)")
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit
        # quietly like any well-behaved filter.  Detach stdout so the
        # interpreter's shutdown flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
