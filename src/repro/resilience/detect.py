"""Simulated failure detection: heartbeats and per-phase timeouts.

Two complementary detectors, both advancing on **simulated time** (the
tick counter plus the :mod:`repro.runtime.timing` cost model — never the
host clock; rule DET106 enforces this discipline statically):

* **Per-phase timeouts** — the tick collective is a natural deadline:
  every live rank contributes every tick, so a crashed rank's missing
  contribution surfaces within the same tick as a
  :class:`repro.errors.RankFailureError` instead of the silent hang the
  real machine would produce (:func:`repro.runtime.collectives.phase_timeout`
  models the deadline's slack).
* **Heartbeats** — a liveness word piggybacked on the tick collective
  (:func:`repro.runtime.collectives.heartbeat_allreduce_time` charges its
  cost).  :class:`HeartbeatMonitor` counts consecutive missed beats per
  rank and declares failure past a miss threshold; this is the backstop
  for failures that never reach a collective, and the source of the
  detection-latency term in the recovery report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.collectives import heartbeat_allreduce_time


@dataclass(frozen=True)
class HeartbeatConfig:
    """Tuning of the simulated heartbeat protocol."""

    #: Beats are emitted every this many ticks (piggybacked on the
    #: tick collective, so 1 costs nothing extra per tick).
    period_ticks: int = 1
    #: Consecutive missed beats before a rank is declared failed.
    miss_threshold: int = 3
    #: Floor for the simulated duration of one tick when no machine
    #: model is configured (a TrueNorth tick is 1 ms of biology).
    nominal_tick_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.period_ticks <= 0:
            raise ValueError("period_ticks must be positive")
        if self.miss_threshold <= 0:
            raise ValueError("miss_threshold must be positive")
        if self.nominal_tick_s <= 0:
            raise ValueError("nominal_tick_s must be positive")

    @property
    def detection_latency_ticks(self) -> int:
        """Worst-case ticks between a crash and its declaration."""
        return self.period_ticks * self.miss_threshold

    def detection_latency_s(self, n_ranks: int, mean_tick_s: float = 0.0) -> float:
        """Simulated seconds from crash to declaration.

        ``mean_tick_s`` is the run's observed simulated tick duration
        (0 when no machine model is attached; the nominal 1 ms floor
        applies), plus the liveness allreduce the declaration rides on.
        """
        tick_s = max(mean_tick_s, self.nominal_tick_s)
        return self.detection_latency_ticks * tick_s + heartbeat_allreduce_time(
            max(n_ranks, 2)
        )


@dataclass(frozen=True)
class RankFailure:
    """One declared rank failure (the event the tick loop surfaces)."""

    rank: int
    #: First tick whose heartbeat the rank missed (the crash tick).
    crash_tick: int
    #: Tick at which the miss count crossed the threshold.
    detected_tick: int


class HeartbeatMonitor:
    """Counts consecutive missed heartbeats and declares failures.

    Drive it once per simulated tick with the set of ranks that
    participated; it returns newly declared failures.  A rank that
    resumes beating (spare takeover, reboot) before crossing the
    threshold is forgiven; a declared rank must be explicitly
    :meth:`reset` after recovery.
    """

    def __init__(self, n_ranks: int, config: HeartbeatConfig | None = None) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.config = config or HeartbeatConfig()
        self._misses = [0] * n_ranks
        self._declared = [False] * n_ranks
        self.failures: list[RankFailure] = []

    def observe_tick(self, tick: int, alive) -> list[RankFailure]:
        """Record one tick's heartbeats; return newly declared failures.

        ``alive`` is any container supporting ``rank in alive``.
        """
        if tick % self.config.period_ticks != 0:
            return []
        newly: list[RankFailure] = []
        for rank in range(self.n_ranks):
            if self._declared[rank]:
                continue
            if rank in alive:
                self._misses[rank] = 0
                continue
            self._misses[rank] += 1
            if self._misses[rank] >= self.config.miss_threshold:
                self._declared[rank] = True
                failure = RankFailure(
                    rank=rank,
                    crash_tick=tick
                    - (self._misses[rank] - 1) * self.config.period_ticks,
                    detected_tick=tick,
                )
                self.failures.append(failure)
                newly.append(failure)
        return newly

    def reset(self, rank: int) -> None:
        """Forget a rank's failure after recovery reinstates it."""
        self._misses[rank] = 0
        self._declared[rank] = False
