"""Deterministic fault schedules and the runtime fault injector.

The failure model covers what actually breaks on a 16-rack, hours-long
Compass run (§VI; Pastorelli et al. arXiv:1511.09325 report the same
operational pressure for distributed SNN simulation):

* **rank crashes** — a node dies at simulated tick *t*; its in-flight
  messages vanish and it stops participating in the tick collective;
* **message faults** — the wire drops, duplicates, or corrupts one
  aggregated spike buffer between a (source, dest) pair;
* **link degradation** — a torus dimension runs at reduced bandwidth for
  a window of ticks (timing-only: functional results are unaffected);
* **straggler threads** — one rank's OpenMP team is slowed for a window
  of ticks (timing-only).

Everything is *deterministic*: a :class:`FaultSchedule` is an immutable,
canonically ordered tuple of events, either written explicitly or drawn
up front from a seeded generator — the same seed always yields the same
schedule, so a faulted run is exactly reproducible (the bit-determinism
contract extends to the unhappy path).

Each discrete event fires **once**.  After the recovery driver rolls the
simulation back to a checkpoint, the replayed ticks pass the event's tick
without re-firing it — modelling a transient hardware event pinned to a
point in (simulated) real time, not to the tick counter.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.arch.spike import SpikeBatch


@dataclass(frozen=True)
class RankCrash:
    """The node hosting ``rank`` dies at the start of ``tick``."""

    tick: int
    rank: int


@dataclass(frozen=True)
class MessageDrop:
    """The wire eats the first source→dest message at or after ``tick``."""

    tick: int
    source: int
    dest: int


@dataclass(frozen=True)
class MessageDuplicate:
    """A link-level retransmission delivers one message twice."""

    tick: int
    source: int
    dest: int


@dataclass(frozen=True)
class MessageCorruption:
    """Bit flips in one payload; caught by the end-to-end checksum."""

    tick: int
    source: int
    dest: int


@dataclass(frozen=True)
class LinkDegrade:
    """Torus dimension ``dim`` runs ``factor``× slower for ``duration`` ticks."""

    tick: int
    duration: int
    dim: int
    factor: float


@dataclass(frozen=True)
class StragglerThread:
    """One thread of ``rank``'s team runs ``factor``× slower for a window."""

    tick: int
    duration: int
    rank: int
    factor: float


_MESSAGE_FAULTS = (MessageDrop, MessageDuplicate, MessageCorruption)
_MESSAGE_ACTIONS = {
    MessageDrop: "drop",
    MessageDuplicate: "duplicate",
    MessageCorruption: "corrupt",
}
_WINDOW_FAULTS = (LinkDegrade, StragglerThread)


def _event_key(event: Any) -> tuple:
    """Canonical total order: (tick, kind, fields)."""
    return (event.tick, type(event).__name__) + tuple(
        sorted(
            (k, float(v)) for k, v in vars(event).items() if k != "tick"
        )
    )


class FaultSchedule:
    """An immutable, canonically ordered set of fault events."""

    def __init__(self, events=()) -> None:
        events = tuple(events)
        for ev in events:
            if ev.tick < 0:
                raise ValueError(f"fault event at negative tick: {ev}")
            if isinstance(ev, _WINDOW_FAULTS) and ev.duration <= 0:
                raise ValueError(f"window fault needs positive duration: {ev}")
            if isinstance(ev, _WINDOW_FAULTS) and ev.factor < 1.0:
                raise ValueError(f"slowdown factor must be >= 1: {ev}")
        self.events = tuple(sorted(events, key=_event_key))

    @classmethod
    def random(
        cls,
        seed: int,
        ticks: int,
        n_ranks: int,
        crashes: int = 1,
        drops: int = 0,
        duplicates: int = 0,
        corruptions: int = 0,
        degrades: int = 0,
        stragglers: int = 0,
        torus_dims: int = 5,
    ) -> "FaultSchedule":
        """Draw a schedule up front from a seeded generator.

        The same arguments always produce the same schedule; combined
        with the one-shot firing rule this makes an entire faulted run a
        pure function of (model seed, fault seed).
        """
        if ticks <= 0 or n_ranks <= 0:
            raise ValueError("ticks and n_ranks must be positive")
        rng = np.random.default_rng(seed)
        events: list[Any] = []
        for _ in range(crashes):
            events.append(
                RankCrash(
                    tick=int(rng.integers(1, ticks)) if ticks > 1 else 0,
                    rank=int(rng.integers(n_ranks)),
                )
            )
        for kind, count in (
            (MessageDrop, drops),
            (MessageDuplicate, duplicates),
            (MessageCorruption, corruptions),
        ):
            for _ in range(count):
                source = int(rng.integers(n_ranks))
                dest = int(rng.integers(n_ranks))
                events.append(
                    kind(tick=int(rng.integers(ticks)), source=source, dest=dest)
                )
        for _ in range(degrades):
            events.append(
                LinkDegrade(
                    tick=int(rng.integers(ticks)),
                    duration=int(rng.integers(1, max(ticks // 4, 2))),
                    dim=int(rng.integers(torus_dims)),
                    factor=float(2.0 + 6.0 * rng.random()),
                )
            )
        for _ in range(stragglers):
            events.append(
                StragglerThread(
                    tick=int(rng.integers(ticks)),
                    duration=int(rng.integers(1, max(ticks // 4, 2))),
                    rank=int(rng.integers(n_ranks)),
                    factor=float(1.5 + 2.5 * rng.random()),
                )
            )
        return cls(events)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSchedule({len(self.events)} events)"


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a live virtual cluster.

    The recovery driver calls :meth:`begin_tick` before and
    :meth:`end_tick` after every ``sim.step()``; the cluster consults
    :meth:`on_send` from inside
    :meth:`repro.runtime.mpi.VirtualMpiCluster.send`.  Consumed-event
    bookkeeping lives here (the schedule stays immutable) and survives
    checkpoint rollbacks, which is what makes each discrete fault
    one-shot across replays.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.tick = -1
        self._consumed: set[int] = set()
        self._armed: dict[tuple[int, int], tuple[int, Any]] = {}
        #: Optional :class:`repro.obs.SpanTracer` — fault firings emit
        #: instant events on the simulated timeline when set.
        self.tracer: Any = None
        # Cumulative event counters (reporting).
        self.crashes: list[tuple[int, int]] = []  # (tick fired, rank)
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.duplicates_discarded = 0

    # -- tick lifecycle -----------------------------------------------------

    def begin_tick(self, cluster, tick: int) -> None:
        """Fire due crashes and arm this tick's message faults."""
        self.tick = tick
        self._armed = {}
        for idx, ev in enumerate(self.schedule.events):
            if idx in self._consumed or ev.tick > tick:
                continue
            if isinstance(ev, RankCrash):
                self._consumed.add(idx)
                cluster.fail_rank(ev.rank)
                self.crashes.append((tick, ev.rank))
                if self.tracer is not None:
                    self.tracer.instant(
                        "fault.rank_crash",
                        rank=ev.rank,
                        cat="resilience",
                        phase="tick",
                        tick=tick,
                        scheduled_tick=ev.tick,
                    )
            elif isinstance(ev, _MESSAGE_FAULTS):
                # First matching send wins; an event whose tick has
                # passed stays armed until traffic actually flows on
                # its (source, dest) pair.
                self._armed.setdefault((ev.source, ev.dest), (idx, ev))

    def end_tick(self, cluster) -> int:
        """Transport-level dedup: discard surviving duplicate copies.

        Spike delivery is a bitwise OR (§VII-A), so a duplicate that *was*
        consumed in place of its original had no observable effect; the
        copy still queued after the receive loop is purged here so it
        cannot leak into the next tick.  Returns the number discarded.
        """
        purged = 0
        for mb in cluster.mailboxes:
            purged += mb.purge(lambda m: m.duplicate)
        self.duplicates_discarded += purged
        return purged

    # -- cluster-facing hooks -------------------------------------------------

    def on_send(self, source: int, dest: int) -> str | None:
        """Action for this message: None, 'drop', 'duplicate', or 'corrupt'."""
        entry = self._armed.pop((source, dest), None)
        if entry is None:
            return None
        idx, ev = entry
        self._consumed.add(idx)
        action = _MESSAGE_ACTIONS[type(ev)]
        if action == "drop":
            self.dropped += 1
        elif action == "duplicate":
            self.duplicated += 1
        else:
            self.corrupted += 1
        if self.tracer is not None:
            self.tracer.instant(
                f"fault.message_{action}",
                rank=source,
                cat="resilience",
                tick=self.tick,
                dest=dest,
                scheduled_tick=ev.tick,
            )
        return action

    @staticmethod
    def payload_checksum(payload: Any) -> int:
        """End-to-end payload digest (crc32 of the wire encoding)."""
        if isinstance(payload, SpikeBatch):
            return zlib.crc32(payload.encode())
        if isinstance(payload, (bytes, bytearray)):
            return zlib.crc32(payload)
        return zlib.crc32(repr(payload).encode())

    @staticmethod
    def corrupt(payload: Any) -> Any:
        """A bit-flipped *copy* of the payload (the original is untouched)."""
        if isinstance(payload, SpikeBatch) and payload.count > 0:
            axon = payload.tgt_axon.copy()
            axon[0] ^= 1
            return SpikeBatch(
                payload.tgt_gid.copy(), axon, payload.delay.copy(), payload.tick
            )
        return payload

    # -- timing-only faults ---------------------------------------------------

    def _active_windows(self, kinds, tick: int):
        return [
            ev
            for ev in self.schedule.events
            if isinstance(ev, kinds) and ev.tick <= tick < ev.tick + ev.duration
        ]

    def compute_factor(self, tick: int, rank: int, n_threads: int) -> float:
        """Compute-phase multiplier for ``rank`` at ``tick`` (stragglers)."""
        from repro.runtime.threads import straggler_team_factor

        factor = 1.0
        for ev in self._active_windows(StragglerThread, tick):
            if ev.rank == rank:
                factor = max(
                    factor, straggler_team_factor(n_threads, ev.factor)
                )
        return factor

    def network_factor(self, tick: int, topology=None) -> float:
        """Network-phase multiplier at ``tick`` (degraded torus links).

        With a topology, a degraded dimension slows the fraction of
        pairwise traffic that routes across it
        (:meth:`repro.runtime.torus.TorusTopology.fraction_crossing`);
        without one, the whole phase is scaled conservatively.
        """
        factor = 1.0
        for ev in self._active_windows(LinkDegrade, tick):
            share = 1.0
            if topology is not None and ev.dim < len(topology.dims):
                share = topology.fraction_crossing(ev.dim)
            factor *= 1.0 + share * (ev.factor - 1.0)
        return factor

    def max_straggler_factor(self, tick: int, n_ranks: int, n_threads: int) -> float:
        """Slowest rank's compute multiplier — what bounds a lock-step tick."""
        return max(
            self.compute_factor(tick, rank, n_threads) for rank in range(n_ranks)
        )
