"""Recovery-overhead accounting: what resilience costs a run.

The report answers the operational question the checkpoint-interval knob
poses: how much simulated time goes to checkpoints (paid always) versus
lost work and recovery (paid per failure)?  All quantities are simulated
seconds from the machine cost model — or, when no machine is attached,
from the nominal 1 ms tick — never host time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.perf.report import format_table


@dataclass(frozen=True)
class CheckpointCostModel:
    """Simulated cost of writing/reading one coordinated checkpoint.

    A coordinated checkpoint quiesces the tick loop (one barrier's worth
    of coordination, folded into ``alpha_s``) and streams every rank's
    dynamic state to stable storage at ``bandwidth`` bytes/s per node,
    concurrently across ranks — so the wall cost is the *per-rank* state
    over the per-node bandwidth.
    """

    alpha_s: float = 0.05
    bandwidth: float = 1.0e9

    def checkpoint_time(self, nbytes_per_rank: float) -> float:
        return self.alpha_s + nbytes_per_rank / self.bandwidth

    def restore_time(self, nbytes_per_rank: float) -> float:
        return self.alpha_s + nbytes_per_rank / self.bandwidth


@dataclass(frozen=True)
class FailureRecord:
    """One detected failure and the cost of recovering from it."""

    kind: str
    tick: int
    ranks: tuple[int, ...]
    #: Completed ticks discarded by the rollback (tick - checkpoint tick).
    lost_ticks: int
    detect_s: float
    #: Reboot backoff (restart policy) or spare activation (spare policy).
    wait_s: float
    restore_s: float
    #: Simulated cost of re-executing the discarded ticks.
    replay_s: float

    @property
    def time_to_recover_s(self) -> float:
        return self.detect_s + self.wait_s + self.restore_s + self.replay_s


@dataclass
class RecoveryReport:
    """Everything the resilience machinery did to one run."""

    checkpoint_interval: int
    policy: str
    checkpoints: list[tuple[int, float]] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    duplicates_discarded: int = 0
    #: Extra simulated network-phase seconds from degraded torus links.
    degraded_extra_s: float = 0.0
    #: Extra simulated compute-phase seconds from straggler threads.
    straggler_extra_s: float = 0.0

    # -- bookkeeping (driver-facing) -----------------------------------------

    def note_checkpoint(self, tick: int, cost_s: float) -> None:
        self.checkpoints.append((tick, cost_s))

    def note_failure(self, record: FailureRecord) -> None:
        self.failures.append(record)

    # -- derived quantities ----------------------------------------------------

    @property
    def n_checkpoints(self) -> int:
        return len(self.checkpoints)

    @property
    def checkpoint_overhead_s(self) -> float:
        return sum(cost for _, cost in self.checkpoints)

    @property
    def lost_ticks(self) -> int:
        return sum(f.lost_ticks for f in self.failures)

    @property
    def time_to_recover_s(self) -> float:
        return sum(f.time_to_recover_s for f in self.failures)

    @property
    def total_overhead_s(self) -> float:
        return (
            self.checkpoint_overhead_s
            + self.time_to_recover_s
            + self.degraded_extra_s
            + self.straggler_extra_s
        )

    def overhead_fraction(self, simulated_total_s: float) -> float:
        """Share of the run's simulated time spent on resilience."""
        if simulated_total_s <= 0:
            return 0.0
        return self.total_overhead_s / simulated_total_s

    def summary(self) -> dict[str, float]:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoints": self.n_checkpoints,
            "checkpoint_overhead_s": self.checkpoint_overhead_s,
            "failures": len(self.failures),
            "lost_ticks": self.lost_ticks,
            "time_to_recover_s": self.time_to_recover_s,
            "duplicates_discarded": self.duplicates_discarded,
            "degraded_extra_s": self.degraded_extra_s,
            "straggler_extra_s": self.straggler_extra_s,
            "total_overhead_s": self.total_overhead_s,
        }

    def format(self) -> str:
        """Human-readable report (the CLI's ``resilience report`` output)."""
        rows = [
            ("checkpoints taken", self.n_checkpoints, ""),
            (
                "checkpoint overhead",
                f"{self.checkpoint_overhead_s:.4f}",
                "s (simulated)",
            ),
            ("failures recovered", len(self.failures), ""),
            ("lost ticks (replayed)", self.lost_ticks, ""),
            (
                "time to recover",
                f"{self.time_to_recover_s:.4f}",
                "s (simulated)",
            ),
            ("duplicates discarded", self.duplicates_discarded, ""),
            ("link-degradation cost", f"{self.degraded_extra_s:.4f}", "s"),
            ("straggler cost", f"{self.straggler_extra_s:.4f}", "s"),
            ("total overhead", f"{self.total_overhead_s:.4f}", "s (simulated)"),
        ]
        table = format_table(
            ["quantity", "value", "unit"],
            rows,
            title=(
                f"recovery overhead (interval={self.checkpoint_interval} "
                f"ticks, policy={self.policy})"
            ),
        )
        if self.failures:
            frows = [
                (
                    f.kind,
                    f.tick,
                    ",".join(str(r) for r in f.ranks) or "-",
                    f.lost_ticks,
                    f"{f.detect_s:.4f}",
                    f"{f.wait_s:.4f}",
                    f"{f.restore_s:.4f}",
                    f"{f.replay_s:.4f}",
                )
                for f in self.failures
            ]
            table += "\n\n" + format_table(
                [
                    "failure",
                    "tick",
                    "ranks",
                    "lost",
                    "detect_s",
                    "wait_s",
                    "restore_s",
                    "replay_s",
                ],
                frows,
                title="per-failure breakdown",
            )
        return table


def spike_digest(recorder) -> str:
    """sha256 of a canonically sorted spike trace.

    The currency of the bit-determinism contract: a faulted-and-recovered
    run must produce the same digest as an uninterrupted run of the same
    seed (see ``tests/integration/test_recovery_determinism.py``).
    """
    h = hashlib.sha256()
    for arr in recorder.to_arrays():
        h.update(arr.tobytes())
    return h.hexdigest()
