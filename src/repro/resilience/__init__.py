"""repro.resilience: fault injection, failure detection, and recovery.

The virtual cluster's unhappy path.  A seeded :class:`FaultSchedule`
injects rank crashes, message faults, degraded torus links, and
straggler threads into a run; simulated heartbeats and per-phase
timeouts surface them as typed failures; and the
:class:`ResilientRunner` recovers via coordinated checkpoints —
restart-with-backoff or spare-rank takeover — while preserving the
bit-determinism contract: same seed + same fault schedule yields the
identical spike raster an uninterrupted run produces.  Costs are
accounted in simulated time in a :class:`RecoveryReport`.
"""

from repro.resilience.detect import HeartbeatConfig, HeartbeatMonitor, RankFailure
from repro.resilience.faults import (
    FaultInjector,
    FaultSchedule,
    LinkDegrade,
    MessageCorruption,
    MessageDrop,
    MessageDuplicate,
    RankCrash,
    StragglerThread,
)
from repro.resilience.recovery import RecoveryPolicy, ResilientRunner
from repro.resilience.report import (
    CheckpointCostModel,
    FailureRecord,
    RecoveryReport,
    spike_digest,
)

__all__ = [
    "CheckpointCostModel",
    "FailureRecord",
    "FaultInjector",
    "FaultSchedule",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "LinkDegrade",
    "MessageCorruption",
    "MessageDrop",
    "MessageDuplicate",
    "RankCrash",
    "RankFailure",
    "RecoveryPolicy",
    "RecoveryReport",
    "ResilientRunner",
    "StragglerThread",
    "spike_digest",
]
