"""Coordinated checkpoint/restart: the recovery driver.

:class:`ResilientRunner` wraps a simulator in the classic HPC resilience
loop — periodic coordinated checkpoints, failure detection, rollback
recovery — while preserving Compass's bit-determinism contract:

    same model seed + same fault schedule  ⇒  identical spike raster

Checkpoints are in-memory coordinated snapshots
(:func:`repro.core.checkpoint.capture_state`) taken at tick boundaries,
where the virtual cluster is quiescent by construction.  When a step
raises a :class:`repro.errors.FailureDetectedError` (crashed rank,
dropped or corrupted message), the runner rolls the simulator — state,
spike recorder, and metrics — back to the last checkpoint and replays.
Because fault events are one-shot (:mod:`repro.resilience.faults`), the
replay runs clean, so the recovered trace is bitwise identical to an
uninterrupted run's.

Two recovery policies:

* ``restart`` — the failed node reboots and rejoins; the run waits a
  bounded, exponentially backed-off *simulated* interval per consecutive
  failure (host time is never consulted — rule DET106).
* ``spare``  — a spare node takes over the failed rank's partition slice
  immediately; a fresh simulator is built, the rolled-back recorder and
  metrics are carried over, and the checkpoint is restored into it.

All costs — checkpoint writes, detection latency, reboot/takeover waits,
restored-state reads, replayed work — are charged to the run's simulated
clock and itemised in a :class:`repro.resilience.report.RecoveryReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import RunResult
from repro.errors import FailureDetectedError, RecoveryExhaustedError
from repro.exec import as_adapter
from repro.resilience.detect import HeartbeatConfig, HeartbeatMonitor
from repro.resilience.faults import FaultInjector, FaultSchedule
from repro.resilience.report import (
    CheckpointCostModel,
    FailureRecord,
    RecoveryReport,
)

_POLICIES = ("restart", "spare")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How, and how persistently, to recover from detected failures."""

    #: ``restart`` (reboot the failed node) or ``spare`` (spare takeover).
    kind: str = "restart"
    #: Consecutive recoveries without forward progress before giving up.
    max_retries: int = 3
    #: Simulated reboot wait for the restart policy; doubles per
    #: consecutive failure (bounded exponential backoff).
    backoff_base_s: float = 0.5
    #: Simulated spare-node activation latency for the spare policy.
    spare_takeover_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _POLICIES:
            raise ValueError(f"unknown recovery policy {self.kind!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.spare_takeover_s < 0:
            raise ValueError("recovery waits must be >= 0")

    def wait_s(self, consecutive_failures: int) -> float:
        """Simulated wait before the replacement rank is serviceable."""
        if self.kind == "spare":
            return self.spare_takeover_s
        return self.backoff_base_s * (2.0 ** max(consecutive_failures - 1, 0))


class ResilientRunner:
    """Drives a simulator tick by tick under a fault schedule.

    ``factory`` builds a fresh simulator positioned at tick 0 — it is
    called once up front and again on every spare-rank takeover, so it
    must be deterministic (build from the same network and config).
    """

    def __init__(
        self,
        factory,
        schedule: FaultSchedule | None = None,
        checkpoint_interval: int = 10,
        policy: RecoveryPolicy | None = None,
        heartbeat: HeartbeatConfig | None = None,
        costs: CheckpointCostModel | None = None,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.factory = factory
        self.schedule = schedule or FaultSchedule()
        self.interval = checkpoint_interval
        self.policy = policy or RecoveryPolicy()
        self.costs = costs or CheckpointCostModel()
        self.injector = FaultInjector(self.schedule)
        self.sim = self._build()
        # The run's observability bundle is whatever the factory gave the
        # first simulator; spare-rank rebuilds adopt it so metric series
        # and the trace continue across failures.
        self.obs = self.sim.obs
        self.injector.tracer = self.obs.tracer if self.obs.tracer.enabled else None
        reg = self.obs.registry
        self._m_ckpts = reg.counter(
            "resilience_checkpoints_total", help="coordinated checkpoints taken"
        )
        self._m_ckpt_bytes = reg.counter(
            "resilience_checkpoint_bytes_total",
            help="checkpoint payload bytes written",
            unit="bytes",
        )
        self._h_ckpt_bytes = reg.histogram(
            "resilience_checkpoint_bytes",
            buckets=(1e3, 1e4, 1e5, 1e6, 1e7, 1e8),
            help="payload bytes per coordinated checkpoint",
            unit="bytes",
        )
        self._m_recoveries = reg.counter(
            "resilience_recoveries_total", help="rollback recoveries performed"
        )
        self._m_lost = reg.counter(
            "resilience_lost_ticks_total", help="ticks rolled back and replayed"
        )
        self.monitor = HeartbeatMonitor(
            self.sim.config.n_processes, heartbeat
        )
        self.report = RecoveryReport(
            checkpoint_interval=checkpoint_interval, policy=self.policy.kind
        )
        self._state_bytes_per_rank = self.sim.state_nbytes() / max(
            self.sim.n_ranks, 1
        )
        # The initial state is the zeroth checkpoint: a failure before the
        # first periodic checkpoint rolls back to tick 0.
        self._ckpt_state = self.sim.capture()
        self._ckpt_tick = 0
        self._consecutive_failures = 0
        self._topology = self._machine_topology()

    # -- construction helpers -------------------------------------------------

    def _build(self):
        sim = as_adapter(self.factory())
        if getattr(sim, "detector", None) is not None:
            raise ValueError(
                "fault injection and the happens-before sanitizer cannot be "
                "combined: injected drops/crashes violate the sanitizer's "
                "send/recv accounting by design"
            )
        if not hasattr(sim, "cluster") or not hasattr(sim.cluster, "fail_rank"):
            raise ValueError(
                "ResilientRunner requires the MPI backend (fault hooks live "
                "in the two-sided virtual cluster)"
            )
        if len(self.schedule) and not getattr(
            sim, "supports_simulated_faults", True
        ):
            raise ValueError(
                f"the {sim.backend!r} backend cannot inject simulated rank "
                "faults (host workers have no in-process fault hooks); run "
                "fault schedules on the sequential backend, or use "
                "inject_worker_crash for host-level failures"
            )
        sim.cluster.injector = self.injector
        return sim

    def _machine_topology(self):
        machine = self.sim.config.machine
        if machine is None:
            return None
        from repro.runtime.torus import TorusTopology

        return TorusTopology.for_nodes(
            machine.nodes, machine.machine.torus_dims
        )

    # -- main loop ------------------------------------------------------------

    def run(self, ticks: int) -> RunResult:
        """Advance ``ticks`` ticks, recovering from every injected fault."""
        target = self.sim.tick + ticks
        while self.sim.tick < target:
            tick = self.sim.tick
            self.injector.begin_tick(self.sim.cluster, tick)
            self.monitor.observe_tick(
                tick,
                [
                    r
                    for r in range(self.sim.config.n_processes)
                    if r not in self.sim.cluster.dead
                ],
            )
            sim_before = self._simulated_snapshot()
            try:
                self.sim.step()
            except FailureDetectedError as exc:
                self._recover(exc, tick)
                continue
            self.injector.end_tick(self.sim.cluster)
            self.report.duplicates_discarded = self.injector.duplicates_discarded
            self._charge_slowdowns(tick, sim_before)
            self._consecutive_failures = 0
            if self.sim.tick % self.interval == 0 and self.sim.tick < target:
                self._checkpoint()
        return RunResult(
            metrics=self.sim.metrics,
            n_neurons=self.sim.network.n_neurons,
            spikes=self.sim.recorder,
        )

    # -- checkpointing ---------------------------------------------------------

    def _checkpoint(self) -> None:
        self._ckpt_state = self.sim.capture()
        self._ckpt_tick = self.sim.tick
        cost = self.costs.checkpoint_time(self._state_bytes_per_rank)
        self.report.note_checkpoint(self.sim.tick, cost)
        self.sim.metrics.overhead_s += cost
        nbytes = int(self._state_bytes_per_rank * self.sim.n_ranks)
        self._m_ckpts.inc()
        self._m_ckpt_bytes.inc(value=nbytes)
        self._h_ckpt_bytes.observe(-1, nbytes)
        tr = self.obs.tracer
        if tr.enabled:
            tr.instant(
                "checkpoint",
                rank=-1,
                cat="resilience",
                phase="tick",
                tick=self.sim.tick,
                bytes=nbytes,
                cost_s=cost,
            )

    # -- recovery --------------------------------------------------------------

    def _recover(self, exc: FailureDetectedError, crash_tick: int) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures > self.policy.max_retries:
            raise RecoveryExhaustedError(
                f"{self._consecutive_failures} consecutive failed recoveries "
                f"(policy allows {self.policy.max_retries} retries): {exc}"
            ) from exc
        failed_ranks = tuple(getattr(exc, "ranks", ()))
        lost = crash_tick - self._ckpt_tick
        mean_tick_s = self.sim.metrics.simulated.total / max(
            self.sim.metrics.ticks, 1
        )
        detect_s = self.monitor.config.detection_latency_s(
            self.sim.config.n_processes, mean_tick_s
        )
        wait_s = self.policy.wait_s(self._consecutive_failures)
        restore_s = self.costs.restore_time(self._state_bytes_per_rank)
        replay_s = lost * mean_tick_s

        if self.policy.kind == "spare":
            # A spare node adopts the failed rank's partition slice: build
            # fresh hardware, carry over the run's history, restore state.
            old = self.sim
            self.sim = self._build()
            self.sim.adopt_obs(self.obs)
            self.sim.recorder = old.recorder
            self.sim.metrics = old.metrics
        else:
            # The failed node reboots and rejoins after the backoff.
            for rank in sorted(self.sim.cluster.dead):
                self.sim.cluster.revive_rank(rank)
            self.sim.cluster.reset_communication()
        for rank in failed_ranks:
            self.monitor.reset(rank)

        self.sim.restore(self._ckpt_state)
        if self.sim.recorder is not None:
            self.sim.recorder.truncate(self._ckpt_tick)
        self.sim.metrics.rollback_to(self._ckpt_tick)

        record = FailureRecord(
            kind=type(exc).__name__,
            tick=crash_tick,
            ranks=failed_ranks,
            lost_ticks=lost,
            detect_s=detect_s,
            wait_s=wait_s,
            restore_s=restore_s,
            replay_s=replay_s,
        )
        self.report.note_failure(record)
        self.sim.metrics.overhead_s += record.time_to_recover_s
        self._m_recoveries.inc()
        self._m_lost.inc(value=lost)
        tr = self.obs.tracer
        if tr.enabled:
            tr.instant(
                "fault.detected",
                rank=-1,
                cat="resilience",
                phase="tick",
                tick=crash_tick,
                kind=record.kind,
                ranks=",".join(str(r) for r in failed_ranks),
            )
            tr.instant(
                "recovery",
                rank=-1,
                cat="resilience",
                phase="tick",
                tick=crash_tick,
                policy=self.policy.kind,
                lost_ticks=lost,
                detect_s=detect_s,
                wait_s=wait_s,
                restore_s=restore_s,
                replay_s=replay_s,
            )

    # -- timing-only faults ----------------------------------------------------

    def _simulated_snapshot(self) -> tuple[float, float, float]:
        s = self.sim.metrics.simulated
        return (s.synapse, s.neuron, s.network)

    def _charge_slowdowns(
        self, tick: int, before: tuple[float, float, float]
    ) -> None:
        """Stretch this tick's simulated phases by active fault windows."""
        s = self.sim.metrics.simulated
        d_synapse = s.synapse - before[0]
        d_neuron = s.neuron - before[1]
        d_network = s.network - before[2]
        compute_factor = self.injector.max_straggler_factor(
            tick,
            self.sim.config.n_processes,
            self.sim.config.threads_per_process,
        )
        if compute_factor > 1.0:
            extra = (compute_factor - 1.0) * (d_synapse + d_neuron)
            s.synapse += (compute_factor - 1.0) * d_synapse
            s.neuron += (compute_factor - 1.0) * d_neuron
            self.report.straggler_extra_s += extra
        network_factor = self.injector.network_factor(tick, self._topology)
        if network_factor > 1.0:
            extra = (network_factor - 1.0) * d_network
            s.network += extra
            self.report.degraded_extra_s += extra
