"""Append-only bench-history file keyed by git SHA + config fingerprint.

``benchmarks/results/bench_history.jsonl`` accumulates one record per
bench per blessed measurement.  Records are keyed by the bench name and
the *config fingerprint* stamped into every ``BENCH_<name>.json`` by
``benchmarks/conftest.write_bench_json`` (a hash of the bench's params),
so history from a different benchmark configuration never pollutes the
baseline.  The git SHA and package version record provenance — which
commit produced the numbers being gated against.

The file is JSONL, append-only by convention: blessing a new baseline
(``repro obs gate --bless``) appends, never rewrites, so the perf
trajectory of the repository stays inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import AnalysisError

HISTORY_SCHEMA = 1

#: Default locations, relative to the repository layout.
DEFAULT_RESULTS_DIR = Path("benchmarks/results")
DEFAULT_HISTORY = DEFAULT_RESULTS_DIR / "bench_history.jsonl"


def record_from_bench(payload: dict[str, Any]) -> dict[str, Any]:
    """One history record from a ``BENCH_<name>.json`` payload.

    Gated metrics: ``time_s`` (the mean of the raw samples) plus every
    numeric ``derived`` quantity, under its own name.
    """
    name = payload.get("name")
    if not name:
        raise AnalysisError("bench payload has no 'name'")
    metrics: dict[str, float] = {}
    stats = payload.get("stats") or {}
    if "mean" in stats:
        metrics["time_s"] = float(stats["mean"])
    for key, value in sorted((payload.get("derived") or {}).items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)
    return {
        "schema": HISTORY_SCHEMA,
        "name": name,
        "sha": payload.get("sha", "unknown"),
        "version": payload.get("version", "unknown"),
        "fingerprint": payload.get("fingerprint", ""),
        "metrics": metrics,
    }


def load_bench_results(results_dir: str | Path) -> list[dict[str, Any]]:
    """All ``BENCH_*.json`` payloads under ``results_dir``, sorted by name."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise AnalysisError(f"no such results directory: {results_dir}")
    payloads: list[dict[str, Any]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "name" not in payload:
            raise AnalysisError(f"{path}: not a bench payload (no 'name')")
        payloads.append(payload)
    if not payloads:
        raise AnalysisError(f"no BENCH_*.json results in {results_dir}")
    return payloads


def load_history(
    path: str | Path, allow_missing: bool = False
) -> list[dict[str, Any]]:
    """Parse the bench-history JSONL file into records."""
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        if allow_missing:
            return []
        state = "empty" if path.exists() else "missing"
        raise AnalysisError(
            f"bench-history file is {state}: {path} "
            "(bless a baseline with 'repro obs gate --bless')"
        )
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"{path}:{lineno}: not a JSON history record: {exc}"
            ) from exc
        if not isinstance(rec, dict) or "name" not in rec:
            raise AnalysisError(f"{path}:{lineno}: not a history record")
        records.append(rec)
    return records


def history_values(
    history: list[dict[str, Any]], name: str, fingerprint: str, metric: str
) -> list[float]:
    """Baseline values for one (bench, fingerprint, metric) key, in order."""
    values: list[float] = []
    for rec in history:
        if rec.get("name") != name or rec.get("fingerprint") != fingerprint:
            continue
        value = (rec.get("metrics") or {}).get(metric)
        if isinstance(value, (int, float)):
            values.append(float(value))
    return values


def append_history(  # repro: obs-flush
    path: str | Path, records: list[dict[str, Any]]
) -> Path:
    """Append ``records`` to the history file (created if missing)."""
    path = Path(path)
    existing = path.read_text() if path.exists() else ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    lines = [json.dumps(rec, sort_keys=True) for rec in records]
    path.write_text(existing + "\n".join(lines) + ("\n" if lines else ""))
    return path
